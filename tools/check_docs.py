"""Documentation reference checker: links, file:line refs, doctests, JSON.

Run from the repository root (CI's ``docs`` job does; so does
``tests/test_docs.py``):

    PYTHONPATH=src python tools/check_docs.py

Four checks over ``README.md`` and every ``docs/*.md``:

1. **Relative markdown links** ``[text](target)`` must point at a file
   or directory that exists (anchors are stripped; ``http(s)://`` and
   ``mailto:`` links are skipped — this repo's docs must work offline).
2. **Backticked file:line references** like ``src/repro/core/cost.py:37``
   must name an existing file, and the line number must not exceed the
   file's length.  This keeps the MODELS.md / OBSERVABILITY.md
   cross-references honest as the code moves.
3. **Doctests** in fenced ```` ```python ```` blocks containing ``>>>``
   are executed with :mod:`doctest`.  Blocks within one document share a
   namespace in order, so a later block may use names a former one
   defined.
4. **JSON examples** in fenced ```` ```json ```` blocks must parse.  In
   ``docs/SERVICE.md`` — the wire-contract reference — every example
   object must additionally carry a ``"schema"`` field matching
   ``repro.<name>/<version>`` (the ``repro.serve/1`` / ``repro.metrics/1``
   convention), so a copy-pasted example is always a valid, versioned
   envelope.

Exit status 0 when everything resolves, 1 otherwise (with one line per
failure).
"""

from __future__ import annotations

import doctest
import glob
import json
import os
import re
import sys
from typing import List, Tuple

#: [text](target) — excluding images; target captured up to the closing paren.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked `path/to/file.ext:123` references.
_FILE_LINE_RE = re.compile(r"`([\w./-]+\.(?:py|md|txt|json|yml|toml)):(\d+)`")

#: Fenced python code blocks.
_PY_BLOCK_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

#: Fenced JSON example blocks.
_JSON_BLOCK_RE = re.compile(r"^```json\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

#: Versioned schema tags: repro.serve/1, repro.metrics/1, ...
_SCHEMA_RE = re.compile(r"^repro\.[a-z_]+/\d+$")

#: Documents whose JSON examples are wire contracts and must be
#: schema-versioned envelopes.
_CONTRACT_DOCS = ("SERVICE.md",)


def _doc_files(root: str) -> List[str]:
    files = [os.path.join(root, "README.md")]
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return [f for f in files if os.path.exists(f)]


def check_links(root: str, path: str, text: str) -> List[str]:
    errors = []
    base = os.path.dirname(path)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append(f"{path}: dead link -> {match.group(1)}")
    return errors


def check_file_line_refs(root: str, path: str, text: str) -> List[str]:
    errors = []
    for match in _FILE_LINE_RE.finditer(text):
        ref_path, ref_line = match.group(1), int(match.group(2))
        resolved = os.path.join(root, ref_path)
        if not os.path.exists(resolved):
            errors.append(f"{path}: dangling file ref -> {ref_path}:{ref_line}")
            continue
        with open(resolved, "r", encoding="utf-8") as fh:
            length = sum(1 for _ in fh)
        if ref_line < 1 or ref_line > length:
            errors.append(
                f"{path}: line out of range -> {ref_path}:{ref_line} "
                f"(file has {length} lines)"
            )
    return errors


def run_doctests(path: str, text: str) -> Tuple[List[str], int]:
    """Execute the document's ``>>>`` examples; returns (errors, n_examples)."""
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    namespace: dict = {}
    total = 0
    errors: List[str] = []
    for i, match in enumerate(_PY_BLOCK_RE.finditer(text)):
        block = match.group(1)
        if ">>>" not in block:
            continue
        lineno = text.count("\n", 0, match.start())
        test = parser.get_doctest(block, namespace, f"{path}[block {i}]", path, lineno)
        if not test.examples:
            continue
        total += len(test.examples)
        out: List[str] = []
        result = runner.run(test, out=out.append, clear_globs=False)
        if result.failed:
            errors.append(
                f"{path}: {result.failed} doctest failure(s) in block {i} "
                f"(near line {lineno + 1}):\n" + "".join(out)
            )
        # test ran with `namespace` as globs, so definitions persist to the
        # next block of the same document.
        namespace = test.globs
    return errors, total


def check_json_examples(path: str, text: str) -> Tuple[List[str], int]:
    """Parse the document's JSON examples; returns (errors, n_blocks).

    Contract documents (``_CONTRACT_DOCS``) get the stricter check: the
    example (or, for a JSONL/SSE excerpt, each of its lines) must be an
    object whose ``"schema"`` matches the ``repro.<name>/<version>``
    convention.
    """
    contract = os.path.basename(path) in _CONTRACT_DOCS
    errors: List[str] = []
    total = 0
    for i, match in enumerate(_JSON_BLOCK_RE.finditer(text)):
        block = match.group(1).strip()
        if not block:
            continue
        total += 1
        lineno = text.count("\n", 0, match.start()) + 1
        try:
            documents = [json.loads(block)]
        except ValueError:
            # Not one document — try JSONL (snapshot streams, SSE data
            # excerpts are one JSON object per line).
            documents = []
            for j, line in enumerate(block.splitlines()):
                line = line.strip()
                if not line:
                    continue
                try:
                    documents.append(json.loads(line))
                except ValueError as exc:
                    errors.append(
                        f"{path}: unparseable JSON example in block {i} "
                        f"(near line {lineno}, line {j + 1} of block): {exc}"
                    )
                    documents = []
                    break
        if not contract:
            continue
        for doc in documents:
            if not isinstance(doc, dict):
                errors.append(
                    f"{path}: contract JSON example in block {i} (near line "
                    f"{lineno}) is not an object"
                )
                continue
            schema = doc.get("schema")
            if not isinstance(schema, str) or not _SCHEMA_RE.match(schema):
                errors.append(
                    f"{path}: contract JSON example in block {i} (near line "
                    f"{lineno}) lacks a versioned 'schema' field "
                    f"(got {schema!r})"
                )
    return errors, total


def main(argv: List[str]) -> int:
    root = argv[0] if argv else os.getcwd()
    files = _doc_files(root)
    if not files:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 1
    all_errors: List[str] = []
    checked_links = checked_refs = checked_examples = checked_json = 0
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        checked_links += len(_LINK_RE.findall(text))
        checked_refs += len(_FILE_LINE_RE.findall(text))
        all_errors += check_links(root, path, text)
        all_errors += check_file_line_refs(root, path, text)
        doc_errors, examples = run_doctests(path, text)
        all_errors += doc_errors
        checked_examples += examples
        json_errors, json_blocks = check_json_examples(path, text)
        all_errors += json_errors
        checked_json += json_blocks
    for error in all_errors:
        print(error, file=sys.stderr)
    status = "FAIL" if all_errors else "ok"
    print(
        f"check_docs: {len(files)} files, {checked_links} links, "
        f"{checked_refs} file:line refs, {checked_examples} doctest examples, "
        f"{checked_json} JSON examples -> {status}"
    )
    return 1 if all_errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
