"""The chaos harness and the adversarial winner search."""

import pytest

from repro.core import QSM
from repro.faults.adversary import search_winner_adversary
from repro.faults.harness import (
    ChaosCase,
    default_cases,
    render_chaos_report,
    run_chaos_suite,
    run_self_checking,
)
from repro.faults.plan import Fault, FaultPlan
from repro.faults.schedules import schedule_names, shipped_schedules


def winner_of_collision(policy):
    """A toy 'algorithm' whose output IS the collision winner."""
    m = QSM(winner_policy=policy)
    with m.phase() as ph:
        for proc in range(4):
            ph.write(proc, 0, proc)
    return m.peek(0)


class TestAdversary:
    def test_finds_winner_dependence(self):
        # Output == winner: maximally winner-dependent; the very first
        # deviation disagrees with the reference.
        report = search_winner_adversary(winner_of_collision, budget=8)
        assert report.decisions == 1
        assert not report.winner_independent
        assert report.disagreements[0].value != report.reference

    def test_verifier_tolerates_benign_dependence(self):
        # With a verifier accepting any of the written values, the same
        # winner-dependent output is *correct* under every winner.
        report = search_winner_adversary(
            winner_of_collision,
            verify=lambda v: v in (0, 1, 2, 3),
            budget=8,
            random_probes=0,
        )
        assert report.winner_independent
        assert report.attempts == 3  # the three single-flip deviations

    def test_collision_free_run_has_no_decisions(self):
        def no_collision(policy):
            m = QSM(winner_policy=policy)
            with m.phase() as ph:
                ph.write(0, 0, 1)
            return m.peek(0)

        report = search_winner_adversary(no_collision, budget=8)
        assert report.decisions == 0
        assert report.attempts == 0
        assert report.exhaustive
        assert report.winner_independent

    def test_budget_truncates_and_is_reported(self):
        def many_collisions(policy):
            m = QSM(winner_policy=policy)
            with m.phase() as ph:
                for addr in range(10):
                    for proc in range(3):
                        ph.write(proc, addr, proc)
            return m.peek(0)

        report = search_winner_adversary(
            many_collisions, verify=lambda v: True, budget=5, random_probes=0
        )
        assert not report.exhaustive
        assert report.attempts == 5

    def test_broken_reference_reported_without_search(self):
        report = search_winner_adversary(
            winner_of_collision, verify=lambda v: False, budget=8
        )
        assert not report.winner_independent
        assert report.attempts == 0
        assert report.disagreements[0].verified is False


class TestSelfChecking:
    def _flaky_case(self):
        plan = FaultPlan([Fault("corrupt", 0, addr=0, value=99)])

        def run(winner_policy=None, fault_plan=None):
            m = QSM(winner_policy=winner_policy, fault_plan=fault_plan)
            with m.phase() as ph:
                ph.write(0, 0, 7)
            return m.peek(0)

        case = ChaosCase("toy", "shared", run, verify=lambda v: v == 7)
        return case, plan

    def test_recovers_from_transient_fault_on_retry(self):
        case, plan = self._flaky_case()
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok
        assert outcome.attempts == 2
        assert "recovered" in outcome.note

    def test_transient_fault_spends_exactly_once_across_retries(self):
        # The recovery contract: the fault fires on the attempt reaching
        # its trigger, stays exhausted for every later attempt, and the
        # firing log shows exactly one event.
        case, plan = self._flaky_case()
        assert not plan.faults[0].exhausted
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok
        assert plan.fired == 1
        assert plan.faults[0].exhausted
        # A further run against the same plan is clean on attempt 1.
        again = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert again.ok and again.attempts == 1
        assert plan.fired == 1

    def test_reports_failure_when_attempts_exhausted(self):
        case, plan = self._flaky_case()
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=1)
        assert not outcome.ok
        assert outcome.note == "verification failed"

    def test_exceptions_count_as_failed_attempts(self):
        def explode(winner_policy=None, fault_plan=None):
            raise RuntimeError("kaboom")

        case = ChaosCase("bomb", "shared", explode, verify=lambda v: True)
        outcome = run_self_checking(case, max_attempts=2)
        assert not outcome.ok
        assert "kaboom" in outcome.note


class TestSuite:
    def test_default_cases_cover_section8_families(self):
        names = {c.name for c in default_cases(n=8)}
        for fragment in ("parity", "or", "broadcast", "lac", "prefix-sums",
                         "load-balance", "list-rank", "sort"):
            assert any(fragment in n for n in names), fragment
        families = {c.family for c in default_cases(n=8)}
        assert families == {"shared", "bsp"}

    def test_schedules_split_by_family(self):
        assert "drop-first" in schedule_names("bsp")
        assert "corrupt-input" in schedule_names("shared")
        with pytest.raises(ValueError):
            shipped_schedules("quantum")

    def test_small_suite_survives_and_renders(self):
        report = run_chaos_suite(n=16, budget=6, only="parity")
        assert report.results
        assert report.ok, [r for r in report.results if not r.ok]
        text = render_chaos_report(report)
        assert "all survived" in text
        assert "adversary" in text

    def test_filter_matches_nothing_yields_empty_ok_report(self):
        report = run_chaos_suite(n=16, budget=2, only="no-such-case")
        assert report.results == []
        assert report.ok
