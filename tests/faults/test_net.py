"""Network fault plans and the chaos proxy: per-frame verdicts on the wire."""

import json
import socket
import time

import pytest

from repro.faults.net import NET_FAULT_KINDS, NetFault, NetFaultPlan
from repro.sched.net.frames import ConnectionClosed, recv_frame, send_frame
from repro.sched.net.proxy import ChaosProxy


class TestNetFault:
    def test_kind_table(self):
        assert NET_FAULT_KINDS == ("drop", "delay", "duplicate", "partition", "reconnect")

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            NetFault("jitter")
        with pytest.raises(ValueError):
            NetFault("drop", direction="up")
        with pytest.raises(ValueError):
            NetFault("drop", frame="warp")
        with pytest.raises(ValueError):
            NetFault("drop", nth=0)
        with pytest.raises(ValueError):
            NetFault("delay", delay_s=0)
        with pytest.raises(ValueError):
            NetFault("partition", duration_s=0)

    def test_spec_dict_round_trip(self):
        plan = NetFaultPlan([{"kind": "drop", "direction": "c2s", "frame": "ok", "nth": 3}])
        assert plan.to_specs() == [
            {"kind": "drop", "nth": 3, "direction": "c2s", "frame": "ok"}
        ]

    def test_plan_rejects_garbage(self):
        with pytest.raises(TypeError):
            NetFaultPlan(["drop"])


class TestDecide:
    def test_nth_match_fires_spend_once(self):
        plan = NetFaultPlan([NetFault("drop", direction="c2s", frame="ok", nth=2)])
        assert plan.decide("c2s", "ok") == ("forward", None)     # match 1
        assert plan.decide("s2c", "ok") == ("forward", None)     # wrong direction
        assert plan.decide("c2s", "ping") == ("forward", None)   # wrong frame
        action, fault = plan.decide("c2s", "ok")                 # match 2: fires
        assert action == "drop" and fault.kind == "drop"
        assert plan.decide("c2s", "ok") == ("forward", None)     # spent
        assert plan.fired == 1
        assert plan.events[0].kind == "drop"
        assert plan.events[0].detail["frame"] == "ok"

    def test_unlimited_firings(self):
        plan = NetFaultPlan([NetFault("drop", frame="ping", firings=None)])
        for _ in range(3):
            assert plan.decide("s2c", "ping")[0] == "drop"
        assert plan.fired == 3

    def test_partition_window_blackholes_everything(self):
        plan = NetFaultPlan(
            [NetFault("partition", direction="c2s", frame="ok", duration_s=0.2)]
        )
        action, fault = plan.decide("c2s", "ok")
        assert action == "blackhole"  # the trigger frame is inside the window
        assert fault.kind == "partition"
        assert plan.partitioned
        assert plan.decide("s2c", "task") == ("blackhole", None)
        assert plan.decide("c2s", "hello") == ("blackhole", None)
        time.sleep(0.25)
        assert not plan.partitioned
        assert plan.decide("c2s", "hello") == ("forward", None)

    def test_manual_partition(self):
        plan = NetFaultPlan()
        plan.partition(0.15)
        assert plan.partitioned
        assert plan.decide("c2s", "ok")[0] == "blackhole"
        assert plan.events[0].detail["trigger"] == "manual"
        time.sleep(0.2)
        assert plan.decide("c2s", "ok") == ("forward", None)

    def test_reset_rearms(self):
        plan = NetFaultPlan([NetFault("drop", frame="ok")])
        assert plan.decide("c2s", "ok")[0] == "drop"
        plan.reset()
        assert plan.fired == 0
        assert plan.decide("c2s", "ok")[0] == "drop"


class _Upstream:
    """A scheduler stand-in: accepts one connection, records frames."""

    def __init__(self):
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.conn = None

    @property
    def address(self):
        return self.listener.getsockname()[:2]

    def accept(self):
        self.conn, _ = self.listener.accept()
        self.conn.settimeout(5.0)
        return self.conn

    def close(self):
        if self.conn is not None:
            self.conn.close()
        self.listener.close()


class TestChaosProxy:
    def test_transparent_forwarding_and_log(self, tmp_path):
        log = tmp_path / "frames.jsonl"
        upstream = _Upstream()
        try:
            with ChaosProxy(
                upstream.address, log_path=str(log), log_label="t"
            ) as proxy:
                client = socket.create_connection(proxy.address, timeout=5.0)
                client.settimeout(5.0)
                server = upstream.accept()
                send_frame(client, ("hello", "w", {}))
                assert recv_frame(server) == ("hello", "w", {})
                send_frame(server, ("welcome", 1, 1))
                assert recv_frame(client) == ("welcome", 1, 1)
                client.close()
                server.close()
        finally:
            upstream.close()
        rows = [json.loads(line) for line in log.read_text().splitlines()]
        assert [r["frame"] for r in rows] == ["hello", "welcome"]
        assert [r["dir"] for r in rows] == ["c2s", "s2c"]
        assert all(r["action"] == "forward" and r["case"] == "t" for r in rows)

    def test_drop_and_duplicate(self):
        plan = NetFaultPlan([
            NetFault("drop", direction="c2s", frame="ping", nth=1),
            NetFault("duplicate", direction="c2s", frame="pong", nth=1),
        ])
        upstream = _Upstream()
        try:
            with ChaosProxy(upstream.address, plan=plan) as proxy:
                client = socket.create_connection(proxy.address, timeout=5.0)
                client.settimeout(5.0)
                server = upstream.accept()
                send_frame(client, ("ping", 1, 0.0))   # dropped
                send_frame(client, ("pong", 1, 0.0))   # duplicated
                send_frame(client, ("stop",))          # forwarded
                assert recv_frame(server) == ("pong", 1, 0.0)
                assert recv_frame(server) == ("pong", 1, 0.0)
                assert recv_frame(server) == ("stop",)
                client.close()
                server.close()
        finally:
            upstream.close()

    def test_reconnect_fault_tears_the_link(self):
        plan = NetFaultPlan([NetFault("reconnect", direction="c2s", frame="ping")])
        upstream = _Upstream()
        try:
            with ChaosProxy(upstream.address, plan=plan) as proxy:
                client = socket.create_connection(proxy.address, timeout=5.0)
                client.settimeout(5.0)
                server = upstream.accept()
                send_frame(client, ("ping", 1, 0.0))
                with pytest.raises((ConnectionClosed, OSError)):
                    recv_frame(server)  # link closed, frame never arrives
        finally:
            upstream.close()

    def test_eof_propagates_both_ways(self):
        upstream = _Upstream()
        try:
            with ChaosProxy(upstream.address) as proxy:
                client = socket.create_connection(proxy.address, timeout=5.0)
                client.settimeout(5.0)
                server = upstream.accept()
                server.close()  # scheduler writes the worker off
                with pytest.raises((ConnectionClosed, OSError)):
                    recv_frame(client)
        finally:
            upstream.close()
