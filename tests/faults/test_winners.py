"""Winner-policy arbitration of "arbitrary" concurrent writes."""

import pytest

from repro.core import PRAM, QSM, SQSM, PRAMParams
from repro.faults.winners import (
    WINNER_POLICY_NAMES,
    FirstWriterWins,
    LastWriterWins,
    ReplayWinners,
    SeededWinners,
    make_winner_policy,
)


def collide(machine, values, addr=0):
    """One phase where processor i writes values[i] to ``addr``; return cell."""
    with machine.phase() as ph:
        for proc, value in enumerate(values):
            ph.write(proc, addr, value)
    return machine.peek(addr)


class TestPolicies:
    def test_first_writer_wins(self):
        m = QSM(winner_policy=FirstWriterWins())
        assert collide(m, [10, 20, 30]) == 10

    def test_last_writer_wins(self):
        m = QSM(winner_policy=LastWriterWins())
        assert collide(m, [10, 20, 30]) == 30

    def test_seeded_policy_matches_machine_default(self):
        # SeededWinners(s) arbitrates exactly like a policy-free machine
        # seeded with s: the historical behaviour stays bit-compatible.
        for seed in (0, 7, 123):
            default = collide(QSM(seed=seed), list(range(100, 108)))
            policied = collide(
                QSM(seed=seed, winner_policy=SeededWinners(seed)),
                list(range(100, 108)),
            )
            assert default == policied

    def test_seeded_reset_replays_the_stream(self):
        policy = SeededWinners(3)
        first = collide(QSM(winner_policy=policy), list(range(50, 58)))
        policy.reset()
        second = collide(QSM(winner_policy=policy), list(range(50, 58)))
        assert first == second

    def test_replay_forces_decisions_and_logs(self):
        policy = ReplayWinners({0: 2})
        m = QSM(winner_policy=policy)
        assert collide(m, [10, 20, 30, 40]) == 30
        assert policy.log == [(0, 4, 2)]

    def test_replay_reduces_forced_choice_modulo_writers(self):
        policy = ReplayWinners({0: 5})  # 5 % 3 == 2
        assert collide(QSM(winner_policy=policy), [10, 20, 30]) == 30

    def test_replay_default_policy_used_without_override(self):
        policy = ReplayWinners(default=LastWriterWins())
        assert collide(QSM(winner_policy=policy), [1, 2, 3]) == 3

    def test_policy_applies_to_sqsm_and_crcw_pram(self):
        assert collide(SQSM(winner_policy=LastWriterWins()), [5, 6]) == 6
        pram = PRAM(
            PRAMParams(variant="CRCW", write_rule="arbitrary"),
            winner_policy=LastWriterWins(),
        )
        assert collide(pram, [5, 6]) == 6

    def test_singleton_writes_never_consult_the_policy(self):
        class Exploding(FirstWriterWins):
            def choose(self, addr, writers, phase_index):
                raise AssertionError("no collision happened")

        m = QSM(winner_policy=Exploding())
        with m.phase() as ph:
            ph.write(0, 0, 1)
            ph.write(1, 1, 2)
        assert (m.peek(0), m.peek(1)) == (1, 2)

    def test_out_of_range_choice_is_rejected(self):
        class Bad(FirstWriterWins):
            def choose(self, addr, writers, phase_index):
                return len(writers)

        with pytest.raises(ValueError, match="chose index"):
            collide(QSM(winner_policy=Bad()), [1, 2])


class TestFactory:
    def test_names_resolve(self):
        assert isinstance(make_winner_policy("seeded", seed=4), SeededWinners)
        assert isinstance(make_winner_policy("first"), FirstWriterWins)
        assert isinstance(make_winner_policy("last"), LastWriterWins)
        assert set(WINNER_POLICY_NAMES) == {"seeded", "first", "last"}

    def test_none_and_instances_pass_through(self):
        assert make_winner_policy(None) is None
        policy = LastWriterWins()
        assert make_winner_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown winner policy"):
            make_winner_policy("coinflip")

    def test_machine_accepts_policy_by_name(self):
        assert collide(QSM(winner_policy="last"), [7, 8, 9]) == 9
