"""Fault plans: scheduling, BSP routing, memory corruption, events."""

import pytest

from repro.core import BSP, GSM, QSM, BSPParams
from repro.faults.plan import (
    FAULT_KINDS,
    Fault,
    FaultEvent,
    FaultPlan,
    random_fault_plan,
)


def bsp_round(machine, sends):
    """One superstep issuing ``sends`` (src, dst, payload) triples."""
    with machine.superstep() as ss:
        for src, dst, payload in sends:
            ss.send(src, dst, payload)


class TestFaultSpec:
    def test_kind_table(self):
        assert FAULT_KINDS == ("drop", "duplicate", "delay", "stall", "crash", "corrupt")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault("meteor", 0)

    def test_corrupt_needs_addr(self):
        with pytest.raises(ValueError, match="addr"):
            Fault("corrupt", 0, value=1)

    def test_window_kinds_need_proc(self):
        with pytest.raises(ValueError, match="proc"):
            Fault("stall", 0)

    def test_plan_accepts_spec_dicts_and_round_trips(self):
        plan = FaultPlan([{"kind": "drop", "step": 1, "src": 0, "count": 2}])
        assert plan.to_specs() == [{"kind": "drop", "step": 1, "src": 0, "count": 2}]

    def test_plan_rejects_garbage(self):
        with pytest.raises(TypeError, match="Fault or a spec dict"):
            FaultPlan(["drop"])


class TestBSPMessageFaults:
    def test_drop_removes_matching_messages(self):
        plan = FaultPlan([Fault("drop", 0, src=0, dst=1)])
        b = BSP(4, fault_plan=plan)
        bsp_round(b, [(0, 1, "lost"), (2, 1, "kept")])
        assert b.inbox(1) == [(2, "kept")]
        assert [e.kind for e in b.fault_events] == ["drop"]

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan([Fault("duplicate", 0, src=0)])
        b = BSP(4, fault_plan=plan)
        bsp_round(b, [(0, 1, "x")])
        assert b.inbox(1) == [(0, "x"), (0, "x")]

    def test_delay_parks_until_due_superstep(self):
        plan = FaultPlan([Fault("delay", 0, delay=2)])
        b = BSP(4, fault_plan=plan)
        bsp_round(b, [(0, 1, "late")])
        assert b.inbox(1) == []
        bsp_round(b, [])
        assert b.inbox(1) == []
        bsp_round(b, [])  # superstep index 2 == due step: delivered after it
        assert b.inbox(1) == [(0, "late")]

    def test_count_limits_the_blast_radius(self):
        plan = FaultPlan([Fault("drop", 0, count=1)])
        b = BSP(4, fault_plan=plan)
        bsp_round(b, [(0, 1, "a"), (0, 1, "b")])
        assert b.inbox(1) == [(0, "b")]

    def test_received_traffic_reflects_faults(self):
        # Cost accounting charges what was actually routed: a dropped
        # message never lands in received_per_proc.
        plan = FaultPlan([Fault("drop", 0, src=0, dst=1, count=None)])
        b = BSP(4, BSPParams(g=2.0, L=2.0), fault_plan=plan)
        bsp_round(b, [(0, 1, "gone"), (0, 1, "gone2"), (2, 3, "ok")])
        rec = b.history[0]
        assert rec.received_per_proc == {3: 1}
        assert rec.sent_per_proc == {0: 2, 2: 1}  # sends were still issued


class TestBSPWindowFaults:
    def test_stall_holds_sends_until_window_end(self):
        plan = FaultPlan([Fault("stall", 1, proc=0, duration=2)])
        b = BSP(2, fault_plan=plan)
        seen = []
        for t in range(5):
            bsp_round(b, [(0, 1, f"t{t}")])
            seen.append([p for _, p in b.inbox(1)])
        # t0 normal; t1/t2 held during the stall, both land after step 2.
        assert seen == [["t0"], [], ["t1", "t2"], ["t3"], ["t4"]]

    def test_crash_loses_sends_for_the_window(self):
        plan = FaultPlan([Fault("crash", 0, proc=0, duration=2)])
        b = BSP(2, fault_plan=plan)
        seen = []
        for t in range(4):
            bsp_round(b, [(0, 1, f"t{t}")])
            seen.append([p for _, p in b.inbox(1)])
        assert seen == [[], [], ["t2"], ["t3"]]

    def test_crash_forever_with_none_duration(self):
        plan = FaultPlan([Fault("crash", 0, proc=0, duration=None)])
        b = BSP(2, fault_plan=plan)
        for t in range(3):
            bsp_round(b, [(0, 1, f"t{t}")])
            assert b.inbox(1) == []


class TestMemoryFaults:
    def test_corrupt_overwrites_cell_after_commit(self):
        plan = FaultPlan([Fault("corrupt", 0, addr=1, value=-9)])
        m = QSM(fault_plan=plan)
        with m.phase() as ph:
            ph.write(0, 1, 5)
        assert m.peek(1) == -9
        [event] = m.fault_events
        assert event.kind == "corrupt"
        assert event.detail["before"] == "5"

    def test_corrupt_fires_on_its_phase_only(self):
        plan = FaultPlan([Fault("corrupt", 1, addr=0, value=7)])
        m = QSM(fault_plan=plan)
        with m.phase() as ph:
            ph.write(0, 0, 1)
        assert m.peek(0) == 1  # phase 0: not yet
        with m.phase() as ph:
            ph.local(0)
        assert m.peek(0) == 7

    def test_gsm_takes_fault_plans_too(self):
        plan = FaultPlan([Fault("corrupt", 0, addr=0, value=3)])
        m = GSM(fault_plan=plan)
        with m.phase() as ph:
            ph.write(0, 0, 1)
        # GSM cells are tuples (strong queuing accumulates); poke wraps.
        assert m.peek(0) == (3,)


class TestTransience:
    def test_transient_fault_spends_across_fresh_machines(self):
        # The self-check retry model: attempt 2 on a fresh machine sees the
        # fault already spent.
        plan = FaultPlan([Fault("drop", 0, src=0)])
        for attempt, expected in [(0, []), (1, [(0, "m")])]:
            b = BSP(2, fault_plan=plan)
            bsp_round(b, [(0, 1, "m")])
            assert b.inbox(1) == expected, f"attempt {attempt}"

    def test_reset_rearms_and_clears_events(self):
        plan = FaultPlan([Fault("drop", 0, src=0)])
        b = BSP(2, fault_plan=plan)
        bsp_round(b, [(0, 1, "m")])
        assert plan.fired == 1
        plan.reset()
        assert plan.fired == 0
        b2 = BSP(2, fault_plan=plan)
        bsp_round(b2, [(0, 1, "m")])
        assert b2.inbox(1) == []  # re-armed: drops again

    def test_unlimited_firings(self):
        plan = FaultPlan([Fault("corrupt", 0, addr=0, value=1, firings=None)])
        for _ in range(3):
            m = QSM(fault_plan=plan)
            with m.phase() as ph:
                ph.write(0, 0, 0)
            assert m.peek(0) == 1


class TestEvents:
    def test_event_round_trip(self):
        event = FaultEvent(2, "drop", {"messages": [[0, 1]]})
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_events_land_in_cost_records(self):
        plan = FaultPlan([Fault("corrupt", 0, addr=0, value=9)])
        m = QSM(record_costs=True, fault_plan=plan)
        with m.phase() as ph:
            ph.write(0, 0, 1)
        [rec] = m.cost_records
        assert [f["kind"] for f in rec.faults] == ["corrupt"]

    def test_rebuilt_records_recover_fault_events(self):
        from repro.obs.records import machine_cost_records

        plan = FaultPlan([Fault("drop", 0, src=0)])
        b = BSP(2, fault_plan=plan)  # record_costs off: records are rebuilt
        bsp_round(b, [(0, 1, "m")])
        [rec] = machine_cost_records(b)
        assert [f["kind"] for f in rec.faults] == ["drop"]


class TestRandomPlans:
    def test_seeded_and_model_scoped(self):
        a = random_fault_plan("bsp", seed=5)
        b = random_fault_plan("bsp", seed=5)
        assert a.to_specs() == b.to_specs()
        for spec in random_fault_plan("shared", seed=1, max_faults=4).to_specs():
            assert spec["kind"] == "corrupt"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            random_fault_plan("quantum", seed=0)
