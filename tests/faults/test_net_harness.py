"""Fleet-chaos harness: reference determinism and one end-to-end case.

The full five-case suite runs in CI's ``chaos-net`` job (``python -m
repro chaos --net-only``); here we keep tier-1 wall time bounded by
exercising the machinery through its cheapest case only.
"""

import json

from repro.faults.harness import render_chaos_report
from repro.faults.net_harness import (
    chaos_point_task,
    default_net_cases,
    point_kwargs,
    run_net_chaos_suite,
    serial_reference,
)


def test_chaos_point_task_is_deterministic():
    a = chaos_point_task(**point_kwargs(0))
    b = chaos_point_task(**point_kwargs(0))
    assert a == b
    assert a["correct"]


def test_serial_reference_covers_every_point():
    ref = serial_reference(3)
    assert sorted(ref) == ["p0", "p1", "p2"]
    assert len({r["n"] for r in ref.values()}) == 3  # distinct inputs


def test_shipped_cases_cover_the_failure_matrix():
    names = [c.name for c in default_net_cases()]
    assert names == [
        "sigkill-mid-campaign",
        "reconnect-after-requeue",
        "split-brain-registration",
        "partition-mid-superstep",
        "sigkill-plus-partition",
    ]


def test_sigkill_case_end_to_end(tmp_path):
    log = tmp_path / "frames.jsonl"
    report = run_net_chaos_suite(
        points=3, fault_log=str(log), only="sigkill-mid-campaign"
    )
    assert len(report.results) == 1
    result = report.results[0]
    assert result.ok, result.note
    assert "requeues=" in result.note
    rendered = render_chaos_report(report)
    assert "sigkill-mid-campaign" in rendered
    # The frame-level artifact exists and parses.
    rows = [json.loads(line) for line in log.read_text().splitlines()]
    assert rows and all(r["case"] == "sigkill-mid-campaign" for r in rows)
    assert any(r["frame"] == "ok" for r in rows)


def test_unknown_filter_yields_empty_ok_report():
    report = run_net_chaos_suite(points=2, only="no-such-case")
    assert report.results == []
    assert report.ok
