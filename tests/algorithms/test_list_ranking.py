"""Pointer-jumping list ranking."""

import pytest

from repro.algorithms.list_ranking import list_rank
from repro.core import GSM, QSM, SQSM, GSMParams, QSMParams, SQSMParams
from repro.problems import gen_list, verify_list_ranks


class TestListRank:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 33, 100])
    def test_unit_weights(self, n):
        next_ptrs, order = gen_list(n, seed=n)
        r = list_rank(QSM(QSMParams(g=2)), next_ptrs)
        assert verify_list_ranks(next_ptrs, r.value)

    def test_identity_list(self):
        n = 10
        nxt = [i + 1 for i in range(n - 1)] + [None]
        r = list_rank(SQSM(SQSMParams(g=2)), nxt)
        assert r.value == list(range(n, 0, -1))

    def test_weighted(self):
        nxt = [1, 2, None]
        r = list_rank(QSM(), nxt, weights=[5, 7, 11])
        assert r.value == [23, 18, 11]

    def test_zero_weights(self):
        nxt = [1, None]
        r = list_rank(QSM(), nxt, weights=[0, 0])
        assert r.value == [0, 0]

    def test_empty(self):
        assert list_rank(QSM(), []).value == []

    def test_single_node(self):
        assert list_rank(QSM(), [None]).value == [1]

    def test_gsm(self):
        next_ptrs, _ = gen_list(20, seed=3)
        r = list_rank(GSM(GSMParams(alpha=2, beta=2)), next_ptrs)
        assert verify_list_ranks(next_ptrs, r.value)

    def test_logarithmic_iterations(self):
        next_ptrs, _ = gen_list(128, seed=4)
        r = list_rank(QSM(QSMParams(g=1)), next_ptrs)
        assert r.extra["iterations"] <= 8  # ceil(log2 128) = 7 (+ slack)

    def test_erew_contention_stays_one(self):
        next_ptrs, _ = gen_list(64, seed=5)
        m = QSM(QSMParams(g=1))
        list_rank(m, next_ptrs)
        assert all(rec.kappa == 1 for rec in m.history)

    def test_validation(self):
        with pytest.raises(ValueError):
            list_rank(QSM(), [1, None], weights=[1])
        with pytest.raises(ValueError):
            list_rank(QSM(), [5, None])  # out of range
        with pytest.raises(ValueError):
            list_rank(QSM(), [1, 1, None])  # two predecessors
        with pytest.raises(ValueError):
            list_rank(QSM(), [0, None])  # self loop

    def test_cycle_detected(self):
        # 0 -> 1 -> 2 -> 0 is not a list; converge guard trips.
        with pytest.raises((RuntimeError, ValueError)):
            list_rank(QSM(), [1, 2, 0])
