"""Padded U[0,1] sort: ordering contract and padding discipline."""

import pytest

from repro.algorithms.padded_sort import padded_sort
from repro.core import GSM, QSM, SQSM, GSMParams, QSMParams, SQSMParams
from repro.problems import gen_padded_sort_input, verify_padded_sort


class TestPaddedSort:
    @pytest.mark.parametrize("n", [1, 5, 32, 100, 300])
    def test_contract(self, n):
        vals = gen_padded_sort_input(n, seed=n)
        r = padded_sort(QSM(QSMParams(g=2)), vals, seed=n + 1)
        assert verify_padded_sort(vals, r.value)

    def test_empty(self):
        assert padded_sort(QSM(), []).value == []

    def test_duplicates_tolerated(self):
        vals = [0.5] * 10 + [0.25] * 5
        r = padded_sort(QSM(QSMParams(g=2)), vals, seed=0)
        non_null = [v for v in r.value if v is not None]
        assert non_null == sorted(vals)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            padded_sort(QSM(), [0.5, 1.5])

    def test_sqsm(self):
        vals = gen_padded_sort_input(64, seed=3)
        r = padded_sort(SQSM(SQSMParams(g=2)), vals, seed=4)
        assert verify_padded_sort(vals, r.value)

    def test_gsm(self):
        vals = gen_padded_sort_input(48, seed=5)
        r = padded_sort(GSM(GSMParams(alpha=2, beta=2)), vals, seed=6)
        assert verify_padded_sort(vals, r.value)

    def test_reproducible(self):
        vals = gen_padded_sort_input(50, seed=7)
        r1 = padded_sort(QSM(seed=0), vals, seed=8)
        r2 = padded_sort(QSM(seed=0), vals, seed=8)
        assert r1.value == r2.value

    def test_adversarial_input_restarts_then_succeeds(self):
        # All values in one bucket: guaranteed overflow at default slack,
        # resolved by restarting with doubled slack.
        vals = [0.5 + i * 1e-6 for i in range(60)]
        r = padded_sort(QSM(QSMParams(g=2)), vals, seed=9, bucket_expected=4)
        non_null = [v for v in r.value if v is not None]
        assert non_null == sorted(vals)
        assert r.extra["restarts"] >= 1

    def test_restart_cap(self):
        vals = [0.5] * 40
        with pytest.raises(RuntimeError):
            padded_sort(
                QSM(QSMParams(g=2)), vals, seed=10, bucket_expected=4, max_restarts=0
            )

    def test_output_size_linear(self):
        n = 256
        vals = gen_padded_sort_input(n, seed=11)
        r = padded_sort(QSM(QSMParams(g=2)), vals, seed=12)
        assert r.extra["output_size"] <= 3 * n + 256
