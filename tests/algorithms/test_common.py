"""Shared algorithm plumbing: RunResult, Allocator, fan-in selection."""

import pytest

from repro.algorithms.common import (
    Allocator,
    CostMeter,
    RunResult,
    bsp_fanin,
    default_tree_fanin,
    model_name,
)
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams


class TestAllocator:
    def test_bump(self):
        a = Allocator()
        assert a.alloc(10) == 0
        assert a.alloc(5) == 10
        assert a.watermark == 15

    def test_base_offset(self):
        a = Allocator(base=100)
        assert a.alloc(1) == 100

    def test_zero_size(self):
        a = Allocator()
        assert a.alloc(0) == 0
        assert a.watermark == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Allocator().alloc(-1)
        with pytest.raises(ValueError):
            Allocator(base=-1)


class TestCostMeter:
    def test_measures_delta(self):
        m = QSM(QSMParams(g=2))
        with m.phase() as ph:
            ph.write(0, 0, 1)
        meter = CostMeter(m)
        with m.phase() as ph:
            ph.write(0, 1, 2)
        r = meter.result("answer", note="x")
        assert r.time == 2.0
        assert r.phases == 1
        assert r.extra == {"note": "x"}
        assert r.value == "answer"

    def test_bsp_counts_supersteps(self):
        b = BSP(2, BSPParams(g=1, L=3))
        meter = CostMeter(b)
        with b.superstep() as ss:
            ss.local(0, 1)
        assert meter.result(None).phases == 1


class TestModelName:
    def test_names(self):
        assert model_name(QSM()) == "QSM"
        assert model_name(SQSM()) == "s-QSM"
        assert model_name(GSM()) == "GSM"
        assert model_name(BSP(1)) == "BSP"

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            model_name(object())


class TestFaninSelection:
    def test_qsm_contention_cheap_uses_g(self):
        assert default_tree_fanin(QSM(QSMParams(g=8)), contention_cheap=True) == 8

    def test_qsm_read_combining_uses_2(self):
        assert default_tree_fanin(QSM(QSMParams(g=8))) == 2

    def test_sqsm_always_2(self):
        assert default_tree_fanin(SQSM(SQSMParams(g=8)), contention_cheap=True) == 2

    def test_gsm_uses_min_alpha_beta(self):
        assert default_tree_fanin(GSM(GSMParams(alpha=4, beta=6))) == 4

    def test_bsp_fanin_L_over_g(self):
        assert bsp_fanin(BSP(4, BSPParams(g=2, L=16))) == 8

    def test_bsp_fanin_floor_two(self):
        assert bsp_fanin(BSP(4, BSPParams(g=4, L=4))) == 2

    def test_bsp_fanin_type_checked(self):
        with pytest.raises(TypeError):
            bsp_fanin(QSM())
