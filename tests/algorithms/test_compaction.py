"""LAC: dart throwing and deterministic prefix compaction."""

import pytest

from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.core import GSM, QSM, SQSM, GSMParams, QSMParams, SQSMParams
from repro.problems import gen_sparse_array, verify_lac


class TestLacDart:
    @pytest.mark.parametrize("n,h", [(16, 4), (64, 16), (200, 20), (50, 50)])
    def test_contract(self, n, h):
        arr = gen_sparse_array(n, h, seed=n + h, exact=True)
        r = lac_dart(QSM(QSMParams(g=4)), arr, h=h, seed=1)
        assert verify_lac(arr, r.value, h)

    def test_empty_array(self):
        r = lac_dart(QSM(), [None] * 10, seed=0)
        assert r.value == []
        assert r.extra["rounds"] == 0

    def test_single_item(self):
        arr = [None, "x", None]
        r = lac_dart(QSM(), arr, seed=0)
        assert [v for v in r.value if v is not None] == ["x"]

    def test_h_defaults_to_count(self):
        arr = gen_sparse_array(40, 10, seed=2, exact=True)
        r = lac_dart(QSM(QSMParams(g=2)), arr, seed=3)
        assert verify_lac(arr, r.value, 10)

    def test_h_too_small_rejected(self):
        arr = gen_sparse_array(20, 10, seed=1, exact=True)
        with pytest.raises(ValueError):
            lac_dart(QSM(), arr, h=2)

    def test_expansion_validated(self):
        with pytest.raises(ValueError):
            lac_dart(QSM(), [None, "a"], expansion=1)

    def test_destination_linear_in_h(self):
        # Segments sum to <= 2 * expansion * h + small tail.
        n, h = 256, 32
        arr = gen_sparse_array(n, h, seed=9, exact=True)
        r = lac_dart(QSM(QSMParams(g=2)), arr, h=h, expansion=4, seed=4)
        assert r.extra["destination_size"] <= 8 * h + 4 * h

    def test_gsm_strong_queuing_winner_convention(self):
        arr = gen_sparse_array(40, 12, seed=5, exact=True)
        r = lac_dart(GSM(GSMParams(alpha=2, beta=2)), arr, seed=6)
        assert verify_lac(arr, r.value, 12)

    def test_reproducible(self):
        arr = gen_sparse_array(60, 15, seed=7, exact=True)
        r1 = lac_dart(QSM(seed=0), arr, seed=8)
        r2 = lac_dart(QSM(seed=0), arr, seed=8)
        assert r1.value == r2.value and r1.time == r2.time

    def test_rounds_loglog_scale(self):
        # Dart rounds grow very slowly with n (doubly-exponential decay).
        arr = gen_sparse_array(4096, 1024, seed=10, exact=True)
        r = lac_dart(QSM(QSMParams(g=2)), arr, seed=11)
        assert r.extra["rounds"] <= 12

    def test_forced_fallback_still_correct(self):
        arr = gen_sparse_array(64, 32, seed=12, exact=True)
        r = lac_dart(QSM(QSMParams(g=2)), arr, seed=13, max_rounds=1)
        assert verify_lac(arr, r.value, 32)
        # With one dart round some items usually remain for the fallback.
        assert r.extra["fallback_items"] >= 0


class TestLacPrefix:
    @pytest.mark.parametrize("n,h", [(16, 4), (64, 16), (100, 1), (10, 10)])
    def test_exact_compaction(self, n, h):
        arr = gen_sparse_array(n, h, seed=n * h + 1, exact=True)
        r = lac_prefix(SQSM(SQSMParams(g=2)), arr)
        items = [v for v in arr if v is not None]
        assert r.value == items  # order-preserving, exactly packed

    def test_empty(self):
        assert lac_prefix(QSM(), [None] * 8).value == []

    def test_h_check(self):
        arr = gen_sparse_array(20, 10, seed=3, exact=True)
        with pytest.raises(ValueError):
            lac_prefix(QSM(), arr, h=1)

    def test_gsm(self):
        arr = gen_sparse_array(30, 7, seed=4, exact=True)
        r = lac_prefix(GSM(GSMParams()), arr)
        assert r.value == [v for v in arr if v is not None]

    def test_dart_cheaper_than_prefix_for_large_sparse(self):
        # The randomized algorithm's advantage (O(g loglog) vs O(g log)).
        n, h = 4096, 64
        arr = gen_sparse_array(n, h, seed=5, exact=True)
        t_dart = lac_dart(QSM(QSMParams(g=4)), arr, h=h, seed=6).time
        arr2 = gen_sparse_array(n, h, seed=5, exact=True)
        t_prefix = lac_prefix(QSM(QSMParams(g=4)), arr2).time
        assert t_dart < t_prefix
