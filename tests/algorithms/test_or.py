"""OR algorithms: correctness and the QSM-vs-s-QSM fan-in split."""

import pytest

from repro.algorithms.or_ import or_bsp, or_rounds, or_sparse_random, or_tree_writes
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor
from repro.problems import gen_bits, verify_or


class TestOrTreeWrites:
    @pytest.mark.parametrize("n", [1, 2, 3, 9, 50, 128])
    @pytest.mark.parametrize("density", [0.0, 0.05, 1.0])
    def test_correct(self, n, density):
        bits = gen_bits(n, density=density, seed=n)
        r = or_tree_writes(QSM(QSMParams(g=4)), bits)
        assert verify_or(bits, r.value)

    def test_single_one_found(self):
        bits = [0] * 100
        bits[73] = 1
        assert or_tree_writes(QSM(QSMParams(g=2)), bits).value == 1

    def test_all_zeros(self):
        assert or_tree_writes(QSM(QSMParams(g=2)), [0] * 64).value == 0

    def test_gsm_strong_queuing_handled(self):
        bits = gen_bits(40, seed=4)
        r = or_tree_writes(GSM(GSMParams(alpha=2, beta=3)), bits)
        assert verify_or(bits, r.value)

    def test_default_fanin_is_g_on_qsm(self):
        r = or_tree_writes(QSM(QSMParams(g=8)), [1] * 32)
        assert r.extra["fan_in"] == 8

    def test_default_fanin_is_2_on_sqsm(self):
        r = or_tree_writes(SQSM(SQSMParams(g=8)), [1] * 32)
        assert r.extra["fan_in"] == 2

    def test_qsm_advantage_grows_with_g(self):
        # QSM: O(g log n / log g); s-QSM: O(g log n).  The ratio grows with g.
        bits = [0] * 1024
        ratios = []
        for g in [4, 16, 64]:
            tq = or_tree_writes(QSM(QSMParams(g=g)), bits).time
            ts = or_tree_writes(SQSM(SQSMParams(g=g)), bits).time
            ratios.append(ts / tq)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_fanin_validated(self):
        with pytest.raises(ValueError):
            or_tree_writes(QSM(), [1, 0], fan_in=1)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            or_tree_writes(QSM(), [0, None])


class TestOrSparseRandom:
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.5, 1.0])
    def test_correct(self, density):
        bits = gen_bits(120, density=density, seed=int(density * 100))
        m = QSM(QSMParams(g=4, unit_time_concurrent_reads=True))
        r = or_sparse_random(m, bits, seed=7)
        assert verify_or(bits, r.value)

    def test_requires_concurrent_read_variant(self):
        with pytest.raises(ValueError):
            or_sparse_random(QSM(QSMParams(g=4)), [1, 0])

    def test_rejects_sqsm(self):
        with pytest.raises(TypeError):
            or_sparse_random(SQSM(), [1, 0])

    def test_reproducible_with_seed(self):
        bits = gen_bits(64, seed=11)
        m1 = QSM(QSMParams(g=2, unit_time_concurrent_reads=True))
        m2 = QSM(QSMParams(g=2, unit_time_concurrent_reads=True))
        t1 = or_sparse_random(m1, bits, seed=3).time
        t2 = or_sparse_random(m2, bits, seed=3).time
        assert t1 == t2


class TestOrBSP:
    @pytest.mark.parametrize("n,p", [(16, 4), (100, 8), (5, 5), (64, 1)])
    def test_correct(self, n, p):
        bits = gen_bits(n, density=0.1, seed=n - p)
        r = or_bsp(BSP(p, BSPParams(g=2, L=8)), bits)
        assert verify_or(bits, r.value)

    def test_all_zero_no_messages_after_local(self):
        b = BSP(8, BSPParams(g=2, L=8))
        or_bsp(b, [0] * 64)
        # Combine supersteps route 0 messages: every superstep costs L.
        assert all(c == 8.0 for c in b.step_costs)


class TestOrRounds:
    @pytest.mark.parametrize("n,p", [(64, 8), (256, 16), (100, 4)])
    def test_correct(self, n, p):
        bits = gen_bits(n, density=0.03, seed=p)
        r = or_rounds(QSM(QSMParams(g=2)), bits, p=p)
        assert verify_or(bits, r.value)

    def test_computes_in_rounds_on_qsm(self):
        n, p = 256, 16
        m = QSM(QSMParams(g=4))
        aud = RoundAuditor(m, n=n, p=p)
        or_rounds(m, gen_bits(n, seed=0), p=p)
        aud.audit()
        assert aud.computes_in_rounds, [str(v) for v in aud.violations]

    def test_qsm_uses_bigger_fanin_than_sqsm(self):
        # The QSM round budget allows fan-in g*n/p; the s-QSM only n/p.
        n, p = 256, 16
        rq = or_rounds(QSM(QSMParams(g=8)), [0] * n, p=p)
        rs = or_rounds(SQSM(SQSMParams(g=8)), [0] * n, p=p)
        assert rq.extra["fan_in"] > rs.extra["fan_in"]

    def test_fewer_rounds_on_qsm_at_large_g(self):
        n, p = 4096, 1024
        rq = or_rounds(QSM(QSMParams(g=64)), [0] * n, p=p)
        rs = or_rounds(SQSM(SQSMParams(g=64)), [0] * n, p=p)
        assert rq.phases <= rs.phases
