"""Size-preserving reductions from parity (Section 3 closing remark)."""

import pytest

from repro.algorithms.reductions import (
    parity_via_list_ranking,
    parity_via_sorting,
    parity_via_sorting_bsp,
)
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.problems import gen_bits, verify_parity


class TestParityViaListRanking:
    @pytest.mark.parametrize("n", [1, 2, 8, 33, 100])
    def test_correct(self, n):
        bits = gen_bits(n, seed=n)
        r = parity_via_list_ranking(QSM(QSMParams(g=2)), bits)
        assert verify_parity(bits, r.value)

    def test_reports_total_ones(self):
        bits = [1, 0, 1, 1]
        r = parity_via_list_ranking(QSM(), bits)
        assert r.extra["total_ones"] == 3

    def test_all_zero(self):
        assert parity_via_list_ranking(QSM(), [0] * 16).value == 0

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            parity_via_list_ranking(QSM(), [0, 3])


class TestParityViaSorting:
    @pytest.mark.parametrize("n", [1, 2, 9, 50, 120])
    def test_correct(self, n):
        bits = gen_bits(n, seed=n * 3)
        r = parity_via_sorting(SQSM(SQSMParams(g=2)), bits)
        assert verify_parity(bits, r.value)

    def test_all_ones(self):
        bits = [1] * 9
        r = parity_via_sorting(QSM(), bits)
        assert r.value == 1 and r.extra["total_ones"] == 9

    def test_binary_search_decode_cost_is_logarithmic(self):
        # The decode adds O(log n) phases on top of the sort.
        bits = [0] * 256
        m = QSM(QSMParams(g=1))
        before_phases = m.phase_count
        parity_via_sorting(m, bits)
        # Sorting uses O(sqrt n)-ish phases here; the decode adds <= log n + 2.
        assert m.phase_count - before_phases < 256


class TestParityViaSortingBSP:
    @pytest.mark.parametrize("n,p", [(8, 2), (40, 4), (100, 8)])
    def test_correct(self, n, p):
        bits = gen_bits(n, seed=n + p)
        r = parity_via_sorting_bsp(BSP(p, BSPParams(g=2, L=8)), bits)
        assert verify_parity(bits, r.value)

    def test_single_component(self):
        bits = gen_bits(12, seed=1)
        r = parity_via_sorting_bsp(BSP(1, BSPParams(g=1, L=1)), bits)
        assert verify_parity(bits, r.value)


class TestSizePreservation:
    def test_list_instance_size_equals_bit_count(self):
        # The reduction builds an n-node list for n bits: this is what makes
        # the parity lower bound transfer.
        bits = gen_bits(17, seed=2)
        m = QSM(QSMParams(g=1))
        parity_via_list_ranking(m, bits)
        # The list-rank state array occupies exactly n cells at the base.
        state_cells = [a for a in range(17)]
        assert all(m.peek(a) is not None for a in state_cells)
