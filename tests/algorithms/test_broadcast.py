"""Broadcast correctness and cost shape on all models."""

import pytest

from repro.algorithms.broadcast import broadcast_bsp, broadcast_shared
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams


class TestSharedBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 33, 100])
    def test_all_cells_filled(self, n):
        m = QSM(QSMParams(g=4))
        r = broadcast_shared(m, "tok", n)
        assert r.value == ["tok"] * n

    def test_sqsm(self):
        m = SQSM(SQSMParams(g=2))
        assert broadcast_shared(m, 5, 20).value == [5] * 20

    def test_gsm(self):
        m = GSM(GSMParams(alpha=1, beta=4))
        r = broadcast_shared(m, "v", 10)
        # GSM cells are tuples.
        assert all(v == ("v",) for v in r.value)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            broadcast_shared(QSM(), "x", 0)

    def test_explicit_fanin_validated(self):
        with pytest.raises(ValueError):
            broadcast_shared(QSM(), "x", 4, fan_in=1)

    def test_qsm_faster_than_sqsm_at_large_g(self):
        # QSM reads are contention-cheap: fan-in g beats the s-QSM's binary tree.
        n, g = 256, 16
        q = QSM(QSMParams(g=g))
        s = SQSM(SQSMParams(g=g))
        tq = broadcast_shared(q, 0, n).time
        ts = broadcast_shared(s, 0, n).time
        assert tq < ts

    def test_cost_grows_with_n(self):
        times = []
        for n in [16, 256, 4096]:
            m = QSM(QSMParams(g=4))
            times.append(broadcast_shared(m, 0, n).time)
        assert times[0] < times[1] < times[2]


class TestBSPBroadcast:
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 17])
    def test_all_components_receive(self, p):
        b = BSP(p, BSPParams(g=2, L=8))
        assert broadcast_bsp(b, "msg").value == ["msg"] * p

    def test_superstep_cost_is_L_each(self):
        b = BSP(64, BSPParams(g=2, L=8))
        r = broadcast_bsp(b, 1)
        # Default fan-out L/g = 4: each superstep costs exactly L.
        assert all(c == 8.0 for c in b.step_costs)

    def test_larger_L_over_g_fewer_supersteps(self):
        b1 = BSP(256, BSPParams(g=2, L=4))
        b2 = BSP(256, BSPParams(g=2, L=32))
        r1 = broadcast_bsp(b1, 1)
        r2 = broadcast_bsp(b2, 1)
        assert r2.phases < r1.phases

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            broadcast_bsp(BSP(4), 1, fan_out=0)
