"""Parity algorithms: correctness on all models, Section 8 cost shapes."""

import pytest

from repro.algorithms.parity import parity_blocks, parity_bsp, parity_rounds, parity_tree
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor
from repro.problems import gen_bits, verify_parity


class TestParityTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 64, 100])
    def test_correct(self, n):
        bits = gen_bits(n, seed=n)
        r = parity_tree(SQSM(SQSMParams(g=2)), bits)
        assert verify_parity(bits, r.value)

    @pytest.mark.parametrize("fan_in", [2, 3, 4, 7])
    def test_fanins(self, fan_in):
        bits = gen_bits(50, seed=fan_in)
        r = parity_tree(QSM(QSMParams(g=2)), bits, fan_in=fan_in)
        assert verify_parity(bits, r.value)

    def test_gsm_default_fanin_alpha(self):
        bits = gen_bits(32, seed=1)
        m = GSM(GSMParams(alpha=4, beta=4))
        r = parity_tree(m, bits)
        assert verify_parity(bits, r.value)
        assert r.extra["fan_in"] == 4

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            parity_tree(QSM(), [0, 2, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parity_tree(QSM(), [])

    def test_sqsm_cost_matches_g_log_n_shape(self):
        # Theta(g log n): doubling g doubles time; squaring n doubles time.
        bits = [1] * 256
        t_g2 = parity_tree(SQSM(SQSMParams(g=2)), bits).time
        t_g4 = parity_tree(SQSM(SQSMParams(g=4)), bits).time
        assert t_g4 == pytest.approx(2 * t_g2)
        t_n2 = parity_tree(SQSM(SQSMParams(g=2)), [1] * 16).time
        t_n4 = parity_tree(SQSM(SQSMParams(g=2)), [1] * 256).time
        assert t_n4 == pytest.approx(2 * t_n2)


class TestParityBlocks:
    @pytest.mark.parametrize("n", [2, 3, 9, 33, 100])
    def test_correct_plain(self, n):
        bits = gen_bits(n, seed=n + 5)
        r = parity_blocks(QSM(QSMParams(g=8)), bits)
        assert verify_parity(bits, r.value)

    @pytest.mark.parametrize("n", [2, 5, 40, 100])
    def test_correct_concurrent_reads(self, n):
        bits = gen_bits(n, seed=n)
        m = QSM(QSMParams(g=8, unit_time_concurrent_reads=True))
        r = parity_blocks(m, bits)
        assert verify_parity(bits, r.value)

    def test_single_bit(self):
        r = parity_blocks(QSM(QSMParams(g=4)), [1])
        assert r.value == 1

    def test_rejects_sqsm(self):
        with pytest.raises(TypeError):
            parity_blocks(SQSM(), [1, 0])

    def test_block_size_respects_contention_budget(self):
        # Plain QSM: read contention 2^b must stay <= g.
        m = QSM(QSMParams(g=16))
        r = parity_blocks(m, gen_bits(64, seed=0))
        b = r.extra["block_size"]
        assert 2 ** (b - 1) <= 16 or b == 2

    def test_beats_binary_tree_at_large_g(self):
        bits = [1] * 1024
        g = 64
        t_tree = parity_tree(QSM(QSMParams(g=g)), bits).time
        t_blocks = parity_blocks(QSM(QSMParams(g=g)), bits).time
        assert t_blocks < t_tree

    def test_concurrent_reads_never_slower(self):
        bits = [1] * 512
        g = 16
        t_plain = parity_blocks(QSM(QSMParams(g=g)), bits).time
        t_cr = parity_blocks(
            QSM(QSMParams(g=g, unit_time_concurrent_reads=True)), bits
        ).time
        assert t_cr <= t_plain

    def test_explicit_block_size(self):
        bits = gen_bits(30, seed=2)
        r = parity_blocks(QSM(QSMParams(g=4)), bits, block_size=3)
        assert verify_parity(bits, r.value)
        with pytest.raises(ValueError):
            parity_blocks(QSM(QSMParams(g=4)), bits, block_size=1)


class TestParityBSP:
    @pytest.mark.parametrize("n,p", [(16, 4), (100, 8), (7, 7), (64, 1)])
    def test_correct(self, n, p):
        bits = gen_bits(n, seed=n * p)
        r = parity_bsp(BSP(p, BSPParams(g=2, L=8)), bits)
        assert verify_parity(bits, r.value)

    def test_larger_L_over_g_fewer_supersteps(self):
        bits = [1] * 256
        s1 = parity_bsp(BSP(64, BSPParams(g=2, L=4)), bits).phases
        s2 = parity_bsp(BSP(64, BSPParams(g=2, L=32)), bits).phases
        assert s2 < s1


class TestParityRounds:
    @pytest.mark.parametrize("n,p", [(16, 4), (256, 16), (100, 10), (64, 64)])
    def test_correct(self, n, p):
        bits = gen_bits(n, seed=n + p)
        r = parity_rounds(QSM(QSMParams(g=2)), bits, p=p)
        assert verify_parity(bits, r.value)

    def test_computes_in_rounds(self):
        n, p = 256, 16
        m = SQSM(SQSMParams(g=2))
        aud = RoundAuditor(m, n=n, p=p)
        parity_rounds(m, gen_bits(n, seed=3), p=p)
        aud.audit()
        assert aud.computes_in_rounds, [str(v) for v in aud.violations]

    def test_round_count_shape(self):
        # rounds ~ log n / log(n/p): larger blocks -> fewer rounds.
        n = 4096
        r1 = parity_rounds(QSM(QSMParams(g=1)), [1] * n, p=n // 2).phases
        r2 = parity_rounds(QSM(QSMParams(g=1)), [1] * n, p=n // 256).phases
        assert r2 < r1

    def test_p_validated(self):
        with pytest.raises(ValueError):
            parity_rounds(QSM(), [1, 0], p=3)
