"""Prefix sums on all models: correctness, rounds discipline, cost shape."""

from itertools import accumulate

import pytest

from repro.algorithms.prefix import prefix_sums, prefix_sums_bsp, prefix_sums_rounds
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor


def expected(vals):
    return list(accumulate(vals))


class TestSharedScan:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 31, 64, 100])
    def test_correct_for_sizes(self, n):
        vals = [(i * 7 + 3) % 11 for i in range(n)]
        m = QSM(QSMParams(g=2))
        assert prefix_sums(m, vals).value == expected(vals)

    @pytest.mark.parametrize("fan_in", [2, 3, 4, 8])
    def test_correct_for_fanins(self, fan_in):
        vals = list(range(37))
        m = SQSM(SQSMParams(g=2))
        assert prefix_sums(m, vals, fan_in=fan_in).value == expected(vals)

    def test_empty_input(self):
        assert prefix_sums(QSM(), []).value == []

    def test_gsm(self):
        vals = [2, 4, 6, 8, 10]
        assert prefix_sums(GSM(GSMParams(alpha=2, beta=2)), vals).value == expected(vals)

    def test_non_numeric_monoid(self):
        vals = ["a", "b", "c", "d"]
        m = QSM()
        assert prefix_sums(m, vals).value == ["a", "ab", "abc", "abcd"]

    def test_rejects_fanin_one(self):
        with pytest.raises(ValueError):
            prefix_sums(QSM(), [1, 2], fan_in=1)

    def test_cost_scales_log_n(self):
        # Doubling n adds O(1) levels: time grows by an additive constant.
        t = {}
        for n in [64, 128, 256]:
            m = SQSM(SQSMParams(g=1))
            t[n] = prefix_sums(m, [1] * n).value and m.time
        assert t[128] - t[64] == pytest.approx(t[256] - t[128], abs=t[64])


class TestRoundsScan:
    @pytest.mark.parametrize("n,p", [(16, 4), (64, 8), (100, 10), (37, 5), (8, 8)])
    def test_correct(self, n, p):
        vals = [(i * 13 + 1) % 7 for i in range(n)]
        m = QSM(QSMParams(g=2))
        assert prefix_sums_rounds(m, vals, p=p).value == expected(vals)

    def test_computes_in_rounds(self):
        n, p = 256, 16
        m = QSM(QSMParams(g=2))
        aud = RoundAuditor(m, n=n, p=p, constant=1.0)
        prefix_sums_rounds(m, [1] * n, p=p)
        aud.audit()
        assert aud.computes_in_rounds, [str(v) for v in aud.violations]

    def test_round_count_shrinks_with_larger_blocks(self):
        # More items per processor (smaller p) -> fewer rounds.
        n = 4096
        r_small_block = prefix_sums_rounds(QSM(QSMParams(g=1)), [1] * n, p=n // 2).phases
        r_big_block = prefix_sums_rounds(QSM(QSMParams(g=1)), [1] * n, p=n // 64).phases
        assert r_big_block < r_small_block

    def test_p_validation(self):
        with pytest.raises(ValueError):
            prefix_sums_rounds(QSM(), [1, 2], p=0)
        with pytest.raises(ValueError):
            prefix_sums_rounds(QSM(), [1, 2], p=3)


class TestBSPScan:
    @pytest.mark.parametrize("n,p", [(10, 4), (64, 8), (5, 8), (100, 7), (1, 1)])
    def test_correct(self, n, p):
        vals = [(3 * i + 2) % 9 for i in range(n)]
        b = BSP(p, BSPParams(g=2, L=8))
        assert prefix_sums_bsp(b, vals).value == expected(vals)

    def test_empty(self):
        assert prefix_sums_bsp(BSP(2), []).value == []

    def test_superstep_count_shrinks_with_L_over_g(self):
        n = 512
        b1 = BSP(64, BSPParams(g=2, L=4))
        b2 = BSP(64, BSPParams(g=2, L=64))
        s1 = prefix_sums_bsp(b1, [1] * n).phases
        s2 = prefix_sums_bsp(b2, [1] * n).phases
        assert s2 <= s1
