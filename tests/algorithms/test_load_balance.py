"""Load balancing: content preservation and the O(1 + h/n) contract."""

import pytest

from repro.algorithms.load_balance import load_balance
from repro.core import GSM, QSM, SQSM, GSMParams, QSMParams, SQSMParams
from repro.problems import gen_loads, verify_load_balance


class TestLoadBalance:
    @pytest.mark.parametrize("n,h,skew", [(4, 8, 1.0), (8, 64, 2.0), (16, 16, 3.0), (10, 0, 1.0)])
    def test_contract(self, n, h, skew):
        loads = gen_loads(n, h, skew=skew, seed=n + h)
        r = load_balance(QSM(QSMParams(g=2)), loads)
        assert verify_load_balance(loads, r.value)

    def test_exact_quota(self):
        loads = gen_loads(8, 33, skew=4.0, seed=1)
        r = load_balance(QSM(QSMParams(g=2)), loads)
        assert r.extra["per_proc_max"] <= -(-33 // 8)  # ceil(h/n)

    def test_all_on_one_processor(self):
        loads = [[f"o{k}" for k in range(20)]] + [[] for _ in range(4)]
        r = load_balance(SQSM(SQSMParams(g=2)), loads)
        assert verify_load_balance(loads, r.value)
        assert r.extra["per_proc_max"] == 4  # ceil(20/5)

    def test_empty_everything(self):
        r = load_balance(QSM(), [[], [], []])
        assert r.value == [[], [], []]

    def test_no_processors(self):
        assert load_balance(QSM(), []).value == []

    def test_gsm(self):
        loads = gen_loads(6, 18, seed=2)
        r = load_balance(GSM(GSMParams(alpha=2, beta=2)), loads)
        assert verify_load_balance(loads, r.value)

    def test_cost_charged_for_heavy_sender(self):
        # A processor holding k objects must issue k writes: cost >= g*k.
        k = 32
        loads = [["x%d" % i for i in range(k)], []]
        m = QSM(QSMParams(g=3))
        load_balance(m, loads)
        assert m.time >= 3 * k
