"""Sample sort on BSP and shared memory."""

import pytest

from repro.algorithms.sorting import sample_sort_bsp, sort_shared
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.problems import gen_sort_input, verify_sorted


class TestSampleSortBSP:
    @pytest.mark.parametrize("n,p", [(1, 1), (10, 4), (100, 8), (64, 64), (97, 5)])
    def test_correct(self, n, p):
        vals = gen_sort_input(n, universe=50, seed=n * p)
        r = sample_sort_bsp(BSP(p, BSPParams(g=2, L=8)), vals)
        assert verify_sorted(vals, r.value)

    def test_empty(self):
        assert sample_sort_bsp(BSP(4), []).value == []

    def test_all_equal_values(self):
        vals = [7] * 40
        r = sample_sort_bsp(BSP(8, BSPParams(g=2, L=4)), vals)
        assert r.value == vals

    def test_already_sorted(self):
        vals = list(range(50))
        r = sample_sort_bsp(BSP(4, BSPParams(g=2, L=4)), vals)
        assert verify_sorted(vals, r.value)

    def test_reverse_sorted(self):
        vals = list(range(50))[::-1]
        r = sample_sort_bsp(BSP(4, BSPParams(g=2, L=4)), vals)
        assert verify_sorted(vals, r.value)

    def test_oversampling_validated(self):
        with pytest.raises(ValueError):
            sample_sort_bsp(BSP(2), [1, 2], oversampling=0)

    def test_bucket_balance_reported(self):
        vals = gen_sort_input(400, seed=1)
        r = sample_sort_bsp(BSP(8, BSPParams(g=2, L=8)), vals, oversampling=8)
        assert r.extra["max_bucket"] >= 400 // 8
        # Random input with oversampling: no bucket should be wildly off.
        assert r.extra["max_bucket"] <= 400

    def test_output_also_distributed(self):
        vals = gen_sort_input(60, seed=2)
        b = BSP(4, BSPParams(g=2, L=4))
        sample_sort_bsp(b, vals)
        assert sorted(vals) == [v for i in range(4) for v in b.store[i]["sort_out"]]


class TestSortShared:
    @pytest.mark.parametrize("n", [1, 2, 10, 100, 257])
    def test_correct(self, n):
        vals = gen_sort_input(n, universe=40, seed=n)
        r = sort_shared(QSM(QSMParams(g=2)), vals)
        assert verify_sorted(vals, r.value)

    def test_empty(self):
        assert sort_shared(QSM(), []).value == []

    def test_explicit_p(self):
        vals = gen_sort_input(64, seed=3)
        r = sort_shared(SQSM(SQSMParams(g=2)), vals, p=4)
        assert verify_sorted(vals, r.value)
        assert r.extra["p"] == 4

    def test_p_validated(self):
        with pytest.raises(ValueError):
            sort_shared(QSM(), [1], p=0)

    def test_gsm(self):
        vals = gen_sort_input(40, universe=10, seed=4)
        r = sort_shared(GSM(GSMParams(alpha=2, beta=2)), vals)
        assert verify_sorted(vals, r.value)

    def test_duplicates_heavy(self):
        vals = [1, 1, 1, 2, 2, 0] * 10
        r = sort_shared(QSM(QSMParams(g=2)), vals)
        assert verify_sorted(vals, r.value)
