"""The warm worker pool: reuse, recycling, crash isolation, watchdog."""

import os
import time

import pytest

from repro.sched.pool import DEFAULT_MAX_TASKS_PER_WORKER, PoolEvent, WorkerPool


# Task functions must be module-level so they pickle across the pipe.

def add(a, b):
    return {"sum": a + b}


def worker_pid():
    return {"pid": os.getpid()}


def boom(message="broken"):
    raise ValueError(message)


def hard_crash(code=3):
    os._exit(code)


def hang(seconds=60.0):
    time.sleep(seconds)
    return {"done": True}


def socket_fd_count():
    """Count socket fds open in the worker (its task pipe included)."""
    import stat

    count = 0
    for name in os.listdir("/proc/self/fd"):
        try:
            if stat.S_ISSOCK(os.fstat(int(name)).st_mode):
                count += 1
        except OSError:
            continue
    return {"sockets": count}


def drain(pool, expected, wait=0.5, budget=30.0):
    """Collect events until ``expected`` keys completed (or time out)."""
    events = {}
    deadline = time.monotonic() + budget
    while len(events) < expected:
        assert time.monotonic() < deadline, f"only {len(events)}/{expected} events"
        for event in pool.events(wait=wait):
            events[event.key] = event
    return events


class TestBasics:
    def test_submit_and_collect(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("a", add, {"a": 2, "b": 3})
            events = drain(pool, 1)
        assert events["a"].ok
        assert events["a"].payload == {"sum": 5}
        assert events["a"].wall_time >= 0.0

    def test_task_exception_is_an_error_event_not_a_crash(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("bad", boom, {"message": "nope"})
            pool.submit("good", add, {"a": 1, "b": 1})
            events = drain(pool, 2)
        assert events["bad"].status == "error"
        assert "ValueError: nope" in events["bad"].payload
        assert events["good"].ok
        assert pool.stats["crashes"] == 0

    def test_workers_spawn_lazily(self):
        pool = WorkerPool(jobs=4)
        try:
            assert pool.stats["workers_spawned"] == 0
            pool.submit("a", add, {"a": 0, "b": 0})
            assert pool.stats["workers_spawned"] == 1
        finally:
            pool.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            WorkerPool(jobs=0)
        with pytest.raises(ValueError, match="max_tasks_per_worker"):
            WorkerPool(jobs=1, max_tasks_per_worker=0)
        with WorkerPool(jobs=1) as pool:
            with pytest.raises(ValueError, match="timeout"):
                pool.submit("a", add, {"a": 1, "b": 1}, timeout=0)

    def test_default_recycle_budget_is_high(self):
        # The warm pool only pays off if workers live long enough to
        # amortise their import; guard against the constant regressing.
        assert DEFAULT_MAX_TASKS_PER_WORKER >= 64


class TestWarmReuse:
    def test_one_worker_serves_many_tasks(self):
        with WorkerPool(jobs=1) as pool:
            for i in range(6):
                pool.submit(f"t{i}", worker_pid)
            events = drain(pool, 6)
        pids = {e.payload["pid"] for e in events.values()}
        assert len(pids) == 1  # the same warm process served everything
        assert pool.stats["workers_spawned"] == 1
        assert pool.stats["tasks_completed"] == 6

    def test_recycling_retires_worker_after_budget(self):
        with WorkerPool(jobs=1, max_tasks_per_worker=2) as pool:
            for i in range(4):
                pool.submit(f"t{i}", worker_pid)
            events = drain(pool, 4)
        pids = {e.payload["pid"] for e in events.values()}
        assert len(pids) == 2  # retired after 2 tasks, replacement finished
        assert pool.stats["recycled"] >= 1
        assert pool.stats["workers_spawned"] == 2


class TestFailureIsolation:
    def test_crash_fails_only_its_task(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("dead", hard_crash, {"code": 3})
            pool.submit("alive", add, {"a": 4, "b": 5})
            events = drain(pool, 2)
        assert events["dead"].status == "crash"
        assert "worker crashed (exit code 3)" in events["dead"].payload
        assert events["alive"].ok and events["alive"].payload == {"sum": 9}
        assert pool.stats["crashes"] == 1

    def test_timeout_kills_hung_worker(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("hung", hang, {"seconds": 60.0}, timeout=0.3)
            pool.submit("next", add, {"a": 1, "b": 2})
            t0 = time.monotonic()
            events = drain(pool, 2)
            elapsed = time.monotonic() - t0
        assert events["hung"].status == "timeout"
        assert "timed out after 0.3s" in events["hung"].payload
        assert events["next"].ok
        assert elapsed < 30.0  # the watchdog did not wait for the sleep
        assert pool.stats["timeouts"] == 1

    def test_unpicklable_result_degrades_to_error(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("gen", unpicklable_result)
            events = drain(pool, 1)
        assert events["gen"].status == "error"
        assert "not sendable" in events["gen"].payload

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs /proc (Linux)"
    )
    def test_forked_worker_drops_inherited_sockets(self):
        # A worker forked while the parent holds open sockets must not
        # keep copies: an inherited fd holds a connection half-alive
        # after the real owner closes it (the peer's writes keep
        # succeeding, so disconnects go undetected), and a killed
        # server's listen port stays bound by its own workers.  The one
        # socket a worker may hold is its own task pipe (a socketpair).
        import socket as socketlib

        parked = socketlib.socketpair()
        try:
            with WorkerPool(jobs=1) as pool:
                pool.submit("fds", socket_fd_count)
                events = drain(pool, 1)
        finally:
            for end in parked:
                end.close()
        assert events["fds"].ok
        assert events["fds"].payload == {"sockets": 1}


def unpicklable_result():
    return {"gen": (i for i in range(3))}  # generators never pickle


class TestLifecycle:
    def test_cancel_pending_drops_queue(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit("slow", hang, {"seconds": 5.0}, timeout=30.0)
            pool.submit("q1", add, {"a": 1, "b": 1})
            pool.submit("q2", add, {"a": 2, "b": 2})
            dropped = pool.cancel_pending()
            assert dropped == ["q1", "q2"]
            assert pool.queued_count == 0
            assert pool.active_count == 1

    def test_shutdown_is_idempotent_and_final(self):
        pool = WorkerPool(jobs=1)
        pool.submit("a", add, {"a": 1, "b": 1})
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit("b", add, {"a": 1, "b": 1})

    def test_shutdown_kills_in_flight_work(self):
        pool = WorkerPool(jobs=1)
        pool.submit("hung", hang, {"seconds": 60.0})
        time.sleep(0.2)  # let the worker pick the task up
        t0 = time.monotonic()
        pool.shutdown()
        assert time.monotonic() - t0 < 10.0

    def test_events_on_idle_pool_returns_nothing(self):
        with WorkerPool(jobs=1) as pool:
            assert pool.events(wait=0.01) == []
            assert pool.in_flight == 0


class TestPoolEvent:
    def test_ok_property(self):
        assert PoolEvent("k", "ok", {}, 1, 0.0).ok
        for status in ("error", "crash", "timeout"):
            assert not PoolEvent("k", status, "boom", 1, 0.0).ok
