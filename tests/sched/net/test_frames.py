"""Wire framing: round-trips, bounds, torn connections."""

import pickle
import socket
import struct
import threading

import pytest

from repro.sched.net.frames import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameError,
    decode_frame,
    encode_frame,
    frame_type,
    recv_frame,
    recv_frame_bytes,
    send_frame,
)


def pair():
    return socket.socketpair()


def test_round_trip_every_frame_type():
    frames = [
        ("hello", "w1", {"pid": 1, "host": "h"}),
        ("welcome", 7, 2),
        ("evict", "superseded"),
        ("task", "job/point", len, {"obj": [1, 2, 3]}),
        ("ok", "job/point", {"value": 42}, 0.5),
        ("error", "job/point", "ValueError: nope", 0.1),
        ("ping", 3, 123.456),
        ("pong", 3, 123.456),
        ("stop",),
    ]
    a, b = pair()
    try:
        for frame in frames:
            send_frame(a, frame)
            assert recv_frame(b) == frame
    finally:
        a.close()
        b.close()


def test_encode_decode_inverse():
    frame = ("ok", "k", {"n": 5}, 0.25)
    assert decode_frame(encode_frame(frame)[4:]) == frame


def test_frame_type_validates_shape():
    assert frame_type(("ping", 1, 0.0)) == "ping"
    with pytest.raises(FrameError):
        frame_type(["ping", 1, 0.0])  # not a tuple
    with pytest.raises(FrameError):
        frame_type(())
    with pytest.raises(FrameError):
        frame_type((42, "x"))
    with pytest.raises(FrameError):
        frame_type(("warp", 1))  # unknown tag


def test_oversized_frame_rejected_on_send():
    with pytest.raises(FrameError):
        encode_frame(("task", "k", None, {"blob": b"x" * (MAX_FRAME_BYTES + 1)}))


def test_bad_length_prefix_rejected():
    a, b = pair()
    try:
        a.sendall(struct.pack(">I", 0))
        with pytest.raises(FrameError):
            recv_frame_bytes(b)
    finally:
        a.close()
        b.close()
    a, b = pair()
    try:
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError):
            recv_frame_bytes(b)
    finally:
        a.close()
        b.close()


def test_unpicklable_payload_is_frame_error():
    a, b = pair()
    try:
        payload = b"\x00not a pickle"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_clean_close_raises_connection_closed_at_boundary():
    a, b = pair()
    a.close()
    try:
        with pytest.raises(ConnectionClosed) as exc:
            recv_frame(b)
        assert "mid-frame" not in str(exc.value)
    finally:
        b.close()


def test_torn_mid_frame_distinguished():
    a, b = pair()
    try:
        wire = encode_frame(("ok", "k", {"v": 1}, 0.0))
        a.sendall(wire[: len(wire) // 2])
        a.close()
        with pytest.raises(ConnectionClosed) as exc:
            recv_frame(b)
        assert "mid-frame" in str(exc.value)
    finally:
        b.close()


def test_recv_frame_bytes_preserves_payload_for_forwarding():
    # The chaos proxy forwards raw payload bytes; they must re-decode.
    a, b = pair()
    try:
        frame = ("task", "k", max, {"a": 1})
        send_frame(a, frame)
        raw = recv_frame_bytes(b)
        assert decode_frame(raw) == frame
        assert pickle.loads(raw) == frame
    finally:
        a.close()
        b.close()


def test_interleaved_frames_from_threads_stay_whole():
    # sendall is atomic per call under the GIL for blocking sockets; a
    # reader must see whole frames regardless of writer interleaving.
    a, b = pair()
    frames = [("ping", i, float(i)) for i in range(50)]
    try:
        def write(chunk):
            for frame in chunk:
                send_frame(a, frame)
        threads = [
            threading.Thread(target=write, args=(frames[:25],)),
            threading.Thread(target=write, args=(frames[25:],)),
        ]
        for t in threads:
            t.start()
        seen = [recv_frame(b) for _ in range(50)]
        for t in threads:
            t.join()
        assert sorted(seen) == sorted(frames)
    finally:
        a.close()
        b.close()
