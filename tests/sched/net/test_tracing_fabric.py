"""Trace-context propagation across the TCP fabric.

The distributed half of the tracing contract: a ``trace`` dict handed
to ``RemoteWorkerPool.submit`` must ride the task frame to a real
worker subprocess, come home as an ``exec`` span on the result frame,
and — because the context lives on the queued ``_NetTask`` — survive a
requeue so the redelivered execution still belongs to the same trace.
"""

import time

import pytest

from repro.obs import tracing
from repro.sched.campaigns import demo_task
from repro.sched.net import RemoteWorkerPool, spawn_local_workers


def make_pool(**kwargs):
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("heartbeat_timeout", 0.6)
    return RemoteWorkerPool(jobs=kwargs.pop("jobs", 2), **kwargs)


def wait_for_workers(pool, count, timeout=5.0):
    deadline = time.monotonic() + timeout
    while len(pool.registry.live()) < count:
        pool.events(wait=0.05)
        if time.monotonic() > deadline:
            raise AssertionError(
                f"only {len(pool.registry.live())}/{count} workers registered"
            )


def drain(pool, want, timeout=20.0):
    done = {}
    deadline = time.monotonic() + timeout
    while len(done) < want:
        for event in pool.events(wait=0.2):
            done[event.key] = event
        if time.monotonic() > deadline:
            raise AssertionError(f"only {sorted(done)} resolved in {timeout}s")
    return done


def reap(procs, timeout=5.0):
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except Exception:
            proc.kill()
            proc.wait()


@pytest.fixture
def traced(monkeypatch):
    """Tracing on in this process AND in spawned worker subprocesses."""
    monkeypatch.setenv(tracing.TRACE_ENV, "1")
    monkeypatch.delenv(tracing.TRACE_PATH_ENV, raising=False)
    tracing.TRACER.reset()
    tracing.TRACER.configure(enabled=True)
    yield tracing.TRACER
    tracing.TRACER.configure(enabled=False)
    tracing.TRACER.reset()


def exec_spans(tracer, trace_id):
    return [
        s for s in tracer.finished
        if s.kind == "exec" and s.trace_id == trace_id
    ]


class TestFabricPropagation:
    def test_exec_span_comes_home_with_submitted_context(self, traced):
        root = traced.start_span("job:test", kind="job")
        task = traced.start_span("t0", kind="task", parent=root)
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 1, name_prefix="tr")
            try:
                wait_for_workers(pool, 1)
                pool.submit(
                    "t0", demo_task, {"n": 16, "delay": 0.05},
                    trace=task.context.to_dict(),
                )
                done = drain(pool, 1)
                assert done["t0"].status == "ok"
            finally:
                pool.shutdown()
                reap(procs)
        spans = exec_spans(traced, root.trace_id)
        assert len(spans) == 1, "worker exec span never shipped home"
        assert spans[0].parent_span_id == task.span_id
        assert spans[0].attrs.get("transport") == "tcp"
        # The span was recorded by another process on another "host".
        assert spans[0].host != traced.host

    def test_trace_id_survives_requeue_after_worker_loss(self, traced):
        """Kill the worker mid-task: the redelivered execution must still
        carry the original trace context (it lives on the queued task)."""
        root = traced.start_span("job:requeue", kind="job")
        contexts = {}
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 2, name_prefix="trkill")
            try:
                wait_for_workers(pool, 2)
                for i in range(4):
                    key = f"t{i}"
                    span = traced.start_span(key, kind="task", parent=root)
                    contexts[key] = span
                    pool.submit(
                        key, demo_task, {"n": 16, "delay": 0.4},
                        trace=span.context.to_dict(),
                    )
                pool.events(wait=0.2)  # both workers now mid-task
                procs[0].kill()
                done = drain(pool, 4)
                assert all(e.status == "ok" for e in done.values())
                assert pool.stats["requeues"] >= 1
            finally:
                pool.shutdown()
                reap(procs)
        spans = exec_spans(traced, root.trace_id)
        # Every task's surviving execution reported exactly the context
        # submitted for it — one trace_id across kill, requeue, redelivery.
        by_key = {s.attrs.get("key"): s for s in spans}
        assert sorted(by_key) == ["t0", "t1", "t2", "t3"]
        for key, span in by_key.items():
            assert span.trace_id == root.trace_id
            assert span.parent_span_id == contexts[key].span_id, key
        assert len({s.trace_id for s in spans}) == 1