"""Registry semantics: generations, split-brain eviction, heartbeat state."""

import time

import pytest

from repro.sched.net.registry import WORKER_STATES, WorkerRegistry


class FakeConn:
    def close(self):
        pass


ADDR = ("127.0.0.1", 4242)


def test_register_assigns_ids_and_generation():
    reg = WorkerRegistry()
    w1, evicted = reg.register("alpha", FakeConn(), ADDR, {"pid": 11})
    assert evicted is None
    assert w1.state == "live"
    assert w1.generation == 1
    w2, evicted = reg.register("beta", FakeConn(), ADDR)
    assert evicted is None
    assert w2.id != w1.id
    assert {w.name for w in reg.live()} == {"alpha", "beta"}


def test_split_brain_latest_registration_wins():
    reg = WorkerRegistry()
    old, _ = reg.register("alpha", FakeConn(), ADDR)
    new, evicted = reg.register("alpha", FakeConn(), ADDR)
    assert evicted is old
    assert old.state == "evicted"
    assert new.state == "live"
    assert new.generation == 2
    assert reg.by_name("alpha") is new
    assert [w.name for w in reg.live()] == ["alpha"]


def test_reconnect_after_loss_bumps_generation():
    reg = WorkerRegistry()
    w1, _ = reg.register("alpha", FakeConn(), ADDR)
    reg.drop(w1, "lost")
    assert reg.by_name("alpha") is None
    w2, evicted = reg.register("alpha", FakeConn(), ADDR)
    assert evicted is None  # the old registration was already out
    assert w2.generation == 2


def test_drop_validates_state():
    reg = WorkerRegistry()
    w, _ = reg.register("alpha", FakeConn(), ADDR)
    with pytest.raises(ValueError):
        reg.drop(w, "live")
    with pytest.raises(ValueError):
        reg.drop(w, "vanished")
    reg.drop(w, "stopped")
    assert w.state == "stopped"
    assert w.state in WORKER_STATES


def test_pong_bookkeeping_and_expiry():
    reg = WorkerRegistry()
    w, _ = reg.register("alpha", FakeConn(), ADDR)
    now = time.monotonic()
    w.ping_seq = 1
    w.ping_sent = (1, now - 0.01)
    reg.record_pong(w, 1, now - 0.01)
    assert w.ping_sent is None
    assert w.last_latency is not None and w.last_latency >= 0.0
    assert reg.expired(timeout=10.0) == []
    assert reg.expired(timeout=0.0, now=w.last_pong + 1.0) == [w]


def test_stale_pong_seq_still_proves_liveness():
    reg = WorkerRegistry()
    w, _ = reg.register("alpha", FakeConn(), ADDR)
    w.ping_sent = (5, time.monotonic())
    reg.record_pong(w, 3, time.monotonic())  # an old echo
    assert w.ping_sent == (5, w.ping_sent[1])  # outstanding ping unresolved
    assert reg.expired(timeout=1.0) == []  # but the pong reset the deadline


def test_rows_keep_terminal_history():
    reg = WorkerRegistry()
    w1, _ = reg.register("alpha", FakeConn(), ADDR, {"pid": 1, "host": "h"})
    reg.drop(w1, "lost")
    w2, _ = reg.register("alpha", FakeConn(), ADDR, {"pid": 2, "host": "h"})
    rows = reg.rows()
    assert [r["state"] for r in rows] == ["lost", "live"]
    assert [r["generation"] for r in rows] == [1, 2]
    assert all(r["transport"] == "tcp" for r in rows)
    assert rows[1]["pid"] == 2


def test_row_shows_current_task_key():
    reg = WorkerRegistry()
    w, _ = reg.register("alpha", FakeConn(), ADDR)

    class Task:
        key = "job/p3"

    w.current = Task()
    assert w.busy
    assert w.to_row()["current"] == "job/p3"
