"""RemoteWorkerPool: the warm-pool contract over real TCP connections.

Workers here are real subprocesses (``spawn_local_workers``) or raw
sockets driven by the test (for protocol-level cases like split-brain
and heartbeat silence).  Timings use short heartbeats so failure paths
resolve in tenths of seconds.
"""

import socket
import time

import pytest

from repro.sched.campaigns import demo_campaign, demo_task
from repro.sched.campaign import run_campaign
from repro.sched.net import RemoteWorkerPool, spawn_local_workers
from repro.sched.net.frames import recv_frame, send_frame
from repro.sched.store import ResultStore


# Module-level so they pickle across the socket.

def add(a, b):
    return {"sum": a + b}


def boom(message="broken"):
    raise ValueError(message)


def snooze(seconds=30.0):
    time.sleep(seconds)
    return {"slept": seconds}


def make_pool(**kwargs):
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("heartbeat_timeout", 0.6)
    return RemoteWorkerPool(jobs=kwargs.pop("jobs", 2), **kwargs)


def wait_for_workers(pool, count, timeout=5.0):
    deadline = time.monotonic() + timeout
    while len(pool.registry.live()) < count:
        pool.events(wait=0.05)
        if time.monotonic() > deadline:
            raise AssertionError(
                f"only {len(pool.registry.live())}/{count} workers registered"
            )


def drain(pool, want, timeout=10.0):
    """Collect events until ``want`` keys resolved; returns {key: event}."""
    done = {}
    deadline = time.monotonic() + timeout
    while len(done) < want:
        for event in pool.events(wait=0.2):
            done[event.key] = event
        if time.monotonic() > deadline:
            raise AssertionError(f"only {sorted(done)} resolved in {timeout}s")
    return done


def reap(procs, timeout=5.0):
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except Exception:
            proc.kill()
            proc.wait()


class TestRoundTrip:
    def test_tasks_complete_across_real_workers(self):
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 2, name_prefix="rt")
            try:
                wait_for_workers(pool, 2)
                for i in range(6):
                    pool.submit(f"t{i}", add, {"a": i, "b": 10})
                done = drain(pool, 6)
                assert all(e.status == "ok" for e in done.values())
                assert done["t3"].payload == {"sum": 13}
                assert pool.stats["tasks_completed"] == 6
                assert pool.in_flight == 0
            finally:
                pool.shutdown()
                reap(procs)
        assert [p.returncode for p in procs] == [0, 0]

    def test_error_task_reports_error_event(self):
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 1, name_prefix="err")
            try:
                wait_for_workers(pool, 1)
                pool.submit("bad", boom, {"message": "no"})
                event = drain(pool, 1)["bad"]
                assert event.status == "error"
                assert "ValueError: no" in event.payload
            finally:
                pool.shutdown()
                reap(procs)

    def test_cancel_pending_drops_only_queued(self):
        with make_pool() as pool:
            assert pool.needs_poll is True
            pool.submit("q1", add, {"a": 1, "b": 1})
            pool.submit("q2", add, {"a": 2, "b": 2})
            assert sorted(pool.cancel_pending()) == ["q1", "q2"]
            assert pool.in_flight == 0


class TestFailurePaths:
    def test_sigkilled_worker_requeues_task_to_survivor(self):
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 2, name_prefix="kill")
            try:
                wait_for_workers(pool, 2)
                for i in range(4):
                    pool.submit(f"t{i}", demo_task, {"n": 16, "delay": 0.4})
                pool.events(wait=0.2)  # both workers now mid-task
                procs[0].kill()
                done = drain(pool, 4, timeout=20.0)
                assert all(e.status == "ok" for e in done.values())
                assert pool.stats["workers_lost"] == 1
                assert pool.stats["requeues"] >= 1
                states = {r["name"]: r["state"] for r in pool.fleet()}
                assert states["kill-0"] == "lost"
                assert states["kill-1"] == "live"
            finally:
                pool.shutdown()
                reap(procs)

    def test_delivery_budget_exhaustion_surfaces_crash(self):
        with make_pool(max_deliveries=1) as pool:
            procs = spawn_local_workers(pool.address, 1, name_prefix="bud")
            try:
                wait_for_workers(pool, 1)
                pool.submit("doomed", snooze, {"seconds": 30.0})
                pool.events(wait=0.2)  # dispatched: delivery 1 of 1
                procs[0].kill()
                event = drain(pool, 1, timeout=10.0)["doomed"]
                assert event.status == "crash"
                assert "deliveries exhausted" in event.payload
                assert pool.stats["crashes"] == 1
                assert pool.stats["requeues"] == 0
            finally:
                pool.shutdown()
                reap(procs)

    def test_task_timeout_is_not_requeued(self):
        with make_pool() as pool:
            procs = spawn_local_workers(pool.address, 1, name_prefix="slow")
            try:
                wait_for_workers(pool, 1)
                pool.submit("hung", snooze, {"seconds": 30.0}, timeout=0.3)
                event = drain(pool, 1, timeout=10.0)["hung"]
                assert event.status == "timeout"
                assert pool.stats["timeouts"] == 1
                assert pool.stats["requeues"] == 0
                assert pool.queued_count == 0  # a hung task is not retried
            finally:
                pool.shutdown()
                reap(procs)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RemoteWorkerPool(jobs=0)
        with pytest.raises(ValueError):
            RemoteWorkerPool(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError):
            RemoteWorkerPool(max_deliveries=0)
        with make_pool() as pool:
            with pytest.raises(ValueError):
                pool.submit("k", add, {"a": 1, "b": 2}, timeout=-1)
        with pytest.raises(RuntimeError):
            pool.submit("k", add, {"a": 1, "b": 2})  # after shutdown


class TestProtocolLevel:
    """Cases driven by a raw socket standing in for a worker."""

    @staticmethod
    def recv_skipping_pings(sock):
        while True:
            frame = recv_frame(sock)
            if frame[0] != "ping":
                return frame

    def register(self, pool, name):
        sock = socket.create_connection(pool.address, timeout=5.0)
        sock.settimeout(5.0)
        send_frame(sock, ("hello", name, {"pid": 0, "host": "test"}))
        pool.events(wait=0.1)
        welcome = recv_frame(sock)
        assert welcome[0] == "welcome"
        return sock

    def test_split_brain_second_hello_evicts_first(self):
        with make_pool() as pool:
            first = self.register(pool, "twin")
            second = self.register(pool, "twin")
            try:
                # The first connection is told it lost the name (pings
                # sent before the eviction may precede the evict frame).
                assert self.recv_skipping_pings(first)[0] == "evict"
                assert pool.registry.by_name("twin").generation == 2
                assert pool.stats["workers_reconnected"] == 1
                # The winner still serves: a ping arrives eventually.
                deadline = time.monotonic() + 3.0
                while time.monotonic() < deadline:
                    pool.events(wait=0.1)
                    second.setblocking(False)
                    try:
                        frame = recv_frame(second)
                        assert frame[0] == "ping"
                        break
                    except Exception:
                        second.setblocking(True)
                        continue
                else:
                    raise AssertionError("winner never pinged")
            finally:
                first.close()
                second.close()

    def test_evicted_workers_inflight_task_requeues(self):
        with make_pool(max_deliveries=1) as pool:
            first = self.register(pool, "twin")
            pool.submit("p", add, {"a": 1, "b": 2})
            pool.events(wait=0.1)  # dispatch to `first`; it never replies
            assert self.recv_skipping_pings(first)[0] == "task"
            # Second hello sent raw: the pool processes it inside the
            # drain below, so the salvage event is not swallowed here.
            second = socket.create_connection(pool.address, timeout=5.0)
            send_frame(second, ("hello", "twin", {}))
            try:
                # max_deliveries=1: the requeue path surfaces as a crash,
                # proving the eviction salvaged the in-flight task.
                done = drain(pool, 1, timeout=5.0)
                assert done["p"].status == "crash"
            finally:
                first.close()
                second.close()

    def test_silent_worker_declared_lost_after_heartbeat_timeout(self):
        with make_pool() as pool:
            sock = self.register(pool, "mute")
            try:
                deadline = time.monotonic() + 5.0
                while pool.registry.live() and time.monotonic() < deadline:
                    pool.events(wait=0.1)
                assert pool.registry.live() == []
                assert pool.stats["workers_lost"] == 1
                assert pool.fleet()[0]["state"] == "lost"
            finally:
                sock.close()

    def test_stale_result_after_timeout_is_dropped(self):
        with make_pool() as pool:
            sock = self.register(pool, "late")
            pool.submit("slow", add, {"a": 1, "b": 2}, timeout=0.2)
            pool.events(wait=0.1)
            assert self.recv_skipping_pings(sock)[0] == "task"
            event = drain(pool, 1, timeout=5.0)["slow"]
            assert event.status == "timeout"
            # The written-off worker answers anyway; nothing surfaces.
            try:
                send_frame(sock, ("ok", "slow", {"sum": 3}, 1.0))
            except OSError:
                pass  # pool already closed the connection — equally fine
            assert pool.events(wait=0.3) == []
            sock.close()


class TestCampaignIntegration:
    def test_run_campaign_is_pool_agnostic(self, tmp_path):
        campaign = demo_campaign(points=6, delay=0.02)
        store = ResultStore(tmp_path / "store")
        with make_pool(jobs=3) as pool:
            procs = spawn_local_workers(pool.address, 3, name_prefix="camp")
            try:
                wait_for_workers(pool, 3)
                report = run_campaign(campaign, store, pool=pool)
                assert report.ok
                assert set(report.counts) == {"done"}
            finally:
                pool.shutdown()
                reap(procs)
