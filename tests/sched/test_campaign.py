"""The campaign DAG runner: deps, priorities, failure, resume, cancel."""

import json
import os

import pytest

from repro.sched.campaign import (
    Campaign,
    CampaignError,
    TaskSpec,
    campaign_status,
    run_campaign,
)
from repro.sched.store import ResultStore


# Module-level task functions (pool tasks must pickle).

def emit(value, marker_dir=None, name=""):
    """Return a small outcome; optionally touch a marker file per execution."""
    if marker_dir is not None:
        count_file = os.path.join(marker_dir, f"{name}.count")
        count = int(open(count_file).read()) if os.path.exists(count_file) else 0
        with open(count_file, "w") as fh:
            fh.write(str(count + 1))
    return {"value": value, "correct": True}


def boom():
    raise ValueError("task exploded")


def flaky(marker_dir, name="flaky"):
    """Fail on the first attempt, succeed afterwards (cross-process state)."""
    count_file = os.path.join(marker_dir, f"{name}.count")
    count = int(open(count_file).read()) if os.path.exists(count_file) else 0
    with open(count_file, "w") as fh:
        fh.write(str(count + 1))
    if count == 0:
        raise RuntimeError("first attempt fails")
    return {"value": count, "correct": True}


def total(results):
    return {"total": sum(r["value"] for r in results.values()), "correct": True}


def run_count(marker_dir, name):
    count_file = os.path.join(marker_dir, f"{name}.count")
    return int(open(count_file).read()) if os.path.exists(count_file) else 0


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            Campaign("c", [TaskSpec("a", emit, {"value": 1}),
                           TaskSpec("a", emit, {"value": 2})])

    def test_unknown_dep_rejected(self):
        with pytest.raises(CampaignError, match="unknown task"):
            Campaign("c", [TaskSpec("a", emit, {"value": 1}, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(CampaignError, match="cycle"):
            Campaign("c", [
                TaskSpec("a", emit, {"value": 1}, deps=("b",)),
                TaskSpec("b", emit, {"value": 2}, deps=("a",)),
            ])

    def test_task_lookup(self):
        camp = Campaign("c", [TaskSpec("a", emit, {"value": 1})])
        assert camp.task("a").kwargs == {"value": 1}
        with pytest.raises(KeyError):
            camp.task("ghost")


class TestExecution:
    def test_deps_gate_and_inline_sees_results(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 2}),
            TaskSpec("b", emit, {"value": 3}),
            TaskSpec("sum", total, deps=("a", "b"), inline=True),
        ])
        store = ResultStore(str(tmp_path))
        report = run_campaign(camp, store, jobs=1)
        assert report.ok
        assert report.counts == {"done": 3}
        spans = {s.name: s for s in report.spans}
        assert spans["sum"].start >= max(spans["a"].end, spans["b"].end) - 1e-6

    def test_priorities_order_the_frontier(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("low", emit, {"value": 1}, priority=0),
            TaskSpec("high", emit, {"value": 2}, priority=10),
        ])
        store = ResultStore(str(tmp_path))
        lines = []
        report = run_campaign(camp, store, jobs=1, progress=lines.append)
        assert report.ok
        # Lines look like "[1/2] done high (0.01s, worker 1)".
        done_order = [l.split()[2] for l in lines if l.split()[1] == "done"]
        assert done_order.index("high") < done_order.index("low")

    def test_failure_skips_transitive_dependents(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("ok", emit, {"value": 1}),
            TaskSpec("bad", boom),
            TaskSpec("child", emit, {"value": 2}, deps=("bad",)),
            TaskSpec("grandchild", total, deps=("child",), inline=True),
        ])
        store = ResultStore(str(tmp_path))
        report = run_campaign(camp, store, jobs=1)
        assert not report.ok
        spans = {s.name: s for s in report.spans}
        assert spans["ok"].status == "done"
        assert spans["bad"].status == "failed"
        assert "ValueError: task exploded" in spans["bad"].error
        assert spans["child"].status == "skipped"
        assert "blocked by bad" in spans["child"].error
        assert spans["grandchild"].status == "skipped"
        rendered = report.render()
        assert "failed: bad" in rendered
        assert "skipped: grandchild" in rendered

    def test_retries_recover_a_flaky_task(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("flaky", flaky, {"marker_dir": str(tmp_path)}, retries=2),
        ])
        store = ResultStore(str(tmp_path / "store"))
        report = run_campaign(camp, store, jobs=1)
        assert report.ok
        span = report.spans[0]
        assert span.attempts == 2
        assert run_count(str(tmp_path), "flaky") == 2

    def test_retries_exhausted_fails(self, tmp_path):
        camp = Campaign("c", [TaskSpec("bad", boom, retries=1)])
        store = ResultStore(str(tmp_path))
        report = run_campaign(camp, store, jobs=1)
        assert report.spans[0].status == "failed"
        assert report.spans[0].attempts == 2

    def test_inline_failure_marks_failed(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("bad", lambda results: 1 / 0, inline=True),
        ])
        store = ResultStore(str(tmp_path))
        report = run_campaign(camp, store, jobs=1)
        assert report.spans[0].status == "failed"
        assert "ZeroDivisionError" in report.spans[0].error


class TestResume:
    def test_second_run_serves_from_store_without_executing(self, tmp_path):
        marker = str(tmp_path / "markers")
        os.makedirs(marker)
        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 1, "marker_dir": marker, "name": "a"}),
            TaskSpec("b", emit, {"value": 2, "marker_dir": marker, "name": "b"}),
            TaskSpec("sum", total, deps=("a", "b"), inline=True),
        ])
        store = ResultStore(str(tmp_path / "store"))
        first = run_campaign(camp, store, jobs=1)
        assert first.ok and first.counts == {"done": 3}
        second = run_campaign(camp, store, jobs=1)
        assert second.ok
        # Point tasks cached; the inline aggregation is recomputed.
        assert second.counts == {"cached": 2, "done": 1}
        assert run_count(marker, "a") == 1  # never re-executed
        assert run_count(marker, "b") == 1

    def test_partial_store_runs_only_missing_tasks(self, tmp_path):
        marker = str(tmp_path / "markers")
        os.makedirs(marker)
        tasks = [
            TaskSpec(n, emit, {"value": i, "marker_dir": marker, "name": n})
            for i, n in enumerate(("a", "b", "c"))
        ]
        camp = Campaign("c", tasks)
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(camp, store, jobs=1)
        # Simulate a killed campaign: drop one outcome from the store.
        dropped = store.key_for(emit, tasks[1].kwargs)
        os.unlink(store.path_for(dropped))
        report = run_campaign(camp, store, jobs=1)
        assert report.ok
        assert report.counts == {"cached": 2, "done": 1}
        assert run_count(marker, "a") == 1
        assert run_count(marker, "b") == 2  # only the dropped task re-ran
        assert run_count(marker, "c") == 1

    def test_campaign_status_tracks_the_store(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 1}),
            TaskSpec("sum", total, deps=("a",), inline=True),
        ])
        store = ResultStore(str(tmp_path))
        assert campaign_status(camp, store) == [("a", "pending"), ("sum", "inline")]
        run_campaign(camp, store, jobs=1)
        assert campaign_status(camp, store) == [("a", "done"), ("sum", "inline")]


class TestCancel:
    def test_keyboard_interrupt_cancels_cleanly(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 1}),
            TaskSpec("b", emit, {"value": 2}, deps=("a",)),
            TaskSpec("c", emit, {"value": 3}, deps=("b",)),
        ])
        store = ResultStore(str(tmp_path))

        calls = []

        def interrupt_after_first(line):
            calls.append(line)
            if " done " in f" {line} ":
                raise KeyboardInterrupt

        report = run_campaign(camp, store, jobs=1, progress=interrupt_after_first)
        assert report.cancelled
        assert not report.ok
        statuses = {s.name: s.status for s in report.spans}
        assert statuses["a"] == "done"
        assert "pending" in (statuses["b"], statuses["c"])
        # What completed before the interrupt is resumable from the store.
        resumed = run_campaign(camp, store, jobs=1)
        assert resumed.ok
        assert resumed.counts["cached"] >= 1

    def test_exception_exit_still_writes_final_snapshot(self, tmp_path):
        """Regression: a callback raising out of the event loop used to
        skip ``SnapshotWriter.close()``, losing the final snapshot and
        leaving the metrics registry enabled for the next caller."""
        from repro.obs.metrics import REGISTRY
        from repro.obs.snapshot import read_snapshots

        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 1}),
            TaskSpec("b", emit, {"value": 2}, deps=("a",)),
        ])
        store = ResultStore(str(tmp_path / "store"))
        metrics = tmp_path / "metrics.jsonl"

        def explode(line):
            raise RuntimeError("observer crashed")

        was_enabled = REGISTRY.enabled
        with pytest.raises(RuntimeError, match="observer crashed"):
            run_campaign(
                camp, store, jobs=1, progress=explode,
                metrics_path=str(metrics), metrics_interval=60.0,
            )
        snapshots = read_snapshots(str(metrics))
        assert snapshots, "final snapshot lost on the exception exit path"
        assert snapshots[-1].final
        assert REGISTRY.enabled == was_enabled


class TestTraceExport:
    def test_trace_file_has_scheduler_lane_events(self, tmp_path):
        camp = Campaign("c", [
            TaskSpec("a", emit, {"value": 1}),
            TaskSpec("bad", boom),
            TaskSpec("sum", total, deps=("a",), inline=True),
        ])
        store = ResultStore(str(tmp_path))
        trace = tmp_path / "trace.json"
        run_campaign(camp, store, jobs=1, trace_path=str(trace))
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
        assert any(e["ph"] == "X" and e["name"] == "a" for e in events)
        assert any(e["ph"] == "i" and "bad" in e["name"] for e in events)
        from repro.obs.exporters import SCHEDULER_PID

        assert all(e["pid"] == SCHEDULER_PID for e in events)

    def test_traced_run_spans_share_one_trace_id(self, tmp_path):
        # Regression: the standalone run_campaign dispatch path used to
        # read execution.spans[name] (only populated at completion) for
        # the attempts attribute and crashed on every traced dispatch.
        from repro.obs import tracing

        sink = str(tmp_path / "spans.jsonl")
        tracing.TRACER.reset()
        tracing.TRACER.configure(enabled=True, path=sink)
        try:
            camp = Campaign("traced", [
                TaskSpec("a", emit, {"value": 1}),
                TaskSpec("flaky", flaky,
                         {"marker_dir": str(tmp_path)}, retries=1),
            ])
            store = ResultStore(str(tmp_path / "store"))
            report = run_campaign(camp, store, jobs=2)
        finally:
            tracing.TRACER.configure(enabled=False)
            tracing.TRACER.reset()
        assert report.ok
        assert report.trace_id
        spans = tracing.read_trace_file(sink)
        assert {s["trace_id"] for s in spans} == {report.trace_id}
        by_kind = {}
        for span in spans:
            by_kind.setdefault(span["kind"], []).append(span)
        [job] = by_kind["job"]
        tasks = {s["name"]: s for s in by_kind["task"]}
        assert set(tasks) == {"a", "flaky"}
        assert all(s["parent_span_id"] == job["span_id"] for s in tasks.values())
        # The retried task keeps ONE span across both deliveries.
        assert tasks["flaky"]["attrs"]["attempts"] == 2
        assert tasks["flaky"]["status"] == "ok"
        exec_parents = {s["parent_span_id"] for s in by_kind["exec"]}
        assert exec_parents <= {s["span_id"] for s in tasks.values()}

    def test_shared_pool_is_not_shut_down(self, tmp_path):
        from repro.sched.pool import WorkerPool

        camp = Campaign("c", [TaskSpec("a", emit, {"value": 1})])
        store = ResultStore(str(tmp_path))
        with WorkerPool(jobs=1) as pool:
            report = run_campaign(camp, store, pool=pool)
            assert report.ok
            # The pool survives the campaign and still accepts work.
            pool.submit("after", emit, {"value": 9})
            got = []
            while not got:
                got = pool.events(wait=0.5)
            assert got[0].ok
