"""The content-addressed result store: keys, atomicity, quarantine, GC."""

import functools
import json
import os

import pytest

from repro.sched.store import (
    ResultStore,
    canonical_spec,
    content_key,
    fn_ref,
    import_bench_cache,
    task_spec,
)


def point_fn(n, g=4.0):
    return {"measured": n * g, "correct": True}


class TestContentKeys:
    def test_key_is_order_invariant(self):
        a = content_key({"x": 1, "y": 2}, "v1")
        b = content_key({"y": 2, "x": 1}, "v1")
        assert a == b
        assert len(a) == 64  # sha-256 hex

    def test_version_salts_the_key(self):
        spec = {"x": 1}
        assert content_key(spec, "v1") != content_key(spec, "v2")

    def test_default_version_is_package_version(self, tmp_path):
        from repro import __version__

        store = ResultStore(str(tmp_path))
        assert store.version == __version__

    def test_fn_ref_names_module_and_qualname(self):
        assert fn_ref(point_fn) == f"{__name__}:point_fn"

    def test_fn_ref_distinguishes_partials(self):
        p1 = functools.partial(point_fn, g=2.0)
        p2 = functools.partial(point_fn, g=8.0)
        assert fn_ref(p1) != fn_ref(p2)
        assert fn_ref(p1).startswith(f"{__name__}:point_fn|partial:")

    def test_task_spec_accepts_scope_string(self):
        spec = task_spec("t1a_qsm_time", {"n": 4}, {"base_seed": 0})
        assert spec == {"fn": "t1a_qsm_time", "kwargs": {"n": 4}, "base_seed": 0}

    def test_canonical_spec_handles_unjsonable_values(self):
        # default=repr: exotic values degrade to a stable string instead of
        # raising mid-campaign.
        text = canonical_spec({"fn": point_fn})
        assert "point_fn" in text


class TestReadWrite:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = store.key_for(point_fn, {"n": 8})
        outcome = {"measured": 32.0, "correct": True}
        path = store.put(key, outcome, spec=task_spec(point_fn, {"n": 8}))
        assert os.path.exists(path)
        assert store.contains(key)
        entry = store.get(key)
        assert entry["outcome"] == outcome
        assert entry["spec"]["kwargs"] == {"n": 8}
        assert store.get_outcome(key) == outcome

    def test_missing_key_reads_as_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("0" * 64) is None
        assert not store.contains("0" * 64)

    def test_shard_fanout_layout(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = store.key_for(point_fn, {"n": 8})
        store.put(key, {"measured": 1.0})
        assert store.path_for(key).endswith(
            os.path.join("objects", key[:2], key + ".json")
        )

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for n in range(5):
            store.put(store.key_for(point_fn, {"n": n}), {"measured": float(n)})
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.startswith(".store-")
        ]
        assert leftovers == []

    def test_keys_enumerates_everything(self, tmp_path):
        store = ResultStore(str(tmp_path))
        written = {
            store.key_for(point_fn, {"n": n}) for n in range(4)
        }
        for key in written:
            store.put(key, {"measured": 0.0})
        assert set(store.keys()) == written


class TestQuarantine:
    def test_corrupt_entry_is_quarantined_and_rereadable_as_missing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = store.key_for(point_fn, {"n": 8})
        store.put(key, {"measured": 1.0})
        with open(store.path_for(key), "w") as fh:
            fh.write("{torn")
        with pytest.warns(RuntimeWarning, match="quarantine|unusable"):
            assert store.get(key) is None
        assert not store.contains(key)
        assert os.path.exists(store.path_for(key) + ".quarantined")
        assert store.stats().quarantined == 1

    def test_schema_violation_is_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = store.key_for(point_fn, {"n": 8})
        path = store.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"key": key, "outcome": {}}, fh)  # missing fields
        with pytest.warns(RuntimeWarning):
            assert store.get(key) is None


class TestPrune:
    def _fill(self, store, count=4):
        keys = []
        for n in range(count):
            key = store.key_for(point_fn, {"n": n})
            store.put(key, {"measured": float(n)})
            keys.append(key)
        return keys

    def test_full_prune_removes_everything(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = self._fill(store)
        pruned = store.prune()
        assert sorted(pruned) == sorted(keys)
        assert store.stats().entries == 0
        assert not os.listdir(os.path.join(str(tmp_path), "objects"))

    def test_age_cutoff_keeps_recent_entries(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = self._fill(store, count=2)
        old, recent = keys
        # Backdate one entry by rewriting its created stamp.
        path = store.path_for(old)
        entry = json.load(open(path))
        entry["created"] -= 10_000.0
        json.dump(entry, open(path, "w"))
        pruned = store.prune(older_than_s=3600.0)
        assert pruned == [old]
        assert store.contains(recent)

    def test_keep_set_survives_full_prune(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = self._fill(store)
        pruned = store.prune(keep=[keys[0]])
        assert keys[0] not in pruned
        assert store.contains(keys[0])
        assert store.stats().entries == 1

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = self._fill(store)
        pruned = store.prune(dry_run=True)
        assert sorted(pruned) == sorted(keys)
        assert store.stats().entries == len(keys)

    def test_prune_sweeps_quarantined_files(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = self._fill(store, count=1)[0]
        with open(store.path_for(key), "w") as fh:
            fh.write("garbage")
        with pytest.warns(RuntimeWarning):
            store.get(key)
        assert store.stats().quarantined == 1
        store.prune()
        assert store.stats().quarantined == 0


class TestBenchCacheMigration:
    def test_import_rekeys_like_live_runs(self, tmp_path):
        # A legacy BENCH_*.json maps json-encoded params to outcomes.
        legacy = {
            json.dumps({"n": 4}, sort_keys=True): {"measured": 16.0, "correct": True},
            json.dumps({"n": 8}, sort_keys=True): {"measured": 32.0, "correct": True},
            "not-json-params": {"measured": 0.0},
        }
        cache = tmp_path / "BENCH_demo.json"
        cache.write_text(json.dumps(legacy))
        store = ResultStore(str(tmp_path / "store"))
        imported = import_bench_cache(store, str(cache), point_fn)
        assert imported == 2
        # Live keying (what parallel_sweep(store=...) computes) hits the
        # imported entries directly.
        assert store.get_outcome(store.key_for(point_fn, {"n": 4})) == {
            "measured": 16.0, "correct": True,
        }

    def test_import_missing_cache_is_a_noop(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert import_bench_cache(store, str(tmp_path / "nope.json"), point_fn) == 0

    def test_import_rejects_non_object_cache(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[1, 2, 3]")
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ValueError, match="not a sweep cache"):
            import_bench_cache(store, str(bad), point_fn)


class TestConcurrentWriters:
    """put() under contention: same-key racers and the prune-rmdir race."""

    def test_same_key_concurrent_puts_neither_raises(self, tmp_path):
        import threading

        store = ResultStore(str(tmp_path / "store"))
        key = store.key_for(point_fn, {"n": 4})
        errors = []

        def write(tag):
            try:
                for _ in range(50):
                    store.put(key, {"measured": 16.0, "correct": True, "by": tag})
            except BaseException as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Whoever won, the entry is whole and valid (no quarantine).
        outcome = store.get_outcome(key)
        assert outcome is not None and outcome["measured"] == 16.0
        assert not os.path.exists(store.path_for(key) + ".quarantined")

    def test_put_survives_prune_rmdir_between_makedirs_and_mkstemp(
        self, tmp_path, monkeypatch
    ):
        import tempfile as _tempfile

        store = ResultStore(str(tmp_path / "store"))
        real_mkstemp = _tempfile.mkstemp
        raced = {"done": False}

        def racing_mkstemp(*args, **kwargs):
            if not raced["done"]:
                raced["done"] = True
                # A concurrent prune() rmdirs the (empty) shard just now.
                os.rmdir(kwargs["dir"])
                return real_mkstemp(*args, **kwargs)  # raises FileNotFoundError
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr("repro.sched.store.tempfile.mkstemp", racing_mkstemp)
        key = store.key_for(point_fn, {"n": 8})
        path = store.put(key, {"measured": 32.0, "correct": True})
        assert raced["done"]
        assert os.path.exists(path)
        assert store.get_outcome(key)["measured"] == 32.0

    def test_put_survives_prune_rmdir_before_replace(self, tmp_path, monkeypatch):
        import shutil

        store = ResultStore(str(tmp_path / "store"))
        real_replace = os.replace
        raced = {"count": 0}

        def racing_replace(src, dst):
            if raced["count"] == 0 and ".store-" in src:
                raced["count"] += 1
                shutil.rmtree(os.path.dirname(dst))  # prune wins the race
            return real_replace(src, dst)

        monkeypatch.setattr("repro.sched.store.os.replace", racing_replace)
        key = store.key_for(point_fn, {"n": 16})
        store.put(key, {"measured": 64.0, "correct": True})
        assert raced["count"] == 1
        assert store.get_outcome(key)["measured"] == 64.0

    def test_concurrent_put_and_prune_stress(self, tmp_path):
        import threading

        store = ResultStore(str(tmp_path / "store"))
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(200):
                    key = store.key_for(point_fn, {"n": i})
                    store.put(key, {"measured": float(i), "correct": True})
            except BaseException as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)
            finally:
                stop.set()

        def pruner():
            while not stop.is_set():
                try:
                    store.prune(older_than_s=0)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=pruner)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestCrashDuringWrite:
    def test_crash_mid_write_leaves_no_partial_object(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path / "store"))
        key = store.key_for(point_fn, {"n": 4})

        def exploding_dump(*args, **kwargs):
            raise KeyboardInterrupt  # the harshest interruption json can see

        monkeypatch.setattr("repro.sched.store.json.dump", exploding_dump)
        with pytest.raises(KeyboardInterrupt):
            store.put(key, {"measured": 16.0, "correct": True})
        monkeypatch.undo()
        # No entry, no quarantine, no leaked temp file anywhere.
        assert store.get(key) is None
        leftovers = [
            name
            for root, _, names in os.walk(str(tmp_path / "store"))
            for name in names
        ]
        assert leftovers == []
        # The next attempt (the retry a crashed task gets) lands cleanly.
        store.put(key, {"measured": 16.0, "correct": True})
        assert store.get_outcome(key)["measured"] == 16.0
