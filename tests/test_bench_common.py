"""The bench harness plumbing (benchmarks/common.py)."""

import pytest

from benchmarks.common import CellRow, print_rows, summarise_cell


def rows(measured, bounds, correct=True):
    return [
        CellRow("P", "det", 2**k, "g=2", m, b, correct)
        for k, (m, b) in enumerate(zip(measured, bounds))
    ]


class TestCellRow:
    def test_ratio(self):
        r = CellRow("P", "det", 16, "g=2", 10.0, 4.0, True)
        assert r.ratio == 2.5

    def test_zero_bound_gives_inf(self):
        r = CellRow("P", "det", 16, "g=2", 10.0, 0.0, True)
        assert r.ratio == float("inf")


class TestSummariseCell:
    def test_wrong_answer_dominates_everything(self):
        assert summarise_cell(rows([10], [1], correct=False), tight=False) == "WRONG-ANSWER"

    def test_violation_detected(self):
        verdict = summarise_cell(rows([0.01, 0.01], [1.0, 1.0]), tight=False)
        assert verdict.startswith("VIOLATION")

    def test_tight_label(self):
        verdict = summarise_cell(rows([3, 6, 12], [1, 2, 4]), tight=True)
        assert verdict == "tight"

    def test_dominates_label_with_band(self):
        verdict = summarise_cell(rows([3, 6, 12], [1, 2, 4]), tight=False)
        assert verdict.startswith("dominates")

    def test_gap_label_when_ratio_grows(self):
        verdict = summarise_cell(rows([2, 20, 200], [1, 1, 1]), tight=False, band=4.0)
        assert verdict.startswith("gap")


class TestPrintRows:
    def test_renders_and_returns(self, capsys):
        cell = rows([3.0], [1.5])
        out = print_rows("Title", cell, {("P", "det"): "tight"})
        printed = capsys.readouterr().out
        assert "Title" in printed
        assert "tight" in out
        assert "2.00" in out  # the ratio column
