"""The ``python -m repro`` experiment driver."""

import pytest

from repro.cli import EXPERIMENTS, main, parse_jobs


class TestCLI:
    def test_experiment_registry_covers_design_index(self):
        assert set(EXPERIMENTS) == {
            "t1a", "t1b", "t1c", "t1d", "s8", "rel", "lb", "abl", "perf",
            "sched", "xmodel",
        }

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "t1a" in out

    def test_single_experiment_prints_table(self, capsys):
        # t1b is the fastest full-table experiment.
        assert main(["t1b"]) == 0
        out = capsys.readouterr().out
        assert 'Table 1b: "Time Lower Bounds for s-QSM"' in out
        assert "tight" in out  # the Theta(g log n) parity cell


class TestTraceCommand:
    def test_trace_is_not_an_experiment(self):
        # the EXPERIMENTS registry stays the DESIGN.md index; trace is a
        # separately-dispatched subcommand.
        assert "trace" not in EXPERIMENTS

    def test_trace_prints_breakdown_and_summary(self, capsys):
        assert main(["trace", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "phase history" in out
        assert "dominant-term summary" in out
        assert "g*m_rw" in out

    def test_trace_export_chrome(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--model", "qsm", "--n", "64",
                     "--export", "chrome", "--out", str(out_file)]) == 0
        import json

        payload = json.loads(out_file.read_text())
        events = payload["traceEvents"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all({"ts", "dur", "pid", "tid"} <= set(e) for e in events)

    def test_trace_export_jsonl_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "--model", "bsp", "--n", "64",
                     "--export", "jsonl", "--out", str(out_file)]) == 0
        from repro.obs import read_jsonl

        records = read_jsonl(str(out_file))
        assert records and all(r.model == "BSP" for r in records)

    def test_trace_help_mentions_exports(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--help"])
        assert "chrome" in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_is_not_an_experiment(self):
        assert "chaos" not in EXPERIMENTS

    def test_chaos_small_run_passes(self, capsys):
        assert main(["chaos", "--n", "16", "--budget", "4",
                     "--only", "parity", "--skip-sweep-demo"]) == 0
        out = capsys.readouterr().out
        assert "all survived" in out
        assert "CHAOS: all clear" in out

    def test_chaos_help_mentions_the_gate(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        out = capsys.readouterr().out
        assert "winner" in out
        assert "fault" in out


class TestVersionCommand:
    def test_version_subcommand_prints_version_and_engine(self, capsys):
        from repro import __version__

        assert main(["version"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == __version__
        assert lines[1].startswith("engine: ")
        assert "numpy" in lines[1]

    def test_version_reports_env_selected_engine(self, capsys, monkeypatch):
        from repro.core.engine_vector import have_numpy

        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert main(["version"]) == 0
        engine_line = capsys.readouterr().out.strip().splitlines()[1]
        if have_numpy():
            assert engine_line.startswith("engine: vector")
        else:  # the documented numpy fallback is surfaced, not silent
            assert engine_line.startswith("engine: reference")
            assert "requested 'vector'" in engine_line

    def test_version_rejects_bad_engine_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        assert main(["version"]) == 2
        assert "engine" in capsys.readouterr().err

    def test_version_flags(self, capsys):
        from repro import __version__

        for flag in ("--version", "-V"):
            assert main([flag]) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            assert lines[0] == __version__
            assert lines[1].startswith("engine: ")

    def test_version_is_not_an_experiment(self):
        assert "version" not in EXPERIMENTS


class TestCampaignCommand:
    def test_campaign_is_not_an_experiment(self):
        assert "campaign" not in EXPERIMENTS

    def test_campaign_list_names_shipped_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("demo", "table1", "section8", "chaos", "cross_model"):
            assert name in out

    def test_campaign_demo_runs_then_resumes_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "3",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "campaign demo:" in out
        assert "4 done" in out  # 3 points + inline summary

        # Second run: every stored point is served from the store.
        assert main(["campaign", "resume", "--demo", "--points", "3",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "3 cached" in out

    def test_campaign_status_and_prune(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet"]) == 0
        capsys.readouterr()

        # The spec (including --delay) is part of each task's content key,
        # so status must be asked about the same campaign configuration.
        assert main(["campaign", "status", "--demo", "--points", "2",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2/2 stored task(s) done" in out
        assert "inline" in out  # the summary task is never stored

        assert main(["campaign", "prune", "--store", store, "--dry-run"]) == 0
        assert "would prune 2" in capsys.readouterr().out
        assert main(["campaign", "prune", "--store", store]) == 0
        assert "pruned 2" in capsys.readouterr().out

    def test_campaign_writes_scheduler_trace(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        trace = tmp_path / "sched-trace.json"
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "process_name" in names
        assert any(n.startswith("demo/point-") for n in names)

    def test_campaign_unknown_name_rejected(self, tmp_path, capsys):
        assert main(["campaign", "run", "nope",
                     "--store", str(tmp_path / "s")]) == 2
        assert "unknown campaign" in capsys.readouterr().err


class TestJobsValidation:
    def test_jobs_flag_is_stripped_and_parsed(self):
        assert parse_jobs(["t1a", "--jobs", "4"]) == (["t1a"], 4)
        assert parse_jobs(["--jobs=2", "s8"]) == (["s8"], 2)
        assert parse_jobs(["t1a"]) == (["t1a"], None)

    def test_jobs_zero_or_negative_rejected(self):
        for bad in (["--jobs", "0"], ["--jobs=-3"]):
            with pytest.raises(SystemExit, match=">= 1"):
                parse_jobs(bad)

    def test_jobs_non_integer_rejected(self):
        with pytest.raises(SystemExit, match="integer"):
            parse_jobs(["--jobs", "many"])
        with pytest.raises(SystemExit, match="needs a value"):
            parse_jobs(["--jobs"])

    def test_bad_repro_jobs_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert "REPRO_JOBS must be an integer" in capsys.readouterr().err

    def test_nonpositive_repro_jobs_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_explicit_jobs_flag_overrides_bad_env(self, monkeypatch, capsys):
        # --jobs 1 wins over a typo'd environment: the run proceeds (and then
        # fails on the unknown experiment, proving validation was skipped).
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["nope", "--jobs", "1"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestMetricsCommand:
    def test_metrics_is_not_an_experiment(self):
        assert "metrics" not in EXPERIMENTS

    def test_dump_notes_disabled_registry(self, capsys):
        assert main(["metrics", "dump"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_dump_renders_live_registry(self, capsys):
        from repro.obs.metrics import REGISTRY

        REGISTRY.counter("repro_test_total", "").inc(3)
        try:
            assert main(["metrics", "dump"]) == 0
            assert "repro_test_total" in capsys.readouterr().out
        finally:
            REGISTRY.reset()

    def test_dump_from_snapshot_file(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.snapshot import SnapshotWriter

        registry = MetricsRegistry()
        registry.counter("repro_snap_total", "").inc(7)
        path = str(tmp_path / "metrics.jsonl")
        SnapshotWriter(path, registry=registry).close()
        assert main(["metrics", "dump", "--snapshots", path]) == 0
        out = capsys.readouterr().out
        assert "repro_snap_total" in out
        assert "(final)" in out

    def test_dump_missing_snapshot_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["metrics", "dump", "--snapshots", missing]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestBenchCheckCommand:
    def test_bench_is_not_an_experiment(self):
        assert "bench" not in EXPERIMENTS

    def write_bench(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    BASE = {
        "x=1": {"measured": 10.0, "correct": True},
        "x=2": {"measured": 40.0, "correct": True},
    }

    def test_baseline_vs_itself_exits_zero(self, tmp_path, capsys):
        base = self.write_bench(tmp_path, "base.json", self.BASE)
        assert main(["bench", "check", "--baseline", base,
                     "--current", base]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_perturbed_point_exits_nonzero(self, tmp_path, capsys):
        # The acceptance check: a point drifting beyond tolerance gates.
        base = self.write_bench(tmp_path, "base.json", self.BASE)
        perturbed = dict(self.BASE, **{
            "x=2": {"measured": 80.0, "correct": True},
        })
        cur = self.write_bench(tmp_path, "cur.json", perturbed)
        assert main(["bench", "check", "--baseline", base,
                     "--current", cur]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "x=2.measured" in out

    def test_report_file_written(self, tmp_path, capsys):
        base = self.write_bench(tmp_path, "base.json", self.BASE)
        report = tmp_path / "report.md"
        assert main(["bench", "check", "--baseline", base, "--current", base,
                     "--report", str(report)]) == 0
        assert report.read_text().startswith("# Bench check: PASS")

    def test_store_backed_current(self, tmp_path, capsys):
        from repro.sched.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        key = store.key_for("demo:a", {"n": 1})
        store.put(key, {"measured": 5.0, "correct": True})
        base = self.write_bench(
            tmp_path, "base.json", {key: {"measured": 5.0, "correct": True}}
        )
        assert main(["bench", "check", "--baseline", base,
                     "--store", store_dir]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        assert main(["bench", "check", "--baseline",
                     str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    CROSS_MODEL = {
        "schema": "cross_model/1",
        "models": ["MPC", "PEM"],
        "cells": {
            "Parity": {
                "model=MPC,n=64": {"measured": 3.0, "bound": 3.0,
                                   "correct": True},
                "model=PEM,n=64": {"measured": 9.0, "bound": 1.0,
                                   "correct": True},
            },
        },
        "engines_agree_mpc": True,
        "engines_agree_pem": True,
    }

    def test_cross_model_perturbed_point_exits_nonzero(self, tmp_path, capsys):
        # BENCH_cross_model.json diffs at the deterministic 1% tolerance.
        base = self.write_bench(tmp_path, "base.json", self.CROSS_MODEL)
        import json

        perturbed = json.loads(json.dumps(self.CROSS_MODEL))
        perturbed["cells"]["Parity"]["model=MPC,n=64"]["measured"] = 4.0
        cur = self.write_bench(tmp_path, "cur.json", perturbed)
        assert main(["bench", "check", "--baseline", base,
                     "--current", cur]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "cells.Parity.model=MPC,n=64.measured" in out

    def test_cross_model_schema_auto_remeasures(self, tmp_path, capsys,
                                                monkeypatch):
        # A baseline with a "cells" block dispatches to the cross-model
        # collector when no --current/--store is given.
        import repro.obs.regress as regress

        calls = {}

        def fake_collect(samples=1, jobs=None):
            calls["samples"] = samples
            import json

            return json.loads(json.dumps(self.CROSS_MODEL))

        monkeypatch.setattr(regress, "collect_cross_model_current",
                            fake_collect)
        base = self.write_bench(tmp_path, "base.json", self.CROSS_MODEL)
        assert main(["bench", "check", "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "re-measuring the cross-model bench" in out
        assert "PASS" in out
        assert calls["samples"] == 1


class TestCampaignMetricsFlags:
    def test_run_writes_metrics_snapshots(self, tmp_path, capsys):
        from repro.obs.snapshot import read_snapshots

        store = str(tmp_path / "store")
        metrics = tmp_path / "metrics.jsonl"
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--metrics", str(metrics)]) == 0
        assert "wrote metrics snapshots" in capsys.readouterr().out
        snaps = read_snapshots(str(metrics))
        assert snaps and snaps[-1].final
        # done + cached across the stream covers all three stored points.
        assert snaps[-1].value("repro_campaign_tasks_total") == 3.0

    def test_metrics_auto_lands_in_store(self, tmp_path, capsys):
        import os

        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--metrics"]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(store, "metrics.jsonl"))

    def test_status_metrics_renders_progress(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--metrics"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", store,
                     "--metrics",
                     str(tmp_path / "store" / "metrics.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "done" in out and "(final)" in out

    def test_status_metrics_missing_stream(self, tmp_path, capsys):
        assert main(["campaign", "status", "--store", str(tmp_path / "s"),
                     "--metrics", str(tmp_path / "nope.jsonl")]) == 1
        assert "no metrics snapshots" in capsys.readouterr().err

    def test_combined_trace_has_metrics_lane(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        trace = tmp_path / "trace.json"
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--trace", str(trace), "--metrics"]) == 0
        capsys.readouterr()
        events = json.loads(trace.read_text())["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {0, 1, 2} <= pids  # phase rows, scheduler spans, counters
        assert any(e["ph"] == "C" for e in events)

    def test_bad_interval_flag_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--demo", "--store",
                  str(tmp_path / "s"), "--metrics", "--interval", "0"])
        assert "interval" in capsys.readouterr().err.lower()


class TestMetricsIntervalEnvValidation:
    def test_malformed_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "soon")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert "REPRO_METRICS_INTERVAL" in capsys.readouterr().err

    def test_nonpositive_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "-1")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert "positive" in capsys.readouterr().err

    def test_valid_env_accepted(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "0.5")
        assert main(["nope"]) == 2  # proceeds to the unknown-experiment error
        assert "unknown experiment" in capsys.readouterr().err
