"""The ``python -m repro`` experiment driver."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_registry_covers_design_index(self):
        assert set(EXPERIMENTS) == {
            "t1a", "t1b", "t1c", "t1d", "s8", "rel", "lb", "abl", "perf",
        }

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "t1a" in out

    def test_single_experiment_prints_table(self, capsys):
        # t1b is the fastest full-table experiment.
        assert main(["t1b"]) == 0
        out = capsys.readouterr().out
        assert 'Table 1b: "Time Lower Bounds for s-QSM"' in out
        assert "tight" in out  # the Theta(g log n) parity cell
