"""The ``python -m repro`` experiment driver."""

import pytest

from repro.cli import EXPERIMENTS, main, parse_jobs


class TestCLI:
    def test_experiment_registry_covers_design_index(self):
        assert set(EXPERIMENTS) == {
            "t1a", "t1b", "t1c", "t1d", "s8", "rel", "lb", "abl", "perf",
            "sched",
        }

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "t1a" in out

    def test_single_experiment_prints_table(self, capsys):
        # t1b is the fastest full-table experiment.
        assert main(["t1b"]) == 0
        out = capsys.readouterr().out
        assert 'Table 1b: "Time Lower Bounds for s-QSM"' in out
        assert "tight" in out  # the Theta(g log n) parity cell


class TestTraceCommand:
    def test_trace_is_not_an_experiment(self):
        # the EXPERIMENTS registry stays the DESIGN.md index; trace is a
        # separately-dispatched subcommand.
        assert "trace" not in EXPERIMENTS

    def test_trace_prints_breakdown_and_summary(self, capsys):
        assert main(["trace", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "phase history" in out
        assert "dominant-term summary" in out
        assert "g*m_rw" in out

    def test_trace_export_chrome(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--model", "qsm", "--n", "64",
                     "--export", "chrome", "--out", str(out_file)]) == 0
        import json

        payload = json.loads(out_file.read_text())
        events = payload["traceEvents"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all({"ts", "dur", "pid", "tid"} <= set(e) for e in events)

    def test_trace_export_jsonl_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "--model", "bsp", "--n", "64",
                     "--export", "jsonl", "--out", str(out_file)]) == 0
        from repro.obs import read_jsonl

        records = read_jsonl(str(out_file))
        assert records and all(r.model == "BSP" for r in records)

    def test_trace_help_mentions_exports(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--help"])
        assert "chrome" in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_is_not_an_experiment(self):
        assert "chaos" not in EXPERIMENTS

    def test_chaos_small_run_passes(self, capsys):
        assert main(["chaos", "--n", "16", "--budget", "4",
                     "--only", "parity", "--skip-sweep-demo"]) == 0
        out = capsys.readouterr().out
        assert "all survived" in out
        assert "CHAOS: all clear" in out

    def test_chaos_help_mentions_the_gate(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        out = capsys.readouterr().out
        assert "winner" in out
        assert "fault" in out


class TestVersionCommand:
    def test_version_subcommand_prints_package_version(self, capsys):
        from repro import __version__

        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == __version__

    def test_version_flags(self, capsys):
        from repro import __version__

        for flag in ("--version", "-V"):
            assert main([flag]) == 0
            assert capsys.readouterr().out.strip() == __version__

    def test_version_is_not_an_experiment(self):
        assert "version" not in EXPERIMENTS


class TestCampaignCommand:
    def test_campaign_is_not_an_experiment(self):
        assert "campaign" not in EXPERIMENTS

    def test_campaign_list_names_shipped_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("demo", "table1", "section8", "chaos"):
            assert name in out

    def test_campaign_demo_runs_then_resumes_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "3",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "campaign demo:" in out
        assert "4 done" in out  # 3 points + inline summary

        # Second run: every stored point is served from the store.
        assert main(["campaign", "resume", "--demo", "--points", "3",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "3 cached" in out

    def test_campaign_status_and_prune(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet"]) == 0
        capsys.readouterr()

        # The spec (including --delay) is part of each task's content key,
        # so status must be asked about the same campaign configuration.
        assert main(["campaign", "status", "--demo", "--points", "2",
                     "--delay", "0", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2/2 stored task(s) done" in out
        assert "inline" in out  # the summary task is never stored

        assert main(["campaign", "prune", "--store", store, "--dry-run"]) == 0
        assert "would prune 2" in capsys.readouterr().out
        assert main(["campaign", "prune", "--store", store]) == 0
        assert "pruned 2" in capsys.readouterr().out

    def test_campaign_writes_scheduler_trace(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        trace = tmp_path / "sched-trace.json"
        assert main(["campaign", "run", "--demo", "--points", "2",
                     "--delay", "0", "--store", store, "--quiet",
                     "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "process_name" in names
        assert any(n.startswith("demo/point-") for n in names)

    def test_campaign_unknown_name_rejected(self, tmp_path, capsys):
        assert main(["campaign", "run", "nope",
                     "--store", str(tmp_path / "s")]) == 2
        assert "unknown campaign" in capsys.readouterr().err


class TestJobsValidation:
    def test_jobs_flag_is_stripped_and_parsed(self):
        assert parse_jobs(["t1a", "--jobs", "4"]) == (["t1a"], 4)
        assert parse_jobs(["--jobs=2", "s8"]) == (["s8"], 2)
        assert parse_jobs(["t1a"]) == (["t1a"], None)

    def test_jobs_zero_or_negative_rejected(self):
        for bad in (["--jobs", "0"], ["--jobs=-3"]):
            with pytest.raises(SystemExit, match=">= 1"):
                parse_jobs(bad)

    def test_jobs_non_integer_rejected(self):
        with pytest.raises(SystemExit, match="integer"):
            parse_jobs(["--jobs", "many"])
        with pytest.raises(SystemExit, match="needs a value"):
            parse_jobs(["--jobs"])

    def test_bad_repro_jobs_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert "REPRO_JOBS must be an integer" in capsys.readouterr().err

    def test_nonpositive_repro_jobs_env_rejected_at_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(SystemExit) as exc_info:
            main(["nope"])
        assert exc_info.value.code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_explicit_jobs_flag_overrides_bad_env(self, monkeypatch, capsys):
        # --jobs 1 wins over a typo'd environment: the run proceeds (and then
        # fails on the unknown experiment, proving validation was skipped).
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["nope", "--jobs", "1"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
