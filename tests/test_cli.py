"""The ``python -m repro`` experiment driver."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_registry_covers_design_index(self):
        assert set(EXPERIMENTS) == {
            "t1a", "t1b", "t1c", "t1d", "s8", "rel", "lb", "abl", "perf",
        }

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "t1a" in out

    def test_single_experiment_prints_table(self, capsys):
        # t1b is the fastest full-table experiment.
        assert main(["t1b"]) == 0
        out = capsys.readouterr().out
        assert 'Table 1b: "Time Lower Bounds for s-QSM"' in out
        assert "tight" in out  # the Theta(g log n) parity cell


class TestTraceCommand:
    def test_trace_is_not_an_experiment(self):
        # the EXPERIMENTS registry stays the DESIGN.md index; trace is a
        # separately-dispatched subcommand.
        assert "trace" not in EXPERIMENTS

    def test_trace_prints_breakdown_and_summary(self, capsys):
        assert main(["trace", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "phase history" in out
        assert "dominant-term summary" in out
        assert "g*m_rw" in out

    def test_trace_export_chrome(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--model", "qsm", "--n", "64",
                     "--export", "chrome", "--out", str(out_file)]) == 0
        import json

        payload = json.loads(out_file.read_text())
        events = payload["traceEvents"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all({"ts", "dur", "pid", "tid"} <= set(e) for e in events)

    def test_trace_export_jsonl_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "--model", "bsp", "--n", "64",
                     "--export", "jsonl", "--out", str(out_file)]) == 0
        from repro.obs import read_jsonl

        records = read_jsonl(str(out_file))
        assert records and all(r.model == "BSP" for r in records)

    def test_trace_help_mentions_exports(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--help"])
        assert "chrome" in capsys.readouterr().out
