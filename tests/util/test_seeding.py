"""Unit tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.util.seeding import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42).integers(0, 1 << 30, size=8)
        b = derive_rng(42).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = derive_rng(1).integers(0, 1 << 30, size=8)
        b = derive_rng(2).integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(7)
        assert derive_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_reproducible(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_children_independent_streams(self):
        gens = spawn_rngs(0, 3)
        draws = [tuple(g.integers(0, 1 << 30, size=4)) for g in gens]
        assert len(set(draws)) == 3

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
