"""Unit tests for the clamped slow-growing function helpers."""

import math

import pytest

from repro.util.mathfn import (
    ceil_div,
    clamp,
    ilog2,
    log2p,
    log_base,
    log_star,
    log_star_base,
    loglog2p,
    safe_ratio,
    sqrt_ratio,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_dividend(self):
        assert ceil_div(0, 7) == 0

    def test_one_divisor(self):
        assert ceil_div(9, 1) == 9

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestClamp:
    def test_below(self):
        assert clamp(-5, 0, 10) == 0

    def test_above(self):
        assert clamp(15, 0, 10) == 10

    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestIlog2:
    def test_powers(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    def test_floors(self):
        assert ilog2(5) == 2
        assert ilog2(1023) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestLog2p:
    def test_clamps_small_values_to_one(self):
        assert log2p(0.5) == 1.0
        assert log2p(2.0) == 1.0

    def test_exact_above_two(self):
        assert log2p(8.0) == pytest.approx(3.0)

    def test_monotone(self):
        xs = [2, 3, 10, 100, 10_000]
        vals = [log2p(x) for x in xs]
        assert vals == sorted(vals)


class TestLoglog2p:
    def test_clamped_region(self):
        assert loglog2p(3.0) == 1.0
        assert loglog2p(4.0) == 1.0

    def test_value(self):
        assert loglog2p(2**16) == pytest.approx(4.0)

    def test_never_below_one(self):
        for x in [0.1, 1, 2, 5, 1e9]:
            assert loglog2p(x) >= 1.0


class TestLogBase:
    def test_matches_math_log(self):
        assert log_base(81, 3) == pytest.approx(4.0)

    def test_clamps(self):
        assert log_base(2, 3) == 1.0

    def test_rejects_base_le_one(self):
        with pytest.raises(ValueError):
            log_base(10, 1.0)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_2_to_65536_is_5(self):
        assert log_star(2.0**65536 if False else float(2**100)) == 5  # 2^100 < 2^65536

    def test_monotone_nondecreasing(self):
        xs = [1, 2, 3, 4, 15, 16, 17, 65535, 65536, 65537]
        vals = [log_star(x) for x in xs]
        assert vals == sorted(vals)

    def test_base_variant_small_base_larger(self):
        # Larger bases shrink the iterated log count.
        assert log_star_base(1e6, 2) >= log_star_base(1e6, 10)

    def test_base_must_exceed_one(self):
        with pytest.raises(ValueError):
            log_star_base(10, 1.0)

    def test_paper_inequality_log_star_change_of_base(self):
        # log* n <= log*_{z+1} n + log* z + 2 (used in Theorem 7.1).
        for n in [10, 1000, 10**9]:
            for z in [1, 2, 8, 100]:
                assert log_star(n) <= log_star_base(n, z + 1) + log_star(z) + 2


class TestRatios:
    def test_safe_ratio_guards_denominator(self):
        assert safe_ratio(10, 0.5) == 10.0
        assert safe_ratio(10, 2.0) == 5.0

    def test_sqrt_ratio(self):
        assert sqrt_ratio(16, 4) == 2.0
        assert sqrt_ratio(-1, 4) == 0.0

    def test_sqrt_ratio_guards_denominator(self):
        assert sqrt_ratio(4, 0.25) == 2.0
