"""wallclock(): monotonic-derived epoch stamps."""

import time

from repro.util.clock import MONO_ANCHOR, WALL_ANCHOR, wallclock


def test_tracks_epoch_time():
    # Within one process and no clock adjustment, wallclock ~ time.time.
    assert abs(wallclock() - time.time()) < 5.0


def test_never_decreases():
    stamps = [wallclock() for _ in range(100)]
    assert stamps == sorted(stamps)


def test_derivation_is_monotonic_plus_anchor():
    before = time.monotonic()
    stamp = wallclock()
    after = time.monotonic()
    assert WALL_ANCHOR + (before - MONO_ANCHOR) <= stamp
    assert stamp <= WALL_ANCHOR + (after - MONO_ANCHOR)
