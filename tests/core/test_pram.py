"""The classical PRAM family: step discipline, concurrency rules, write rules."""

import pytest

from repro.core import PRAM, ConcurrencyViolation, PRAMParams


class TestParams:
    def test_defaults(self):
        p = PRAMParams()
        assert p.variant == "EREW" and p.write_rule == "arbitrary"

    def test_variant_validated(self):
        with pytest.raises(ValueError):
            PRAMParams(variant="QRQW")

    def test_write_rule_validated(self):
        with pytest.raises(ValueError):
            PRAMParams(write_rule="fetch-add")


class TestStepDiscipline:
    def test_each_step_costs_one(self):
        m = PRAM()
        for _ in range(5):
            with m.phase() as ph:
                ph.write(0, 0, 1)
        assert m.time == 5.0

    def test_two_accesses_per_processor_rejected(self):
        m = PRAM(PRAMParams("CRCW"))
        m.load([1, 2])
        with pytest.raises(ConcurrencyViolation, match="at most one"):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.read(0, 1)

    def test_read_plus_write_rejected(self):
        m = PRAM(PRAMParams("CRCW"))
        m.load([1, 2])
        with pytest.raises(ConcurrencyViolation):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.write(0, 5, 1)

    def test_local_work_free_and_unbounded(self):
        m = PRAM()
        with m.phase() as ph:
            ph.local(0, 1000)
            ph.write(0, 0, 1)
        assert m.time == 1.0

    def test_machine_usable_after_violation(self):
        m = PRAM()
        m.load([1])
        with pytest.raises(ConcurrencyViolation):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.read(1, 0)
        with m.phase() as ph:
            ph.write(0, 3, "ok")
        assert m.peek(3) == "ok"

    def test_failed_step_commits_nothing(self):
        m = PRAM()
        m.load([1])
        with pytest.raises(ConcurrencyViolation):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.read(1, 0)
        assert m.time == 0.0
        assert m.phase_count == 0


class TestConcurrencyRules:
    def test_erew_rejects_concurrent_reads(self):
        m = PRAM(PRAMParams("EREW"))
        m.load([7])
        with pytest.raises(ConcurrencyViolation, match="EREW"):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.read(1, 0)

    def test_crew_allows_concurrent_reads(self):
        m = PRAM(PRAMParams("CREW"))
        m.load([7])
        with m.phase() as ph:
            handles = [ph.read(i, 0) for i in range(4)]
        assert all(h.value == 7 for h in handles)

    def test_crew_rejects_concurrent_writes(self):
        m = PRAM(PRAMParams("CREW"))
        with pytest.raises(ConcurrencyViolation, match="CREW"):
            with m.phase() as ph:
                ph.write(0, 0, 1)
                ph.write(1, 0, 2)

    def test_crcw_allows_both(self):
        m = PRAM(PRAMParams("CRCW"))
        with m.phase() as ph:
            ph.write(0, 0, 5)
            ph.write(1, 0, 6)
        assert m.peek(0) in (5, 6)


class TestWriteRules:
    def test_common_accepts_agreement(self):
        m = PRAM(PRAMParams("CRCW", "common"))
        with m.phase() as ph:
            for i in range(5):
                ph.write(i, 0, "same")
        assert m.peek(0) == "same"

    def test_common_rejects_disagreement(self):
        m = PRAM(PRAMParams("CRCW", "common"))
        with pytest.raises(ConcurrencyViolation, match="COMMON"):
            with m.phase() as ph:
                ph.write(0, 0, "a")
                ph.write(1, 0, "b")

    def test_priority_lowest_id_wins(self):
        m = PRAM(PRAMParams("CRCW", "priority"))
        with m.phase() as ph:
            ph.write(5, 0, "late")
            ph.write(2, 0, "winner")
            ph.write(9, 0, "later")
        assert m.peek(0) == "winner"

    def test_arbitrary_seeded(self):
        def run(seed):
            m = PRAM(PRAMParams("CRCW", "arbitrary"), seed=seed)
            with m.phase() as ph:
                for i in range(4):
                    ph.write(i, 0, i)
            return m.peek(0)

        assert run(3) == run(3)
        assert run(3) in (0, 1, 2, 3)


class TestPRAMAlgorithms:
    @pytest.mark.parametrize("n", [1, 2, 7, 33, 100])
    def test_or_crcw(self, n):
        from repro.algorithms.pram_algos import or_crcw
        from repro.problems import gen_bits, verify_or

        bits = gen_bits(n, density=0.1, seed=n)
        r = or_crcw(PRAM(PRAMParams("CRCW", "common")), bits)
        assert verify_or(bits, r.value)

    def test_or_crcw_constant_steps(self):
        from repro.algorithms.pram_algos import or_crcw

        t = {}
        for n in (16, 1024):
            r = or_crcw(PRAM(PRAMParams("CRCW", "common")), [1] * n)
            t[n] = r.time
        assert t[16] == t[1024] == 2.0  # O(1), independent of n

    @pytest.mark.parametrize("n", [1, 2, 9, 64, 100])
    def test_parity_erew(self, n):
        from repro.algorithms.pram_algos import parity_erew
        from repro.problems import gen_bits, verify_parity

        bits = gen_bits(n, seed=n)
        r = parity_erew(PRAM(PRAMParams("EREW")), bits)
        assert verify_parity(bits, r.value)

    @pytest.mark.parametrize("n", [2, 9, 64, 200])
    def test_parity_crcw(self, n):
        from repro.algorithms.pram_algos import parity_crcw
        from repro.problems import gen_bits, verify_parity

        bits = gen_bits(n, seed=n + 1)
        r = parity_crcw(PRAM(PRAMParams("CRCW", "common")), bits)
        assert verify_parity(bits, r.value)

    def test_crcw_parity_beats_erew(self):
        """The Beame-Hastad separation: log n/loglog n < log n."""
        from repro.algorithms.pram_algos import parity_crcw, parity_erew
        from repro.problems import gen_bits

        bits = gen_bits(1024, seed=5)
        t_erew = parity_erew(PRAM(PRAMParams("EREW")), bits).time
        t_crcw = parity_crcw(PRAM(PRAMParams("CRCW", "common")), bits).time
        assert t_crcw < t_erew

    def test_variant_requirements_enforced(self):
        from repro.algorithms.pram_algos import or_crcw, parity_crcw

        with pytest.raises(ValueError):
            or_crcw(PRAM(PRAMParams("EREW")), [1])
        with pytest.raises(ValueError):
            parity_crcw(PRAM(PRAMParams("CREW")), [1, 0])

    def test_qrqw_bridge(self):
        """The QRQW PRAM = QSM with g=1 sits between CREW and CRCW: the
        CRCW pattern method runs on it with contention *charged*, not free."""
        from repro.algorithms.parity import parity_blocks
        from repro.core import QSM, QSMParams
        from repro.problems import gen_bits

        bits = gen_bits(256, seed=6)
        qrqw = QSM(QSMParams(g=1))
        r = parity_blocks(qrqw, bits, block_size=4)
        assert r.value == sum(bits) % 2
        # Contention shows up in the cost: some phase charged kappa > 1.
        assert any(rec.kappa > 1 for rec in qrqw.history)
