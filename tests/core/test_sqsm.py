"""s-QSM-specific cost behaviour (same memory semantics as QSM)."""

from repro.core import QSM, SQSM, QSMParams, SQSMParams


class TestSQSMCosting:
    def test_contention_charged_with_gap(self):
        m = SQSM(SQSMParams(g=3))
        m.load([0])
        with m.phase() as ph:
            for i in range(5):
                ph.read(i, 0)
        assert m.phase_costs == [15.0]  # g * kappa = 3 * 5

    def test_g1_matches_qrqw(self):
        # s-QSM with g=1 and QSM with g=1 are both the QRQW PRAM.
        def drive(machine):
            machine.load([0, 0])
            with machine.phase() as ph:
                for i in range(4):
                    ph.read(i, i % 2)
            return machine.time

        assert drive(SQSM(SQSMParams(g=1))) == drive(QSM(QSMParams(g=1)))

    def test_write_semantics_inherited(self):
        m = SQSM(seed=9)
        with m.phase() as ph:
            ph.write(0, 0, "a")
            ph.write(1, 0, "b")
        assert m.peek(0) in ("a", "b")

    def test_is_instance_of_qsm_but_tagged_differently(self):
        from repro.algorithms.common import model_name

        assert isinstance(SQSM(), QSM)
        assert model_name(SQSM()) == "s-QSM"
        assert model_name(QSM()) == "QSM"

    def test_same_program_costs_more_on_sqsm_under_contention(self):
        def drive(machine):
            machine.load([0])
            with machine.phase() as ph:
                for i in range(8):
                    ph.read(i, 0)
            return machine.time

        q = drive(QSM(QSMParams(g=4)))
        s = drive(SQSM(SQSMParams(g=4)))
        assert s > q  # kappa vs g*kappa
