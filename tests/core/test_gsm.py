"""GSM-specific semantics: strong queuing, gamma packing, big-steps."""

import pytest

from repro.core import GSM, GSMParams


class TestStrongQueuing:
    def test_all_writes_accumulate(self):
        m = GSM()
        with m.phase() as ph:
            ph.write(0, 5, "a")
            ph.write(1, 5, "b")
            ph.write(2, 5, "c")
        assert m.peek(5) == ("a", "b", "c")

    def test_accumulation_across_phases(self):
        m = GSM()
        with m.phase() as ph:
            ph.write(0, 5, "x")
        with m.phase() as ph:
            ph.write(1, 5, "y")
        assert m.peek(5) == ("x", "y")

    def test_accumulation_order_by_processor_id(self):
        m = GSM()
        with m.phase() as ph:
            ph.write(3, 0, "late")
            ph.write(1, 0, "early")
        assert m.peek(0) == ("early", "late")

    def test_poke_wraps_in_tuple(self):
        m = GSM()
        m.poke(0, 42)
        assert m.peek(0) == (42,)

    def test_read_delivers_whole_cell(self):
        m = GSM()
        with m.phase() as ph:
            ph.write(0, 7, 1)
            ph.write(1, 7, 2)
        with m.phase() as ph:
            h = ph.read(0, 7)
        assert h.value == (1, 2)


class TestGammaPacking:
    def test_load_packed_cell_count(self):
        m = GSM(GSMParams(gamma=3))
        used = m.load_packed([1, 2, 3, 4, 5, 6, 7])
        assert used == 3
        assert m.peek(0) == (1, 2, 3)
        assert m.peek(2) == (7,)

    def test_gamma_one_is_one_per_cell(self):
        m = GSM(GSMParams(gamma=1))
        assert m.load_packed(list("abc")) == 3
        assert m.peek(1) == ("b",)

    def test_load_packed_with_base(self):
        m = GSM(GSMParams(gamma=2))
        m.load_packed([1, 2, 3], base=10)
        assert m.peek(10) == (1, 2)
        assert m.peek(11) == (3,)


class TestBigSteps:
    def test_big_steps_accumulate(self):
        m = GSM(GSMParams(alpha=2, beta=2))
        with m.phase() as ph:
            for a in range(4):
                ph.read(0, a)  # m_rw = 4 -> ceil(4/2) = 2 big-steps
        with m.phase() as ph:
            ph.write(0, 9, 1)  # 1 big-step
        assert m.big_steps == 3

    def test_time_is_mu_per_big_step(self):
        m = GSM(GSMParams(alpha=2, beta=6))
        with m.phase() as ph:
            ph.write(0, 0, 1)
        assert m.time == 6.0  # mu = 6, one big-step

    def test_contention_big_steps(self):
        m = GSM(GSMParams(alpha=1, beta=3))
        m.poke(0, 0)
        with m.phase() as ph:
            for i in range(7):
                ph.read(i, 0)  # kappa = 7 -> ceil(7/3) = 3 big-steps
        assert m.big_steps == 3
