"""Work ceilings (Section 2.3) and the GSM(h) relaxed round (Section 6.3)."""

import pytest

from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import (
    gsm_h_round_budget,
    round_budget,
    round_work_bound,
    total_work,
)
from repro.lowerbounds.formulas import gsm_h_lac_rounds


class TestTotalWork:
    def test_processor_time_product(self):
        m = QSM(QSMParams(g=3))
        with m.phase() as ph:
            ph.write(0, 0, 1)
        assert total_work(m, 8) == 24.0

    def test_p_validated(self):
        with pytest.raises(ValueError):
            total_work(QSM(), 0)


class TestRoundWorkBound:
    def test_qsm_rgn(self):
        m = QSM(QSMParams(g=2))
        assert round_work_bound(m, n=100, p=4, rounds=3) == 600.0

    def test_bsp_includes_latency_term(self):
        b = BSP(4, BSPParams(g=2, L=10))
        assert round_work_bound(b, n=100, p=4, rounds=2) == 2 * (200 + 40)

    def test_gsm(self):
        g = GSM(GSMParams(alpha=2, beta=4))
        assert round_work_bound(g, n=10, p=2, rounds=1) == 4 * 10 / 2

    def test_consistency_with_round_budget(self):
        """work bound == rounds * p * per-round budget (shared-memory)."""
        for machine in (QSM(QSMParams(g=2)), SQSM(SQSMParams(g=3)), GSM(GSMParams(alpha=2, beta=2))):
            n, p, r = 64, 8, 5
            assert round_work_bound(machine, n, p, r) == pytest.approx(
                r * p * round_budget(machine, n, p)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            round_work_bound(QSM(), 0, 1, 1)


class TestGSMhBudget:
    def test_value(self):
        assert gsm_h_round_budget(GSMParams(alpha=3, beta=6), h=4) == 8.0  # mu*h/lam

    def test_symmetric_params(self):
        assert gsm_h_round_budget(GSMParams(alpha=2, beta=2), h=5) == 5.0

    def test_h_validated(self):
        with pytest.raises(ValueError):
            gsm_h_round_budget(GSMParams(), h=0)

    def test_constant(self):
        assert gsm_h_round_budget(GSMParams(), h=4, constant=2.0) == 8.0


class TestTheorem63Formula:
    def test_value(self):
        # sqrt(log(n/(d*gamma)) / log(mu h / lam)) at n=2^16, d=16, h=16.
        assert gsm_h_lac_rounds(2**16, 1, 1, 1, 16, 16) == pytest.approx((12 / 4) ** 0.5)

    def test_decreases_with_h(self):
        lo = gsm_h_lac_rounds(2**16, 1, 1, 1, 4, 8)
        hi = gsm_h_lac_rounds(2**16, 1, 1, 1, 64, 8)
        assert hi < lo

    def test_decreases_with_destination(self):
        small_d = gsm_h_lac_rounds(2**16, 1, 1, 1, 8, 2)
        big_d = gsm_h_lac_rounds(2**16, 1, 1, 1, 8, 2**10)
        assert big_d < small_d

    def test_validation(self):
        with pytest.raises(ValueError):
            gsm_h_lac_rounds(16, 1, 1, 1, 0, 1)
        with pytest.raises(ValueError):
            gsm_h_lac_rounds(16, 1, 1, 1, 1, 0)

    def test_specialises_to_corollary_6_3_shape(self):
        """With h = mu n/(lam p) the Theorem 6.3 form matches the
        gsm_lac_rounds bound used for Table 1d (gamma = d = 1)."""
        from repro.lowerbounds.formulas import gsm_lac_rounds

        n, p = 2**14, 2**7
        h = n / p
        assert gsm_h_lac_rounds(n, 1, 1, 1, h, 1) == pytest.approx(
            gsm_lac_rounds(n, 1, 1, 1, p)
        )
