"""QSM-specific semantics: arbitrary-winner writes and cost integration."""

import pytest

from repro.core import QSM, QSMParams


class TestArbitraryWinner:
    def test_single_writer_always_wins(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(3, 0, "only")
        assert m.peek(0) == "only"

    def test_winner_is_one_of_the_writers(self):
        m = QSM(seed=123)
        with m.phase() as ph:
            for i in range(6):
                ph.write(i, 0, f"v{i}")
        assert m.peek(0) in {f"v{i}" for i in range(6)}

    def test_seed_pins_the_winner(self):
        def run(seed):
            m = QSM(seed=seed)
            with m.phase() as ph:
                for i in range(6):
                    ph.write(i, 0, f"v{i}")
            return m.peek(0)

        assert run(5) == run(5)

    def test_different_seeds_can_differ(self):
        winners = set()
        for seed in range(20):
            m = QSM(seed=seed)
            with m.phase() as ph:
                for i in range(6):
                    ph.write(i, 0, f"v{i}")
            winners.add(m.peek(0))
        assert len(winners) > 1  # genuinely arbitrary across seeds


class TestCostIntegration:
    def test_phase_cost_formula(self):
        m = QSM(QSMParams(g=4))
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.read(0, 2)  # m_rw = 3
        assert m.phase_costs == [12.0]

    def test_contention_term(self):
        m = QSM(QSMParams(g=2))
        m.load([0])
        with m.phase() as ph:
            for i in range(10):
                ph.read(i, 0)
        assert m.phase_costs == [10.0]

    def test_unit_time_concurrent_reads_param(self):
        m = QSM(QSMParams(g=2, unit_time_concurrent_reads=True))
        m.load([0])
        with m.phase() as ph:
            for i in range(10):
                ph.read(i, 0)
        assert m.phase_costs == [2.0]
