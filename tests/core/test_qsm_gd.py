"""QSM(g,d): the two-gap model of Claim 2.2."""

import pytest

from repro.core import QSM, QSMGD, QSMGDParams, QSMParams, SQSM, SQSMParams
from repro.core.qsm_gd import qsm_gd_phase_cost
from repro.core.phase import PhaseRecord


def phase(reads=None, rq=None, ops=None):
    return PhaseRecord(0, reads or {}, {}, ops or {}, rq or {}, {})


class TestParams:
    def test_defaults(self):
        p = QSMGDParams()
        assert (p.g, p.d) == (1.0, 1.0)

    @pytest.mark.parametrize("kwargs", [{"g": 0.5}, {"d": 0.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QSMGDParams(**kwargs)


class TestCost:
    def test_formula(self):
        r = phase(reads={0: 3}, rq={0: 5, 1: 1})
        # max(0, g*3, d*5) with g=4, d=2 -> 12.
        assert qsm_gd_phase_cost(r, QSMGDParams(g=4, d=2)) == 12

    def test_d_contention_dominates(self):
        r = phase(reads={i: 1 for i in range(10)}, rq={0: 10})
        assert qsm_gd_phase_cost(r, QSMGDParams(g=2, d=3)) == 30

    def test_d_equals_one_is_qsm(self):
        from repro.core.cost import qsm_phase_cost

        r = phase(reads={0: 2, 1: 1}, rq={0: 2, 5: 1}, ops={0: 7})
        assert qsm_gd_phase_cost(r, QSMGDParams(g=3, d=1)) == qsm_phase_cost(
            r, QSMParams(g=3)
        )

    def test_d_equals_g_is_sqsm(self):
        from repro.core.cost import sqsm_phase_cost

        r = phase(reads={0: 2, 1: 1}, rq={0: 4}, ops={0: 7})
        assert qsm_gd_phase_cost(r, QSMGDParams(g=3, d=3)) == sqsm_phase_cost(
            r, SQSMParams(g=3)
        )


class TestMachine:
    def _contended_read(self, machine):
        machine.load([0])
        with machine.phase() as ph:
            for i in range(6):
                ph.read(i, 0)
        return machine.time

    def test_interpolates_between_qsm_and_sqsm(self):
        g = 6.0
        t_qsm = self._contended_read(QSM(QSMParams(g=g)))
        t_mid = self._contended_read(QSMGD(QSMGDParams(g=g, d=3)))
        t_sqsm = self._contended_read(SQSM(SQSMParams(g=g)))
        assert t_qsm <= t_mid <= t_sqsm
        assert t_qsm < t_sqsm

    def test_write_semantics_inherited(self):
        m = QSMGD(QSMGDParams(g=2, d=2), seed=3)
        with m.phase() as ph:
            ph.write(0, 0, "a")
            ph.write(1, 0, "b")
        assert m.peek(0) in ("a", "b")

    def test_model_name(self):
        from repro.algorithms.common import model_name

        assert model_name(QSMGD()) == "QSM(g,d)"


class TestAlgorithmsOnQSMGD:
    def test_parity_tree(self):
        from repro.algorithms.parity import parity_tree
        from repro.problems import gen_bits, verify_parity

        bits = gen_bits(50, seed=1)
        r = parity_tree(QSMGD(QSMGDParams(g=4, d=2)), bits)
        assert verify_parity(bits, r.value)

    def test_or_tournament_fanin_is_g_over_d(self):
        from repro.algorithms.or_ import or_tree_writes
        from repro.problems import gen_bits, verify_or

        bits = gen_bits(64, density=0.2, seed=2)
        r = or_tree_writes(QSMGD(QSMGDParams(g=8, d=2)), bits)
        assert verify_or(bits, r.value)
        assert r.extra["fan_in"] == 4

    def test_prefix_sums(self):
        from itertools import accumulate

        from repro.algorithms.prefix import prefix_sums

        vals = list(range(20))
        r = prefix_sums(QSMGD(QSMGDParams(g=2, d=2)), vals)
        assert r.value == list(accumulate(vals))

    def test_or_cost_interpolates_in_d(self):
        from repro.algorithms.or_ import or_tree_writes

        bits = [1] * 256
        times = []
        for d in (1.0, 2.0, 8.0):
            m = QSMGD(QSMGDParams(g=8, d=d))
            times.append(or_tree_writes(m, bits).time)
        assert times[0] <= times[1] <= times[2]


class TestClaim22Consistency:
    def test_mapped_bound_matches_qsm_at_d1(self):
        from repro.core.mapping import qsm_gd_time_from_gsm, qsm_time_from_gsm
        from repro.lowerbounds.formulas import gsm_parity_det_time

        t_gd = qsm_gd_time_from_gsm(gsm_parity_det_time)
        t_qsm = qsm_time_from_gsm(gsm_parity_det_time)
        for n in (2**10, 2**16):
            for g in (2.0, 8.0):
                assert t_gd(n, g, 1.0) == pytest.approx(t_qsm(n, g))

    def test_mapped_bound_matches_sqsm_at_d_equals_g(self):
        from repro.core.mapping import qsm_gd_time_from_gsm, sqsm_time_from_gsm
        from repro.lowerbounds.formulas import gsm_parity_det_time

        t_gd = qsm_gd_time_from_gsm(gsm_parity_det_time)
        t_sqsm = sqsm_time_from_gsm(gsm_parity_det_time)
        for n in (2**10, 2**16):
            for g in (2.0, 8.0):
                assert t_gd(n, g, g) == pytest.approx(t_sqsm(n, g))
