"""Claims 2.1 / 2.2: GSM bound translation.

The key consistency check: translating the GSM theorem statements through
the claim must reproduce the per-model corollaries stated in the paper
(up to the clamping conventions), which is how the paper itself derives
them.
"""

import math

import pytest

from repro.core.mapping import (
    bsp_rounds_from_gsm,
    bsp_time_from_gsm,
    qsm_gd_time_from_gsm,
    qsm_rounds_from_gsm,
    qsm_time_from_gsm,
    rounds_from_time_gsm,
    sqsm_rounds_from_gsm,
    sqsm_time_from_gsm,
)
from repro.lowerbounds.formulas import (
    gsm_or_det_time,
    gsm_parity_det_time,
    qsm_parity_det_time,
    sqsm_parity_det_time,
)


class TestTimeTranslation:
    def test_qsm_substitution(self):
        # T_QSM(n,g) = T_GSM(n, 1, g, 1): mu = g, gamma = 1.
        t = qsm_time_from_gsm(gsm_parity_det_time)
        n, g = 2**16, 8.0
        assert t(n, g) == pytest.approx(g * 16 / 3)  # mu log n / log mu

    def test_qsm_matches_corollary_3_1(self):
        t = qsm_time_from_gsm(gsm_parity_det_time)
        for n in [2**10, 2**16, 2**20]:
            for g in [2.0, 8.0, 64.0]:
                assert t(n, g) == pytest.approx(qsm_parity_det_time(n, g))

    def test_sqsm_substitution_scales_by_g(self):
        t = sqsm_time_from_gsm(gsm_parity_det_time)
        n = 2**12
        assert t(n, 4.0) == pytest.approx(2 * t(n, 2.0))

    def test_sqsm_matches_corollary_3_1(self):
        t = sqsm_time_from_gsm(gsm_parity_det_time)
        for n in [2**10, 2**16]:
            for g in [2.0, 16.0]:
                # g * T_GSM(n,1,1,1) = g * log n (mu=1 clamps log mu to 1).
                assert t(n, g) == pytest.approx(sqsm_parity_det_time(n, g))

    def test_bsp_substitution_gamma_is_n_over_p(self):
        t = bsp_time_from_gsm(gsm_parity_det_time)
        n, g, L, p = 2**16, 2.0, 16.0, 2**8
        # mu = L/g = 8, r = n/(n/p) = p = 2^8.
        expected = g * (L / g) * math.log2(p) / math.log2(L / g)
        assert t(n, g, L, p) == pytest.approx(expected)

    def test_bsp_L_dependence_is_linear_at_fixed_ratio(self):
        t = bsp_time_from_gsm(gsm_parity_det_time)
        n, p = 2**16, 2**8
        # Double L and g together: L/g fixed; bound doubles with g.
        assert t(n, 4.0, 32.0, p) == pytest.approx(2 * t(n, 2.0, 16.0, p))

    def test_bsp_rejects_bad_p(self):
        t = bsp_time_from_gsm(gsm_parity_det_time)
        with pytest.raises(ValueError):
            t(16, 1.0, 2.0, 0)


class TestRoundsTranslation:
    def test_rounds_from_time(self):
        r = rounds_from_time_gsm(gsm_or_det_time)
        val = r(2**12, 1.0, 1.0, 1.0, 2**6)
        assert val > 0

    def test_qsm_rounds_signature(self):
        r = rounds_from_time_gsm(gsm_or_det_time)
        rq = qsm_rounds_from_gsm(r)
        assert rq(2**12, 2.0, 2**6) > 0

    def test_sqsm_rounds_ignore_g(self):
        r = rounds_from_time_gsm(gsm_or_det_time)
        rs = sqsm_rounds_from_gsm(r)
        assert rs(2**12, 2.0, 2**6) == rs(2**12, 16.0, 2**6)

    def test_bsp_rounds_use_gamma_n_over_p(self):
        r = rounds_from_time_gsm(gsm_parity_det_time)
        rb = bsp_rounds_from_gsm(r)
        n, p = 2**12, 2**6
        # gamma = n/p reduces the effective input to p cells.
        assert rb(n, 2.0, 4.0, p) > 0
        with pytest.raises(ValueError):
            rb(n, 2.0, 4.0, 0)


class TestQSMgd:
    def test_g_over_d_regime(self):
        t = qsm_gd_time_from_gsm(gsm_parity_det_time)
        n = 2**10
        # g == d degenerates to d * T_GSM(n,1,1,1).
        assert t(n, 4.0, 4.0) == pytest.approx(4.0 * gsm_parity_det_time(n, 1, 1, 1))

    def test_continuous_at_g_equals_d(self):
        t = qsm_gd_time_from_gsm(gsm_parity_det_time)
        n = 2**10
        assert t(n, 4.0, 4.0) == pytest.approx(t(n, 4.0 + 1e-12, 4.0), rel=1e-6)

    def test_rejects_nonpositive(self):
        t = qsm_gd_time_from_gsm(gsm_parity_det_time)
        with pytest.raises(ValueError):
            t(16, 0.0, 1.0)


class TestQSMgdRounds:
    def test_endpoints_match_qsm_and_sqsm(self):
        from repro.core.mapping import (
            qsm_gd_rounds_from_gsm,
            qsm_rounds_from_gsm,
            rounds_from_time_gsm,
            sqsm_rounds_from_gsm,
        )
        from repro.lowerbounds.formulas import gsm_or_det_time

        r = rounds_from_time_gsm(gsm_or_det_time)
        r_gd = qsm_gd_rounds_from_gsm(r)
        r_qsm = qsm_rounds_from_gsm(r)
        r_sqsm = sqsm_rounds_from_gsm(r)
        n, p = 2**12, 2**6
        for g in (2.0, 8.0):
            assert r_gd(n, g, 1.0, p) == pytest.approx(r_qsm(n, g, p))
            assert r_gd(n, g, g, p) == pytest.approx(r_sqsm(n, g, p))

    def test_validation(self):
        from repro.core.mapping import qsm_gd_rounds_from_gsm, rounds_from_time_gsm
        from repro.lowerbounds.formulas import gsm_or_det_time

        r_gd = qsm_gd_rounds_from_gsm(rounds_from_time_gsm(gsm_or_det_time))
        with pytest.raises(ValueError):
            r_gd(16, 0.0, 1.0, 1)
        with pytest.raises(ValueError):
            r_gd(16, 1.0, 1.0, 0)
