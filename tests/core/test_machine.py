"""Shared-memory machine semantics: read latency, conflicts, accounting."""

import pytest

from repro.core import (
    GSM,
    QSM,
    SQSM,
    GSMParams,
    MemoryConflictError,
    PhaseClosedError,
    QSMParams,
    SQSMParams,
)


class TestReadLatency:
    def test_read_value_sealed_during_phase(self):
        m = QSM()
        m.load([7])
        with m.phase() as ph:
            h = ph.read(0, 0)
            with pytest.raises(PhaseClosedError):
                _ = h.value
        assert h.value == 7

    def test_cannot_write_same_phase_read_value(self):
        m = QSM()
        m.load([7])
        with pytest.raises(PhaseClosedError):
            with m.phase() as ph:
                h = ph.read(0, 0)
                ph.write(1, 5, h)

    def test_resolved_handle_unwrapped_on_write(self):
        m = QSM()
        m.load([7])
        with m.phase() as ph:
            h = ph.read(0, 0)
        with m.phase() as ph:
            ph.write(0, 5, h)  # resolved handle from a previous phase: ok
        assert m.peek(5) == 7

    def test_read_sees_pre_phase_value(self):
        m = QSM()
        m.load([1])
        with m.phase() as ph:
            ph.write(0, 1, 99)
            h = ph.read(1, 0)
        assert h.value == 1
        # A read in the NEXT phase sees the write.
        with m.phase() as ph:
            h2 = ph.read(0, 1)
        assert h2.value == 99


class TestConflicts:
    def test_read_then_write_same_cell_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.read(0, 3)
                ph.write(1, 3, "x")

    def test_write_then_read_same_cell_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.write(0, 3, "x")
                ph.read(1, 3)

    def test_concurrent_reads_allowed(self):
        m = QSM()
        m.load([5])
        with m.phase() as ph:
            hs = [ph.read(i, 0) for i in range(4)]
        assert [h.value for h in hs] == [5, 5, 5, 5]

    def test_concurrent_writes_allowed(self):
        m = QSM()
        with m.phase() as ph:
            for i in range(4):
                ph.write(i, 0, i)
        assert m.peek(0) in (0, 1, 2, 3)

    def test_machine_usable_after_aborted_phase(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.write(0, 0, 1)
        with m.phase() as ph:
            ph.write(0, 1, "ok")
        assert m.peek(1) == "ok"

    def test_nested_phase_rejected(self):
        m = QSM()
        ph = m.phase()
        with pytest.raises(PhaseClosedError):
            m.phase()
        with ph:
            pass


class TestValidation:
    def test_processor_bound_enforced(self):
        m = QSM(num_processors=2)
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.read(2, 0)

    def test_memory_bound_enforced(self):
        m = QSM(memory_size=4)
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.write(0, 4, 1)

    def test_negative_processor_rejected(self):
        m = QSM()
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.local(-1)

    def test_bool_is_not_a_processor_id(self):
        m = QSM()
        with pytest.raises(TypeError):
            with m.phase() as ph:
                ph.local(True)

    def test_negative_ops_rejected(self):
        m = QSM()
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.local(0, -1)

    def test_operations_after_commit_rejected(self):
        m = QSM()
        with m.phase() as ph:
            ph.local(0, 1)
        with pytest.raises(PhaseClosedError):
            ph.local(0, 1)


class TestAccounting:
    def test_time_accumulates(self):
        m = QSM(QSMParams(g=3))
        with m.phase() as ph:
            ph.write(0, 0, 1)  # cost 3
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(1, 0)  # m_rw=1, kappa=2: cost max(3, 2) = 3
        assert m.time == 6
        assert m.phase_count == 2

    def test_history_records(self):
        m = QSM()
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.write(1, 2, "x")
        rec = m.history[0]
        assert rec.reads_per_proc == {0: 2}
        assert rec.writes_per_proc == {1: 1}
        assert rec.read_queue == {0: 1, 1: 1}
        assert rec.write_queue == {2: 1}

    def test_memory_in_use(self):
        m = QSM()
        m.load([1, 2, 3])
        assert m.memory_in_use == 3

    def test_snapshots_recorded_when_enabled(self):
        m = QSM(record_snapshots=True)
        with m.phase() as ph:
            ph.write(0, 0, "a")
        with m.phase() as ph:
            ph.write(0, 1, "b")
        assert m.snapshots == [{0: "a"}, {0: "a", 1: "b"}]

    def test_traces_recorded_when_enabled(self):
        m = QSM(record_trace=True)
        m.load([9])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.write(1, 1, "w")
        t = m.traces[0]
        assert t.reads == {0: (0,)}
        assert t.writes == {1: ((1, "w"),)}

    def test_traces_cover_block_operations(self):
        m = QSM(record_trace=True)
        m.load([9, 8])
        with m.phase() as ph:
            ph.read_block(0, [0, 1])
            ph.write_block(1, [(2, "a"), (3, "b")])
            ph.write(2, 3, "c")  # collides with the block write of cell 3
        t = m.traces[0]
        assert t.reads == {0: (0, 1)}
        assert t.writes[1] == ((2, "a"), (3, "b"))
        assert t.writes[2] == ((3, "c"),)


class TestContentionAccounting:
    """Queues count *distinct processors* per cell (Section 2.1), so a
    processor issuing two accesses of one cell contributes 1 to kappa —
    while both requests still count toward its own m_rw."""

    def test_duplicate_reads_by_one_proc_count_once(self):
        m = QSM()
        m.load([5])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 0)
        rec = m.history[0]
        assert rec.reads_per_proc == {0: 2}  # raw requests feed m_rw
        assert rec.read_queue == {0: 1}  # one distinct processor
        assert rec.kappa == 1

    def test_duplicate_writes_by_one_proc_count_once(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(0, 3, "a")
            ph.write(0, 3, "b")
        rec = m.history[0]
        assert rec.writes_per_proc == {0: 2}
        assert rec.write_queue == {3: 1}
        assert rec.kappa == 1

    def test_mixed_duplicate_and_distinct_writers(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(0, 3, "a")
            ph.write(0, 3, "b")
            ph.write(1, 3, "c")
        assert m.history[0].write_queue == {3: 2}

    def test_duplicate_block_reads_count_once(self):
        m = QSM()
        m.load([5])
        with m.phase() as ph:
            ph.read_block(0, [0, 0, 0])
        rec = m.history[0]
        assert rec.reads_per_proc == {0: 3}
        assert rec.read_queue == {0: 1}

    def test_kappa_regression_qsm_cost(self):
        # Four processors each read cell 0 twice: kappa must be 4 (distinct
        # processors), not 8 (raw requests).  g=1 makes kappa the dominant
        # term, so a miscount would show directly in the phase cost.
        m = QSM(QSMParams(g=1))
        m.load([5])
        with m.phase() as ph:
            for proc in range(4):
                ph.read(proc, 0)
                ph.read(proc, 0)
        assert m.history[0].kappa == 4
        assert m.phase_costs == [4.0]

    def test_kappa_regression_sqsm_cost(self):
        m = SQSM(SQSMParams(g=3))
        m.load([5])
        with m.phase() as ph:
            for proc in range(4):
                ph.read(proc, 0)
                ph.read(proc, 0)
        # max(m_op, g*m_rw, g*kappa) = max(0, 6, 12), not 24.
        assert m.phase_costs == [12.0]

    def test_kappa_regression_gsm_big_steps(self):
        m = GSM(GSMParams(alpha=2, beta=2))
        m.load_packed([5])
        with m.phase() as ph:
            for proc in range(4):
                ph.read(proc, 0)
                ph.read(proc, 0)
        # b = max(ceil(2/2), ceil(4/2)) = 2 big-steps, not ceil(8/2) = 4.
        assert m.big_steps == 2


class TestBlockReads:
    def test_values_resolve_in_request_order(self):
        m = QSM()
        m.load([10, 11, 12])
        with m.phase() as ph:
            h = ph.read_block(0, [2, 0, 1])
            with pytest.raises(PhaseClosedError):
                _ = h.values
        assert h.values == [12, 10, 11]
        assert len(h) == 3

    def test_equivalent_to_scalar_loop(self):
        scalar, block = QSM(), QSM()
        for m in (scalar, block):
            m.load([1, 2, 3, 4])
        with scalar.phase() as ph:
            hs = [ph.read(0, a) for a in (0, 1)] + [ph.read(1, a) for a in (2, 3)]
        with block.phase() as ph:
            b0 = ph.read_block(0, [0, 1])
            b1 = ph.read_block(1, [2, 3])
        assert [h.value for h in hs] == b0.values + b1.values
        assert scalar.history == block.history
        assert scalar.phase_costs == block.phase_costs

    def test_empty_block_is_a_no_op(self):
        m = QSM()
        with m.phase() as ph:
            h = ph.read_block(0, [])
            ph.local(0, 1)
        assert h.values == []
        assert m.history[0].reads_per_proc == {}

    def test_conflict_with_write_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.write(0, 1, "x")
                ph.read_block(1, [0, 1])

    def test_bad_address_type_rejected(self):
        m = QSM()
        with pytest.raises(TypeError):
            with m.phase() as ph:
                ph.read_block(0, [0, "nope"])

    def test_address_bounds_enforced(self):
        m = QSM(memory_size=4)
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.read_block(0, [0, 4])
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.read_block(0, [-1, 2])


class TestBlockWrites:
    def test_equivalent_to_scalar_loop(self):
        scalar, block = QSM(seed=3), QSM(seed=3)
        items = [(5, "a"), (6, "b"), (7, "c")]
        with scalar.phase() as ph:
            for addr, value in items:
                ph.write(0, addr, value)
        with block.phase() as ph:
            ph.write_block(0, items)
        assert scalar._memory == block._memory
        assert scalar.history == block.history
        assert scalar.phase_costs == block.phase_costs

    def test_collision_with_scalar_write_arbitrates(self):
        m = QSM()
        with m.phase() as ph:
            ph.write_block(0, [(2, "block")])
            ph.write(1, 2, "scalar")
        assert m.history[0].write_queue == {2: 2}
        assert m.peek(2) in ("block", "scalar")

    def test_duplicate_addresses_within_block(self):
        # Duplicates inside one block collide like the scalar loop: same
        # proc, so the queue stays 1, and one of the values lands.
        m = QSM()
        with m.phase() as ph:
            ph.write_block(0, [(3, "x"), (3, "y")])
        rec = m.history[0]
        assert rec.writes_per_proc == {0: 2}
        assert rec.write_queue == {3: 1}
        assert m.peek(3) in ("x", "y")

    def test_overlapping_blocks_from_two_procs(self):
        m = QSM()
        with m.phase() as ph:
            ph.write_block(0, [(0, "a0"), (1, "a1")])
            ph.write_block(1, [(1, "b1"), (2, "b2")])
        rec = m.history[0]
        assert rec.write_queue == {0: 1, 1: 2, 2: 1}
        assert m.peek(0) == "a0"
        assert m.peek(1) in ("a1", "b1")
        assert m.peek(2) == "b2"

    def test_conflict_with_read_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.read(0, 6)
                ph.write_block(1, [(5, "v"), (6, "w")])

    def test_sealed_handle_value_rejected(self):
        m = QSM()
        m.load([9])
        with pytest.raises(PhaseClosedError):
            with m.phase() as ph:
                h = ph.read(0, 0)
                ph.write_block(1, [(5, h)])

    def test_resolved_handle_unwrapped(self):
        m = QSM()
        m.load([9])
        with m.phase() as ph:
            h = ph.read(0, 0)
        with m.phase() as ph:
            ph.write_block(0, [(5, h)])
        assert m.peek(5) == 9

    def test_tuple_values_survive(self):
        # Tuple payloads must not be confused with internal bookkeeping.
        m = QSM()
        with m.phase() as ph:
            ph.write_block(0, [(0, (1, 2)), (1, ("proc", "value"))])
        assert m.peek(0) == (1, 2)
        assert m.peek(1) == ("proc", "value")

    def test_malformed_pair_aborts_phase(self):
        m = QSM()
        with pytest.raises((TypeError, ValueError)):
            with m.phase() as ph:
                ph.write_block(0, [(0, "a"), (1, "b", "extra")])
        with m.phase() as ph:
            ph.write(0, 9, "ok")  # machine still usable
        assert m.peek(9) == "ok"

    def test_bad_address_in_block_rejected(self):
        m = QSM(memory_size=8)
        with pytest.raises(TypeError):
            with m.phase() as ph:
                ph.write_block(0, [(0, "a"), ("x", "b")])
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.write_block(0, [(0, "a"), (8, "b")])

    def test_empty_block_is_a_no_op(self):
        m = QSM()
        with m.phase() as ph:
            ph.write_block(0, [])
            ph.local(0, 1)
        assert m.history[0].writes_per_proc == {}

    def test_gsm_strong_queuing_collects_block_values(self):
        m = GSM()
        with m.phase() as ph:
            ph.write_block(0, [(0, "a")])
            ph.write(1, 0, "b")
        assert set(m.peek(0)) == {"a", "b"}


class TestHighWaterAllocator:
    def test_next_free_address_tracks_pokes(self):
        m = QSM()
        assert m.next_free_address() == 0
        m.poke(41, "x")
        assert m.next_free_address() == 42
        m.poke(7, "y")  # lower address: the mark must not move back
        assert m.next_free_address() == 42

    def test_next_free_address_tracks_phase_writes(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(0, 99, "v")
        assert m.next_free_address() == 100
        with m.phase() as ph:
            ph.write_block(0, [(200, "a"), (150, "b")])
        assert m.next_free_address() == 201

    def test_matches_max_of_memory(self):
        m = QSM()
        m.load([1, 2, 3], base=10)
        with m.phase() as ph:
            ph.write_block(0, [(4, "x")])
        assert m.next_free_address() == max(m._memory) + 1
