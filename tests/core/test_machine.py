"""Shared-memory machine semantics: read latency, conflicts, accounting."""

import pytest

from repro.core import (
    GSM,
    QSM,
    MemoryConflictError,
    PhaseClosedError,
    QSMParams,
)


class TestReadLatency:
    def test_read_value_sealed_during_phase(self):
        m = QSM()
        m.load([7])
        with m.phase() as ph:
            h = ph.read(0, 0)
            with pytest.raises(PhaseClosedError):
                _ = h.value
        assert h.value == 7

    def test_cannot_write_same_phase_read_value(self):
        m = QSM()
        m.load([7])
        with pytest.raises(PhaseClosedError):
            with m.phase() as ph:
                h = ph.read(0, 0)
                ph.write(1, 5, h)

    def test_resolved_handle_unwrapped_on_write(self):
        m = QSM()
        m.load([7])
        with m.phase() as ph:
            h = ph.read(0, 0)
        with m.phase() as ph:
            ph.write(0, 5, h)  # resolved handle from a previous phase: ok
        assert m.peek(5) == 7

    def test_read_sees_pre_phase_value(self):
        m = QSM()
        m.load([1])
        with m.phase() as ph:
            ph.write(0, 1, 99)
            h = ph.read(1, 0)
        assert h.value == 1
        # A read in the NEXT phase sees the write.
        with m.phase() as ph:
            h2 = ph.read(0, 1)
        assert h2.value == 99


class TestConflicts:
    def test_read_then_write_same_cell_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.read(0, 3)
                ph.write(1, 3, "x")

    def test_write_then_read_same_cell_rejected(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.write(0, 3, "x")
                ph.read(1, 3)

    def test_concurrent_reads_allowed(self):
        m = QSM()
        m.load([5])
        with m.phase() as ph:
            hs = [ph.read(i, 0) for i in range(4)]
        assert [h.value for h in hs] == [5, 5, 5, 5]

    def test_concurrent_writes_allowed(self):
        m = QSM()
        with m.phase() as ph:
            for i in range(4):
                ph.write(i, 0, i)
        assert m.peek(0) in (0, 1, 2, 3)

    def test_machine_usable_after_aborted_phase(self):
        m = QSM()
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.read(0, 0)
                ph.write(0, 0, 1)
        with m.phase() as ph:
            ph.write(0, 1, "ok")
        assert m.peek(1) == "ok"

    def test_nested_phase_rejected(self):
        m = QSM()
        ph = m.phase()
        with pytest.raises(PhaseClosedError):
            m.phase()
        with ph:
            pass


class TestValidation:
    def test_processor_bound_enforced(self):
        m = QSM(num_processors=2)
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.read(2, 0)

    def test_memory_bound_enforced(self):
        m = QSM(memory_size=4)
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.write(0, 4, 1)

    def test_negative_processor_rejected(self):
        m = QSM()
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.local(-1)

    def test_bool_is_not_a_processor_id(self):
        m = QSM()
        with pytest.raises(TypeError):
            with m.phase() as ph:
                ph.local(True)

    def test_negative_ops_rejected(self):
        m = QSM()
        with pytest.raises(ValueError):
            with m.phase() as ph:
                ph.local(0, -1)

    def test_operations_after_commit_rejected(self):
        m = QSM()
        with m.phase() as ph:
            ph.local(0, 1)
        with pytest.raises(PhaseClosedError):
            ph.local(0, 1)


class TestAccounting:
    def test_time_accumulates(self):
        m = QSM(QSMParams(g=3))
        with m.phase() as ph:
            ph.write(0, 0, 1)  # cost 3
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(1, 0)  # m_rw=1, kappa=2: cost max(3, 2) = 3
        assert m.time == 6
        assert m.phase_count == 2

    def test_history_records(self):
        m = QSM()
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.write(1, 2, "x")
        rec = m.history[0]
        assert rec.reads_per_proc == {0: 2}
        assert rec.writes_per_proc == {1: 1}
        assert rec.read_queue == {0: 1, 1: 1}
        assert rec.write_queue == {2: 1}

    def test_memory_in_use(self):
        m = QSM()
        m.load([1, 2, 3])
        assert m.memory_in_use == 3

    def test_snapshots_recorded_when_enabled(self):
        m = QSM(record_snapshots=True)
        with m.phase() as ph:
            ph.write(0, 0, "a")
        with m.phase() as ph:
            ph.write(0, 1, "b")
        assert m.snapshots == [{0: "a"}, {0: "a", 1: "b"}]

    def test_traces_recorded_when_enabled(self):
        m = QSM(record_trace=True)
        m.load([9])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.write(1, 1, "w")
        t = m.traces[0]
        assert t.reads == {0: (0,)}
        assert t.writes == {1: ((1, "w"),)}
