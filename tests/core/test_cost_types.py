"""Cost-term type stability: every term value is a float (bugfix sweep).

``params.g * record.m_rw`` used to stay ``int`` when ``g`` was spelled as
an int while ``m_op``/``kappa`` were coerced to float — so two numerically
identical runs could serialize different JSON and compare unequal after a
round-trip.  Every ``*_cost_terms`` mapping and every ``*_phase_cost``
return is now normalized to ``float``, on both engines.
"""

import json

import pytest

from repro.core import (
    BSP,
    GSM,
    QSM,
    QSMGD,
    SQSM,
    BSPParams,
    GSMParams,
    QSMParams,
    SQSMParams,
    run_phase,
    run_superstep,
    LocalOp,
    SendOp,
    WriteBlockOp,
    WriteOp,
)
from repro.core.cost import (
    bsp_cost_terms,
    bsp_superstep_cost,
    gsm_cost_terms,
    gsm_phase_cost,
    qsm_cost_terms,
    qsm_phase_cost,
    sqsm_cost_terms,
    sqsm_phase_cost,
)
from repro.core.phase import PhaseRecord, SuperstepRecord
from repro.core.qsm_gd import QSMGDParams, qsm_gd_cost_terms, qsm_gd_phase_cost

RECORD = PhaseRecord(
    index=0,
    reads_per_proc={0: 3, 1: 2},
    writes_per_proc={0: 1},
    ops_per_proc={1: 5},
    read_queue={4: 2, 5: 1},
    write_queue={9: 1},
)
SS_RECORD = SuperstepRecord(
    index=0,
    work_per_proc={0: 4},
    sent_per_proc={0: 3},
    received_per_proc={1: 3},
)

# Integer-spelled gap parameters: the historically offending case.
TERM_CASES = [
    pytest.param(lambda: qsm_cost_terms(RECORD, QSMParams(g=2)), id="qsm"),
    pytest.param(
        lambda: qsm_cost_terms(
            RECORD, QSMParams(g=2, unit_time_concurrent_reads=True)
        ),
        id="qsm-utcr",
    ),
    pytest.param(lambda: sqsm_cost_terms(RECORD, SQSMParams(g=3)), id="sqsm"),
    pytest.param(
        lambda: gsm_cost_terms(RECORD, GSMParams(alpha=2, beta=2)), id="gsm"
    ),
    pytest.param(
        lambda: qsm_gd_cost_terms(RECORD, QSMGDParams(g=2, d=3)), id="qsm-gd"
    ),
    pytest.param(
        lambda: bsp_cost_terms(SS_RECORD, BSPParams(g=2, L=4)), id="bsp"
    ),
]

COST_CASES = [
    pytest.param(lambda: qsm_phase_cost(RECORD, QSMParams(g=2)), id="qsm"),
    pytest.param(lambda: sqsm_phase_cost(RECORD, SQSMParams(g=3)), id="sqsm"),
    pytest.param(
        lambda: gsm_phase_cost(RECORD, GSMParams(alpha=2, beta=2)), id="gsm"
    ),
    pytest.param(
        lambda: qsm_gd_phase_cost(RECORD, QSMGDParams(g=2, d=3)), id="qsm-gd"
    ),
    pytest.param(
        lambda: bsp_superstep_cost(SS_RECORD, BSPParams(g=2, L=4)), id="bsp"
    ),
]


class TestTermsAreFloat:
    @pytest.mark.parametrize("terms", TERM_CASES)
    def test_every_term_value_is_float(self, terms):
        assert all(type(v) is float for v in terms().values()), terms()

    @pytest.mark.parametrize("cost", COST_CASES)
    def test_cost_is_float(self, cost):
        assert type(cost()) is float

    @pytest.mark.parametrize("terms", TERM_CASES)
    def test_int_and_float_parameter_spellings_serialize_identically(self, terms):
        # The regression that motivated the fix: g=2 vs g=2.0 must produce
        # byte-identical JSON.
        assert json.dumps(terms()) == json.dumps(
            {k: float(v) for k, v in terms().items()}
        )


class TestEnginesProduceIdenticalTerms:
    def test_reference_and_vector_term_dicts_identical(self):
        pytest.importorskip("numpy")
        prog = [
            WriteOp(0, 3, 10),
            WriteBlockOp(1, range(4, 9), [1, 2, 3, 4, 5]),
            LocalOp(2, 6),
        ]
        machines = [
            lambda eng: QSM(QSMParams(g=2), record_costs=True, engine=eng),
            lambda eng: SQSM(SQSMParams(g=3), record_costs=True, engine=eng),
            lambda eng: GSM(GSMParams(alpha=2), record_costs=True, engine=eng),
            lambda eng: QSMGD(QSMGDParams(g=2, d=3), record_costs=True, engine=eng),
        ]
        for make in machines:
            ref, vec = make("reference"), make("vector")
            run_phase(ref, prog)
            run_phase(vec, prog)
            (ref_rec,), (vec_rec,) = ref.cost_records, vec.cost_records
            assert ref_rec.terms == vec_rec.terms
            assert [type(v) for v in ref_rec.terms.values()] == [
                type(v) for v in vec_rec.terms.values()
            ]
            assert all(type(v) is float for v in vec_rec.terms.values())
            assert ref_rec.dominant == vec_rec.dominant
            assert ref_rec.cost == vec_rec.cost

    def test_bsp_term_dicts_identical(self):
        pytest.importorskip("numpy")
        def make(eng):
            return BSP(4, BSPParams(g=2, L=4), record_costs=True, engine=eng)

        ref, vec = make("reference"), make("vector")
        prog = [SendOp(0, 1, "x"), SendOp(2, 1, "y")]
        run_superstep(ref, prog)
        run_superstep(vec, prog)
        (ref_rec,), (vec_rec,) = ref.cost_records, vec.cost_records
        assert ref_rec.terms == vec_rec.terms
        assert all(type(v) is float for v in vec_rec.terms.values())
        assert ref_rec.dominant == vec_rec.dominant
