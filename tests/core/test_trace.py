"""PhaseTrace extraction and queries."""

from repro.core import GSM, QSM


class TestPhaseTrace:
    def _traced_machine(self):
        m = QSM(record_trace=True)
        m.load([10, 20, 30])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.read(1, 1)
            ph.write(2, 5, "x")
            ph.write(3, 5, "y")
        return m

    def test_reads_by_processor(self):
        t = self._traced_machine().traces[0]
        assert t.reads == {0: (0, 1), 1: (1,)}

    def test_writes_by_processor(self):
        t = self._traced_machine().traces[0]
        assert t.writes == {2: ((5, "x"),), 3: ((5, "y"),)}

    def test_cells_read_sorted(self):
        t = self._traced_machine().traces[0]
        assert t.cells_read() == (0, 1)

    def test_cells_written(self):
        t = self._traced_machine().traces[0]
        assert t.cells_written() == (5,)

    def test_readers_of(self):
        t = self._traced_machine().traces[0]
        assert t.readers_of(1) == (0, 1)
        assert t.readers_of(9) == ()

    def test_writers_of(self):
        t = self._traced_machine().traces[0]
        assert t.writers_of(5) == (2, 3)

    def test_no_traces_without_flag(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(0, 0, 1)
        assert m.traces == []

    def test_gsm_traces_work_too(self):
        g = GSM(record_trace=True)
        with g.phase() as ph:
            ph.write(0, 0, "a")
            ph.write(1, 0, "b")
        assert g.traces[0].writers_of(0) == (0, 1)
