"""PhaseTrace extraction and queries."""

from repro.core import GSM, QSM


class TestPhaseTrace:
    def _traced_machine(self):
        m = QSM(record_trace=True)
        m.load([10, 20, 30])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.read(1, 1)
            ph.write(2, 5, "x")
            ph.write(3, 5, "y")
        return m

    def test_reads_by_processor(self):
        t = self._traced_machine().traces[0]
        assert t.reads == {0: (0, 1), 1: (1,)}

    def test_writes_by_processor(self):
        t = self._traced_machine().traces[0]
        assert t.writes == {2: ((5, "x"),), 3: ((5, "y"),)}

    def test_cells_read_sorted(self):
        t = self._traced_machine().traces[0]
        assert t.cells_read() == (0, 1)

    def test_cells_written(self):
        t = self._traced_machine().traces[0]
        assert t.cells_written() == (5,)

    def test_readers_of(self):
        t = self._traced_machine().traces[0]
        assert t.readers_of(1) == (0, 1)
        assert t.readers_of(9) == ()

    def test_writers_of(self):
        t = self._traced_machine().traces[0]
        assert t.writers_of(5) == (2, 3)

    def test_no_traces_without_flag(self):
        m = QSM()
        with m.phase() as ph:
            ph.write(0, 0, 1)
        assert m.traces == []

    def test_gsm_traces_work_too(self):
        g = GSM(record_trace=True)
        with g.phase() as ph:
            ph.write(0, 0, "a")
            ph.write(1, 0, "b")
        assert g.traces[0].writers_of(0) == (0, 1)


class TestLazyAddressIndices:
    def _trace(self):
        m = QSM(record_trace=True)
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
            ph.read(1, 1)
        with m.phase() as ph:
            ph.write(2, 1, "x")
            ph.write(3, 1, "y")
        return m.traces

    def test_index_built_once_and_cached(self):
        t = self._trace()[0]
        assert "_readers_by_addr" not in t.__dict__
        first = t.readers_of(1)
        assert "_readers_by_addr" in t.__dict__
        index = t.__dict__["_readers_by_addr"]
        assert t.readers_of(0) == (0,)
        assert t.__dict__["_readers_by_addr"] is index  # not rebuilt
        assert first == (0, 1)

    def test_writer_index_cached_independently(self):
        t = self._trace()[1]
        assert t.writers_of(1) == (2, 3)
        assert "_writers_by_addr" in t.__dict__
        assert "_readers_by_addr" not in t.__dict__

    def test_cache_does_not_break_equality(self):
        a, b = self._trace()[0], self._trace()[0]
        assert a == b
        a.readers_of(1)  # populate a's cache only
        assert a == b
