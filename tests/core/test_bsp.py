"""BSP semantics: scatter, message delivery, superstep costing."""

import pytest

from repro.core import BSP, BSPParams, PhaseClosedError


class TestScatter:
    def test_uniform_partition_sizes(self):
        b = BSP(4)
        b.scatter(list(range(10)))
        sizes = [len(b.store[i]["input"]) for i in range(4)]
        # ceil(10/4)=3 or floor=2, per Section 2.1.
        assert sorted(sizes) == [2, 2, 3, 3]
        assert sum(sizes) == 10

    def test_offsets_recorded(self):
        b = BSP(3)
        b.scatter(list("abcdefg"))
        offsets = [b.store[i][("input", "offset")] for i in range(3)]
        assert offsets == [0, 3, 5]

    def test_gather_roundtrip(self):
        b = BSP(5)
        data = list(range(13))
        b.scatter(data)
        assert b.gather() == data

    def test_fewer_items_than_components(self):
        b = BSP(8)
        b.scatter([1, 2])
        assert b.gather() == [1, 2]
        assert len(b.store[7]["input"]) == 0


class TestMessaging:
    def test_delivery_next_superstep_only(self):
        b = BSP(2)
        with b.superstep() as ss:
            ss.send(0, 1, "hello")
        assert b.inbox(1) == [(0, "hello")]
        with b.superstep() as ss:
            ss.local(0, 1)
        assert b.inbox(1) == []  # inboxes swap every superstep

    def test_deterministic_delivery_order(self):
        b = BSP(3)
        with b.superstep() as ss:
            ss.send(2, 0, "from2")
            ss.send(1, 0, "from1a")
            ss.send(1, 0, "from1b")
        assert b.inbox(0) == [(1, "from1a"), (1, "from1b"), (2, "from2")]

    def test_self_send_allowed(self):
        b = BSP(2)
        with b.superstep() as ss:
            ss.send(0, 0, "note")
        assert b.inbox(0) == [(0, "note")]

    def test_component_bounds(self):
        b = BSP(2)
        with pytest.raises(ValueError):
            with b.superstep() as ss:
                ss.send(0, 2, "x")

    def test_nested_superstep_rejected(self):
        b = BSP(2)
        ss = b.superstep()
        with pytest.raises(PhaseClosedError):
            b.superstep()
        with ss:
            pass

    def test_usable_after_aborted_superstep(self):
        b = BSP(2)
        with pytest.raises(ValueError):
            with b.superstep() as ss:
                ss.send(0, 5, "bad")
        with b.superstep() as ss:
            ss.send(0, 1, "good")
        assert b.inbox(1) == [(0, "good")]


class TestCosting:
    def test_latency_floor(self):
        b = BSP(2, BSPParams(g=2, L=40))
        with b.superstep() as ss:
            ss.local(0, 3)
        assert b.step_costs == [40.0]

    def test_h_relation_cost(self):
        b = BSP(4, BSPParams(g=3, L=3))
        with b.superstep() as ss:
            for dst in range(1, 4):
                ss.send(0, dst, "m")  # s_0 = 3
        assert b.step_costs == [9.0]  # g*h = 3*3

    def test_receive_side_counts(self):
        b = BSP(4, BSPParams(g=2, L=2))
        with b.superstep() as ss:
            for src in range(1, 4):
                ss.send(src, 0, "m")  # r_0 = 3
        assert b.step_costs == [6.0]

    def test_time_accumulates(self):
        b = BSP(2, BSPParams(g=1, L=5))
        for _ in range(3):
            with b.superstep() as ss:
                ss.local(0, 1)
        assert b.time == 15.0
        assert b.superstep_count == 3


class TestCommitFailure:
    def test_commit_raise_releases_the_machine(self, monkeypatch):
        # A superstep whose *commit* raises (not just whose body aborts) must
        # still release the step lock, or every later superstep dies with
        # PhaseClosedError.
        import repro.core.bsp as bsp_mod

        b = BSP(2, BSPParams(g=1, L=1))

        def boom(record, params):
            raise RuntimeError("cost model exploded")

        monkeypatch.setattr(bsp_mod, "bsp_superstep_cost", boom)
        with pytest.raises(RuntimeError):
            with b.superstep() as ss:
                ss.send(0, 1, "m")
        monkeypatch.undo()

        with b.superstep() as ss:
            ss.send(0, 1, "after")
        assert b.inbox(1) == [(0, "after")]
        assert b.superstep_count == 1  # the failed superstep never committed


class TestSendBlock:
    def test_equivalent_to_scalar_sends(self):
        scalar, block = BSP(3, BSPParams(g=2, L=2)), BSP(3, BSPParams(g=2, L=2))
        msgs = [(1, "a"), (2, "b"), (1, "c")]
        with scalar.superstep() as ss:
            for dst, payload in msgs:
                ss.send(0, dst, payload)
        with block.superstep() as ss:
            ss.send_block(0, msgs)
        assert scalar.history == block.history
        assert scalar.step_costs == block.step_costs
        assert all(scalar.inbox(i) == block.inbox(i) for i in range(3))

    def test_preserves_per_sender_issue_order(self):
        b = BSP(2)
        with b.superstep() as ss:
            ss.send_block(1, [(0, "first"), (0, "second")])
            ss.send_block(0, [(0, "self1")])
        # Delivery is sorted by sender, ties in issue order.
        assert b.inbox(0) == [(0, "self1"), (1, "first"), (1, "second")]

    def test_empty_block_is_a_no_op(self):
        b = BSP(2)
        with b.superstep() as ss:
            ss.send_block(0, [])
            ss.local(0, 1)
        assert b.history[0].sent_per_proc == {}

    def test_bad_destination_type_rejected(self):
        b = BSP(2)
        with pytest.raises(TypeError):
            with b.superstep() as ss:
                ss.send_block(0, [(1, "ok"), ("x", "bad")])

    def test_destination_out_of_range_rejected(self):
        b = BSP(2)
        with pytest.raises(ValueError):
            with b.superstep() as ss:
                ss.send_block(0, [(1, "ok"), (2, "bad")])

    def test_malformed_row_rejected(self):
        b = BSP(4)
        with pytest.raises((TypeError, ValueError)):
            with b.superstep() as ss:
                ss.send_block(0, [(1, "ok"), (2, "bad", "extra")])
        with b.superstep() as ss:
            ss.send(0, 1, "still works")
        assert b.inbox(1) == [(0, "still works")]
