"""Empty-superstep / empty-phase floors (bugfix-sweep audit, pinned).

``SuperstepRecord.h`` floors at **0** while ``PhaseRecord.m_rw`` and
``PhaseRecord.kappa`` floor at **1** — an intentional asymmetry from the
paper's definitions (a QSM phase always charges at least one r/w slot;
a BSP superstep that routes nothing has ``h = 0`` and is charged the
latency floor ``L``).  The sweep audited every consumer (no division by
``h`` exists anywhere), so the deliverable is pinning the semantics:
an empty superstep costs exactly ``L`` with dominant term ``"L"``.
"""

import pytest

from repro.core import BSP, QSM, BSPParams, QSMParams
from repro.core.cost import bsp_cost_terms, bsp_superstep_cost, qsm_cost_terms
from repro.core.phase import PhaseRecord, SuperstepRecord
from repro.obs.records import dominant_of


def _empty_superstep_record():
    return SuperstepRecord(
        index=0, work_per_proc={}, sent_per_proc={}, received_per_proc={}
    )


class TestEmptySuperstepFloors:
    def test_h_floors_at_zero(self):
        assert _empty_superstep_record().h == 0

    def test_empty_phase_m_rw_and_kappa_floor_at_one(self):
        rec = PhaseRecord(
            index=0,
            reads_per_proc={},
            writes_per_proc={},
            ops_per_proc={},
            read_queue={},
            write_queue={},
        )
        assert rec.m_rw == 1
        assert rec.kappa == 1

    def test_empty_superstep_costs_exactly_L(self):
        rec = _empty_superstep_record()
        params = BSPParams(g=2.0, L=8.0)
        assert bsp_superstep_cost(rec, params) == 8.0

    def test_empty_superstep_dominant_term_is_L(self):
        rec = _empty_superstep_record()
        terms = bsp_cost_terms(rec, BSPParams(g=2.0, L=8.0))
        assert terms == {"L": 8.0, "g*h": 0.0, "w": 0.0}
        assert dominant_of(terms) == "L"

    def test_empty_phase_charges_grw_floor_not_zero(self):
        # The m_rw floor means an empty QSM phase still charges g*1.
        rec = PhaseRecord(
            index=0,
            reads_per_proc={},
            writes_per_proc={},
            ops_per_proc={},
            read_queue={},
            write_queue={},
        )
        terms = qsm_cost_terms(rec, QSMParams(g=3.0))
        assert terms["g*m_rw"] == 3.0
        assert terms["kappa"] == 1.0


@pytest.mark.parametrize("engine", ["reference", "vector"])
class TestEmptySuperstepEndToEnd:
    def test_committed_empty_superstep(self, engine):
        if engine == "vector":
            pytest.importorskip("numpy")
        bsp = BSP(4, BSPParams(g=2.0, L=8.0), record_costs=True, engine=engine)
        with bsp.superstep():
            pass
        (rec,) = bsp.history
        assert rec.h == 0
        assert rec.w == 0
        assert bsp.step_costs == [8.0]
        assert bsp.time == 8.0
        (cost_rec,) = bsp.cost_records
        assert cost_rec.cost == 8.0
        assert cost_rec.dominant == "L"
        assert all(bsp.inbox(i) == [] for i in range(4))

    def test_committed_empty_phase(self, engine):
        if engine == "vector":
            pytest.importorskip("numpy")
        machine = QSM(QSMParams(g=3.0), record_costs=True, engine=engine)
        with machine.phase():
            pass
        (rec,) = machine.history
        assert rec.m_rw == 1
        assert rec.kappa == 1
        assert machine.phase_costs == [3.0]
        (cost_rec,) = machine.cost_records
        assert cost_rec.dominant == "g*m_rw"
