"""PhaseRecord / SuperstepRecord aggregate semantics (Section 2 definitions)."""

from repro.core.phase import PhaseRecord, SuperstepRecord, merge_counts


def record(reads=None, writes=None, ops=None, rq=None, wq=None, index=0):
    return PhaseRecord(
        index=index,
        reads_per_proc=reads or {},
        writes_per_proc=writes or {},
        ops_per_proc=ops or {},
        read_queue=rq or {},
        write_queue=wq or {},
    )


class TestPhaseRecord:
    def test_empty_phase_has_contention_one(self):
        # "A phase with no reads or writes is defined to have maximum
        # contention one."
        assert record().kappa == 1

    def test_empty_phase_m_rw_is_one(self):
        assert record().m_rw == 1

    def test_m_rw_is_max_of_reads_and_writes_separately(self):
        r = record(reads={0: 3, 1: 1}, writes={0: 2, 2: 5})
        assert r.m_rw == 5

    def test_m_op(self):
        r = record(ops={0: 4, 1: 9})
        assert r.m_op == 9

    def test_kappa_takes_read_or_write_queue_max(self):
        r = record(rq={10: 3}, wq={11: 7})
        assert r.kappa == 7

    def test_totals(self):
        r = record(reads={0: 2, 1: 3}, writes={0: 1}, ops={2: 4})
        assert r.total_reads == 5
        assert r.total_writes == 1
        assert r.total_ops == 4

    def test_active_processors_unions_all_activity(self):
        r = record(reads={0: 1}, writes={1: 1}, ops={2: 1, 0: 2})
        assert r.active_processors == 3


class TestSuperstepRecord:
    def test_h_relation(self):
        r = SuperstepRecord(
            index=0,
            work_per_proc={0: 5},
            sent_per_proc={0: 3, 1: 1},
            received_per_proc={2: 4},
        )
        # h = max over processors of max(s_i, r_i) = 4.
        assert r.h == 4

    def test_w(self):
        r = SuperstepRecord(0, {0: 5, 1: 9}, {}, {})
        assert r.w == 9

    def test_empty_superstep(self):
        r = SuperstepRecord(0, {}, {}, {})
        assert r.h == 0
        assert r.w == 0
        assert r.total_messages == 0


class TestMergeCounts:
    def test_merges_keywise(self):
        assert merge_counts({0: 1, 1: 2}, {1: 3, 2: 4}) == {0: 1, 1: 5, 2: 4}

    def test_empty(self):
        assert merge_counts() == {}
