"""Round accounting (Section 2.3): budgets, auditing, linear work."""

import pytest

from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor, linear_work_ratio, round_budget


class TestRoundBudget:
    def test_qsm_budget(self):
        assert round_budget(QSM(QSMParams(g=4)), n=100, p=10) == 40.0

    def test_sqsm_budget(self):
        assert round_budget(SQSM(SQSMParams(g=2)), n=64, p=8) == 16.0

    def test_bsp_budget_includes_latency(self):
        b = BSP(4, BSPParams(g=2, L=30))
        assert round_budget(b, n=40, p=4) == 2 * 10 + 30

    def test_gsm_budget(self):
        g = GSM(GSMParams(alpha=2, beta=4))
        # mu*n/(lam*p) = 4*100/(2*10) = 20.
        assert round_budget(g, n=100, p=10) == 20.0

    def test_constant_scales(self):
        m = QSM(QSMParams(g=1))
        assert round_budget(m, 10, 1, constant=3.0) == 30.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            round_budget(QSM(), 0, 1)
        with pytest.raises(ValueError):
            round_budget(QSM(), 1, 0)


class TestRoundAuditor:
    def test_counts_rounds(self):
        m = QSM(QSMParams(g=1))
        aud = RoundAuditor(m, n=16, p=4)  # budget 4
        for _ in range(3):
            with m.phase() as ph:
                ph.read(0, 0)
        assert aud.audit() == 3
        assert aud.computes_in_rounds

    def test_flags_violation(self):
        m = QSM(QSMParams(g=1))
        aud = RoundAuditor(m, n=8, p=4)  # budget 2
        with m.phase() as ph:
            for a in range(5):
                ph.read(0, a)  # cost 5 > 2
        aud.audit()
        assert not aud.computes_in_rounds
        assert aud.violations[0].cost == 5
        assert "exceeds round budget" in str(aud.violations[0])

    def test_incremental_audit(self):
        m = QSM(QSMParams(g=1))
        aud = RoundAuditor(m, n=16, p=4)
        with m.phase() as ph:
            ph.read(0, 0)
        assert aud.audit() == 1
        with m.phase() as ph:
            ph.read(0, 0)
        assert aud.audit() == 2

    def test_bsp_auditing(self):
        b = BSP(2, BSPParams(g=1, L=4))
        aud = RoundAuditor(b, n=8, p=2)  # budget 4 + 4 = 8
        with b.superstep() as ss:
            ss.local(0, 1)
        assert aud.audit() == 1
        assert aud.computes_in_rounds


class TestLinearWork:
    def test_qsm_linear_work_ratio(self):
        m = QSM(QSMParams(g=2))
        with m.phase() as ph:
            ph.read(0, 0)  # time 2
        # p*T/(g*n) = 4*2/(2*8) = 0.5.
        assert linear_work_ratio(m, n=8, p=4) == 0.5

    def test_gsm_linear_work_ratio(self):
        g = GSM(GSMParams(alpha=1, beta=2))
        with g.phase() as ph:
            ph.write(0, 0, 1)  # time mu=2
        # p*T/(mu*n/lam) = 2*2/(2*8/1) = 0.25.
        assert linear_work_ratio(g, n=8, p=2) == 0.25

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            linear_work_ratio(QSM(), 0, 1)
