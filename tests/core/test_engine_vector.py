"""Unit tests for the vector engine's building blocks.

The bit-equality property suite (``tests/property/test_engine_equivalence.py``)
proves the engines agree end to end; these tests pin the *internals* —
:func:`resolve_engine` selection rules, :class:`CountQueue` Mapping
behaviour, :class:`DenseMemory` lane management, and the sealed-handle
protocol of :class:`VectorBlockReadHandle` — so a future refactor that
breaks one of them fails here with a named component, not deep inside a
shrunk hypothesis example.
"""

import pytest

from repro.core.engine_vector import (
    ENGINE_ENV,
    ENGINES,
    CountQueue,
    DenseMemory,
    have_numpy,
    resolve_engine,
)

np = pytest.importorskip("numpy")


class TestResolveEngine:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == "reference"
        assert resolve_engine(None) == "reference"

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_engine() == "vector"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_engine("reference") == "reference"

    def test_empty_env_means_reference(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine() == "reference"

    @pytest.mark.parametrize("bad", ["fast", "VECTOR", "numpy", " vector"])
    def test_unknown_name_raises(self, bad):
        with pytest.raises(ValueError, match="engine must be one of"):
            resolve_engine(bad)

    def test_engines_tuple(self):
        assert ENGINES == ("reference", "vector")
        assert have_numpy() is True

    def test_machine_constructor_env_fallthrough(self, monkeypatch):
        from repro.core import QSM

        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert QSM().engine == "vector"
        monkeypatch.delenv(ENGINE_ENV)
        assert QSM().engine == "reference"

    def test_numpy_fallback_warns_exactly_once(self, monkeypatch):
        import warnings

        import repro.core.engine_vector as ev

        monkeypatch.setattr(ev, "np", None)
        monkeypatch.setattr(ev, "_numpy_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert ev.resolve_engine("vector") == "reference"
        # Second resolution in the same process stays quiet (a sweep
        # building thousands of machines must not spam the warning).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ev.resolve_engine("vector") == "reference"

    def test_no_warning_when_numpy_present(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_engine("vector") == "vector"

    def test_engine_label_recorded_in_metrics(self):
        from repro.core import QSM
        from repro.obs.metrics import MetricsRegistry
        import repro.obs.metrics as metrics_mod

        registry = MetricsRegistry()
        registry.enable()
        old = metrics_mod.REGISTRY
        metrics_mod.REGISTRY = registry
        try:
            QSM(engine="reference")
            QSM(engine="vector")
        finally:
            metrics_mod.REGISTRY = old
        gauge = registry.gauge("repro_engine_info")
        assert gauge.value(engine="reference", model="QSM") == 1.0
        assert gauge.value(engine="vector", model="QSM") == 1.0


class TestCountQueue:
    def test_range_structure_equals_reference_dict(self):
        q = CountQueue(ranges=(range(2, 5), range(8, 10)))
        ref = {2: 1, 3: 1, 4: 1, 8: 1, 9: 1}
        assert q == ref
        assert ref == q  # reflected
        assert len(q) == 5
        assert dict(q) == ref
        assert q[3] == 1
        assert q.get(7) is None

    def test_extra_scalars_merge(self):
        q = CountQueue(ranges=(range(0, 2),), extra={5: 3})
        assert q == {0: 1, 1: 1, 5: 3}
        assert q.max_value() == 3

    def test_key_count_arrays(self):
        keys = np.array([4, 9, 12], dtype=np.int64)
        counts = np.array([2, 1, 3], dtype=np.int64)
        q = CountQueue(keys=keys, counts=counts)
        assert q == {4: 2, 9: 1, 12: 3}
        assert q.max_value() == 3
        assert q.value_counts() == {2: 1, 1: 1, 3: 1}

    def test_empty_queue(self):
        q = CountQueue()
        assert q == {}
        assert len(q) == 0
        assert q.max_value() == 0
        assert q.value_counts() == {}

    def test_max_value_on_depth_one_ranges(self):
        q = CountQueue(ranges=(range(0, 100),))
        assert q.max_value() == 1
        assert q.value_counts() == {1: 100}

    def test_inequality(self):
        q = CountQueue(ranges=(range(0, 3),))
        assert q != {0: 1, 1: 1}
        assert q != {0: 1, 1: 1, 2: 2}
        assert q != [0, 1, 2]

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(CountQueue())


class TestDenseMemory:
    def test_behaves_as_dict(self):
        mem = DenseMemory()
        mem[3] = 10
        mem[7] = "text"
        mem[9] = (1, 2)
        assert mem == {3: 10, 7: "text", 9: (1, 2)}
        assert {3: 10, 7: "text", 9: (1, 2)} == dict(mem)
        assert len(mem) == 3
        assert mem.get(4) is None
        del mem[7]
        assert mem == {3: 10, 9: (1, 2)}

    def test_int_values_round_trip_as_python_ints(self):
        mem = DenseMemory()
        mem[0] = 5
        assert type(mem[0]) is int
        assert mem[0] == 5

    def test_bool_is_not_coerced_to_int(self):
        # bool is an int subclass; the int64 lane must not launder True
        # into 1.
        mem = DenseMemory()
        mem[1] = True
        assert mem[1] is True
        assert type(mem[1]) is bool

    def test_big_ints_survive(self):
        big = 1 << 80
        mem = DenseMemory()
        mem[2] = big
        assert mem[2] == big

    def test_scatter_gather_int_lane(self):
        mem = DenseMemory()
        span = range(10, 20)
        mem.scatter(span, list(range(10)))
        got = mem.gather(span)
        assert list(got) == list(range(10))
        # int lane: gather returns an int64 array
        assert isinstance(got, np.ndarray)
        assert mem == {a: v for a, v in zip(span, range(10))}

    def test_scatter_object_values_then_gather_lists(self):
        mem = DenseMemory()
        span = range(0, 3)
        mem.scatter(span, ["a", (1, 2), 7])
        got = mem.gather(span)
        assert list(got) == ["a", (1, 2), 7]

    def test_scatter_overwrites_object_with_int(self):
        mem = DenseMemory()
        mem[4] = "old"
        mem.scatter(range(4, 5), [11])
        assert mem[4] == 11
        assert mem == {4: 11}

    def test_gather_missing_cells_yield_none(self):
        mem = DenseMemory()
        mem[1] = 6
        assert list(mem.gather(range(0, 3))) == [None, 6, None]

    def test_overflow_addresses_use_dict(self):
        far = DenseMemory.GROW_LIMIT + 5
        mem = DenseMemory()
        mem[far] = 42
        assert mem[far] == 42
        assert mem == {far: 42}
        del mem[far]
        assert far not in mem

    def test_negative_addresses_use_dict(self):
        mem = DenseMemory()
        mem[-3] = 9
        assert mem[-3] == 9
        assert mem == {-3: 9}


class TestVectorBlockReadHandle:
    def test_resolved_block_read_exposes_addrs_values_array(self):
        from repro.core import QSM

        machine = QSM(engine="vector")
        with machine.phase() as ph:
            ph.write_block(0, [(i, i * i) for i in range(5)])
        with machine.phase() as ph:
            h = ph.read_block(1, range(1, 4))
        assert h.proc == 1
        assert tuple(h.addrs) == (1, 2, 3)
        assert list(h.values) == [1, 4, 9]
        arr = h.array
        assert isinstance(arr, np.ndarray)
        assert arr.tolist() == [1, 4, 9]

    def test_sealed_before_commit(self):
        from repro.core import QSM
        from repro.core.machine import PhaseClosedError

        machine = QSM(engine="vector")
        with pytest.raises(PhaseClosedError):
            with machine.phase() as ph:
                h = ph.read_block(0, range(0, 3))
                h.values  # not resolved until the phase commits

    def test_vector_machine_reports_engine(self):
        from repro.core import GSM, QSM

        assert QSM(engine="vector").engine == "vector"
        assert QSM(engine="reference").engine == "reference"
        # GSM accepts the engine too (materializes for strong queuing).
        assert GSM(engine="vector").engine == "vector"


class TestIRReplay:
    def test_run_phase_returns_resolved_handles_in_program_order(self):
        from repro.core import QSM, ReadBlockOp, ReadOp, WriteOp, run_phase

        machine = QSM(engine="vector")
        run_phase(machine, [WriteOp(0, 2, 5), WriteOp(0, 3, 6)])
        handles = run_phase(
            machine, [ReadOp(1, 2), ReadBlockOp(2, range(2, 4)), ReadOp(3, 3)]
        )
        assert handles[0].value == 5
        assert list(handles[1].values) == [5, 6]
        assert handles[2].value == 6
