"""Validation of the machine parameter dataclasses."""

import math

import pytest

from repro.core import BSP, QSM, BSPParams, GSMParams, QSMParams, SQSMParams


class TestQSMParams:
    def test_default_is_qrqw(self):
        assert QSMParams().g == 1.0

    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            QSMParams(g=0.5)

    def test_concurrent_reads_flag_defaults_off(self):
        assert not QSMParams().unit_time_concurrent_reads

    def test_frozen(self):
        p = QSMParams(g=2)
        with pytest.raises(Exception):
            p.g = 3  # type: ignore[misc]


class TestSQSMParams:
    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            SQSMParams(g=0.0)


class TestGSMParams:
    def test_mu_is_max(self):
        assert GSMParams(alpha=2, beta=5).mu == 5

    def test_lam_is_min(self):
        assert GSMParams(alpha=2, beta=5).lam == 2

    def test_defaults(self):
        p = GSMParams()
        assert (p.alpha, p.beta, p.gamma) == (1.0, 1.0, 1)

    @pytest.mark.parametrize("kwargs", [
        {"alpha": 0.5}, {"beta": 0.0}, {"gamma": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GSMParams(**kwargs)


class TestBSPParams:
    def test_accepts_L_equal_g(self):
        BSPParams(g=4, L=4)

    def test_rejects_L_below_g(self):
        # The paper assumes L >= g throughout.
        with pytest.raises(ValueError):
            BSPParams(g=4, L=2)

    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            BSPParams(g=0.5, L=1)


class TestDegenerateValues:
    """NaN slips past ``< 1`` checks and inf poisons every cost formula;
    both must be rejected at construction, not deep in a sweep."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_gaps_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            QSMParams(g=bad)
        with pytest.raises(ValueError, match="finite"):
            SQSMParams(g=bad)
        with pytest.raises(ValueError, match="finite"):
            GSMParams(alpha=bad)
        with pytest.raises(ValueError, match="finite"):
            BSPParams(g=1, L=bad)

    @pytest.mark.parametrize("bad", [True, "2", None, 2j])
    def test_non_real_gaps_rejected(self, bad):
        with pytest.raises(ValueError, match="real number"):
            QSMParams(g=bad)

    def test_gsm_gamma_must_be_a_true_int(self):
        with pytest.raises(ValueError, match="gamma"):
            GSMParams(gamma=True)
        with pytest.raises(ValueError, match="gamma"):
            GSMParams(gamma=1.5)

    def test_error_messages_name_the_parameter(self):
        with pytest.raises(ValueError, match="QSM gap parameter g"):
            QSMParams(g=0)
        with pytest.raises(ValueError, match="BSP L"):
            BSPParams(g=1, L=0.5)


class TestMachineConstructors:
    def test_shared_machine_rejects_bad_processor_count(self):
        with pytest.raises(ValueError, match="num_processors"):
            QSM(num_processors=0)
        with pytest.raises(ValueError, match="num_processors"):
            QSM(num_processors=2.5)

    def test_shared_machine_rejects_bad_memory_size(self):
        with pytest.raises(ValueError, match="memory_size"):
            QSM(memory_size=0)

    def test_bsp_rejects_bad_component_count(self):
        with pytest.raises(ValueError, match="at least one component"):
            BSP(0)
        with pytest.raises(ValueError, match="component count"):
            BSP("four")
