"""Validation of the machine parameter dataclasses."""

import pytest

from repro.core import BSPParams, GSMParams, QSMParams, SQSMParams


class TestQSMParams:
    def test_default_is_qrqw(self):
        assert QSMParams().g == 1.0

    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            QSMParams(g=0.5)

    def test_concurrent_reads_flag_defaults_off(self):
        assert not QSMParams().unit_time_concurrent_reads

    def test_frozen(self):
        p = QSMParams(g=2)
        with pytest.raises(Exception):
            p.g = 3  # type: ignore[misc]


class TestSQSMParams:
    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            SQSMParams(g=0.0)


class TestGSMParams:
    def test_mu_is_max(self):
        assert GSMParams(alpha=2, beta=5).mu == 5

    def test_lam_is_min(self):
        assert GSMParams(alpha=2, beta=5).lam == 2

    def test_defaults(self):
        p = GSMParams()
        assert (p.alpha, p.beta, p.gamma) == (1.0, 1.0, 1)

    @pytest.mark.parametrize("kwargs", [
        {"alpha": 0.5}, {"beta": 0.0}, {"gamma": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GSMParams(**kwargs)


class TestBSPParams:
    def test_accepts_L_equal_g(self):
        BSPParams(g=4, L=4)

    def test_rejects_L_below_g(self):
        # The paper assumes L >= g throughout.
        with pytest.raises(ValueError):
            BSPParams(g=4, L=2)

    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            BSPParams(g=0.5, L=1)
