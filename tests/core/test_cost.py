"""The Section 2 cost formulas, pinned against hand-computed values."""

import pytest

from repro.core import BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.cost import (
    bsp_superstep_cost,
    gsm_big_steps,
    gsm_phase_cost,
    qsm_phase_cost,
    sqsm_phase_cost,
)
from repro.core.phase import PhaseRecord, SuperstepRecord


def phase(reads=None, writes=None, ops=None, rq=None, wq=None):
    return PhaseRecord(0, reads or {}, writes or {}, ops or {}, rq or {}, wq or {})


class TestQSMCost:
    def test_gap_times_mrw_dominates(self):
        r = phase(reads={0: 5}, rq={1: 1})
        assert qsm_phase_cost(r, QSMParams(g=3)) == 15

    def test_contention_dominates(self):
        r = phase(reads={i: 1 for i in range(20)}, rq={7: 20})
        assert qsm_phase_cost(r, QSMParams(g=2)) == 20

    def test_local_ops_dominate(self):
        r = phase(ops={0: 99}, reads={0: 1}, rq={0: 1})
        assert qsm_phase_cost(r, QSMParams(g=2)) == 99

    def test_minimum_cost_is_g(self):
        # Even an idle phase charges g * m_rw = g (m_rw clamps to 1).
        assert qsm_phase_cost(phase(), QSMParams(g=4)) == 4

    def test_unit_time_concurrent_reads_ignore_read_queue(self):
        r = phase(reads={i: 1 for i in range(50)}, rq={3: 50})
        assert qsm_phase_cost(r, QSMParams(g=2, unit_time_concurrent_reads=True)) == 2
        assert qsm_phase_cost(r, QSMParams(g=2)) == 50

    def test_unit_time_concurrent_reads_still_charge_write_queue(self):
        r = phase(writes={i: 1 for i in range(50)}, wq={3: 50})
        assert qsm_phase_cost(r, QSMParams(g=2, unit_time_concurrent_reads=True)) == 50


class TestSQSMCost:
    def test_contention_charged_with_gap(self):
        r = phase(reads={i: 1 for i in range(8)}, rq={7: 8})
        assert sqsm_phase_cost(r, SQSMParams(g=3)) == 24

    def test_same_as_qsm_when_mrw_dominates(self):
        r = phase(reads={0: 5}, rq={1: 1})
        assert sqsm_phase_cost(r, SQSMParams(g=3)) == qsm_phase_cost(r, QSMParams(g=3))

    def test_qrqw_is_g_equals_one(self):
        r = phase(reads={i: 1 for i in range(8)}, rq={7: 8})
        assert sqsm_phase_cost(r, SQSMParams(g=1)) == 8


class TestGSMCost:
    def test_big_steps_from_mrw(self):
        r = phase(reads={0: 10}, rq={0: 1})
        assert gsm_big_steps(r, GSMParams(alpha=3, beta=1)) == 4  # ceil(10/3)

    def test_big_steps_from_contention(self):
        r = phase(reads={i: 1 for i in range(9)}, rq={0: 9})
        assert gsm_big_steps(r, GSMParams(alpha=1, beta=2)) == 5  # ceil(9/2)

    def test_minimum_one_big_step(self):
        assert gsm_big_steps(phase(), GSMParams(alpha=4, beta=4)) == 1

    def test_phase_cost_is_mu_times_b(self):
        r = phase(reads={0: 10}, rq={0: 1})
        prm = GSMParams(alpha=3, beta=5)
        assert gsm_phase_cost(r, prm) == 5 * 4  # mu=5, b=ceil(10/3)=4

    def test_local_ops_free(self):
        r = phase(ops={0: 1000})
        assert gsm_phase_cost(r, GSMParams()) == 1.0


class TestBSPCost:
    def test_latency_floor(self):
        r = SuperstepRecord(0, {0: 1}, {0: 1}, {1: 1})
        assert bsp_superstep_cost(r, BSPParams(g=2, L=50)) == 50

    def test_communication_dominates(self):
        r = SuperstepRecord(0, {0: 1}, {0: 40}, {1: 40})
        assert bsp_superstep_cost(r, BSPParams(g=2, L=10)) == 80

    def test_work_dominates(self):
        r = SuperstepRecord(0, {0: 500}, {0: 1}, {1: 1})
        assert bsp_superstep_cost(r, BSPParams(g=2, L=10)) == 500

    def test_empty_superstep_costs_L(self):
        r = SuperstepRecord(0, {}, {}, {})
        assert bsp_superstep_cost(r, BSPParams(g=2, L=7)) == 7


class TestQueueContentionRegression:
    """End-to-end: κ counts *distinct processors* per cell (Section 2.1).

    A processor issuing several requests to one cell still occupies one slot
    in that cell's queue; the duplicates are charged through m_rw instead.
    Before the fix the engine fed raw request counts into the queue maps,
    inflating every cost that κ dominates.
    """

    def test_qsm_duplicate_reads_do_not_inflate_kappa(self):
        from repro.core import QSM

        m = QSM(QSMParams(g=1))
        with m.phase() as ph:
            for proc in range(4):
                ph.read(proc, 0)
                ph.read(proc, 0)  # same proc, same cell: κ contribution is 1
        rec = m.history[0]
        assert rec.read_queue[0] == 4  # not 8
        assert rec.reads_per_proc == {p: 2 for p in range(4)}  # m_rw keeps both
        # max(m_op, g*m_rw, κ) = max(0, 1*2, 4) = 4
        assert m.phase_costs == [4.0]

    def test_sqsm_charges_gap_on_distinct_processor_count(self):
        from repro.core import SQSM

        m = SQSM(SQSMParams(g=3))
        with m.phase() as ph:
            for proc in range(4):
                ph.write(proc, 5, proc)
                ph.write(proc, 5, proc)
        rec = m.history[0]
        assert rec.write_queue[5] == 4
        # max(m_op, g*m_rw, g*κ) = max(0, 3*2, 3*4) = 12
        assert m.phase_costs == [12.0]

    def test_gsm_big_steps_use_distinct_processor_kappa(self):
        from repro.core import GSM

        m = GSM(GSMParams(alpha=2, beta=2))
        with m.phase() as ph:
            for proc in range(4):
                ph.read(proc, 0)
                ph.read(proc, 0)
        # b = max(ceil(m_rw/alpha), ceil(κ/beta)) = max(ceil(2/2), ceil(4/2)) = 2
        assert gsm_big_steps(m.history[0], m.params) == 2

    def test_cost_formula_agrees_with_hand_built_record(self):
        from repro.core import QSM

        m = QSM(QSMParams(g=2))
        with m.phase() as ph:
            ph.read(0, 9)
            ph.read(0, 9)
            ph.read(1, 9)
        by_hand = phase(reads={0: 2, 1: 1}, rq={9: 2})
        assert qsm_phase_cost(m.history[0], m.params) == qsm_phase_cost(
            by_hand, m.params
        )
