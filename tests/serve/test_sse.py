"""SSE framing: the formatter/parser round trip and torn-stream tolerance.

Mirrors the ``read_snapshots`` contract from ``repro.obs.snapshot``: a
parser fed a live stream must survive arbitrary chunk boundaries and
drop an unterminated trailing frame instead of surfacing it half-parsed.
"""

import json

from repro.serve.sse import format_sse_event, iter_sse


def events(chunks):
    return list(iter_sse(chunks))


def test_format_single_frame():
    frame = format_sse_event('{"x": 1}', event="job")
    assert frame == 'event: job\ndata: {"x": 1}\n\n'


def test_round_trip_one_event():
    frame = format_sse_event('{"x": 1}', event="job")
    assert events([frame]) == [{"event": "job", "data": '{"x": 1}'}]


def test_round_trip_multiple_events():
    stream = (
        format_sse_event("a", event="job")
        + format_sse_event("b", event="snapshot")
        + format_sse_event("c")
    )
    got = events([stream])
    assert [e["event"] for e in got] == ["job", "snapshot", "message"]
    assert [e["data"] for e in got] == ["a", "b", "c"]


def test_multiline_data_reassembles():
    payload = "line one\nline two\nline three"
    frame = format_sse_event(payload, event="job")
    assert frame.count("data: ") == 3
    assert events([frame]) == [{"event": "job", "data": payload}]


def test_event_id_round_trip():
    frame = format_sse_event("x", event="job", event_id="42")
    assert events([frame]) == [{"event": "job", "data": "x", "id": "42"}]


def test_torn_chunk_boundaries():
    """Chunks split mid-line and mid-frame must not corrupt events."""
    stream = format_sse_event('{"seq": 1}', event="snapshot") + format_sse_event(
        '{"seq": 2}', event="snapshot"
    )
    for size in (1, 2, 3, 5, 7):
        chunks = [stream[i:i + size] for i in range(0, len(stream), size)]
        got = events(chunks)
        assert [json.loads(e["data"])["seq"] for e in got] == [1, 2], size


def test_incomplete_trailing_frame_dropped():
    """A writer that died mid-frame must not surface a torn event."""
    stream = format_sse_event("complete", event="job") + "event: job\ndata: half"
    got = events([stream])
    assert got == [{"event": "job", "data": "complete"}]


def test_comment_keepalives_ignored():
    stream = ": ping\n\n" + format_sse_event("x", event="job") + ": ping\n\n"
    assert events([stream]) == [{"event": "job", "data": "x"}]


def test_crlf_line_endings():
    stream = "event: job\r\ndata: x\r\n\r\n"
    assert events([stream]) == [{"event": "job", "data": "x"}]


def test_space_after_colon_stripped_once():
    assert events(["data:  padded\n\n"]) == [{"event": "message", "data": " padded"}]


# -- ServeClient.watch: byte-level tearing ----------------------------------


class _FakeStream:
    """A canned HTTP response body: read1() returns pre-cut byte blocks."""

    def __init__(self, blocks):
        self._blocks = list(blocks)

    def read1(self, _size=4096):
        return self._blocks.pop(0) if self._blocks else b""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


def _watch_with_blocks(monkeypatch, blocks):
    from repro.serve.client import ServeClient

    client = ServeClient()
    monkeypatch.setattr(
        client, "_request", lambda *a, **kw: _FakeStream(blocks)
    )
    return list(client.watch("job-0001"))


def test_client_watch_survives_mid_rune_tear(monkeypatch):
    """A network read can cut a multi-byte UTF-8 rune between blocks.

    Naive per-block ``decode(errors="replace")`` turns the torn rune
    into U+FFFD and the payload no longer parses back to the original;
    the client's incremental decoder must buffer the partial rune until
    its continuation bytes arrive.
    """
    payload = {"job": {"id": "job-0001", "note": "ünïcode — ✓"}}
    frame = format_sse_event(
        json.dumps(payload, ensure_ascii=False), event="job"
    ).encode("utf-8")
    # Split at EVERY byte offset: some cut inside "ü"/"—"/"✓".
    for cut in range(1, len(frame)):
        got = _watch_with_blocks(monkeypatch, [frame[:cut], frame[cut:]])
        assert got == [payload], f"payload corrupted at byte offset {cut}"


def test_client_watch_one_byte_blocks(monkeypatch):
    payload = {"job": {"id": "job-0001", "state": "done", "emoji": "🎉"}}
    frame = format_sse_event(
        json.dumps(payload, ensure_ascii=False), event="job"
    ).encode("utf-8")
    blocks = [frame[i:i + 1] for i in range(len(frame))]
    assert _watch_with_blocks(monkeypatch, blocks) == [payload]


def test_client_watch_truncated_rune_at_eof(monkeypatch):
    """A stream dying inside a rune must not raise or invent an event."""
    good = format_sse_event('{"job": {"id": "j"}}', event="job").encode("utf-8")
    torn = "event: job\ndata: ✓".encode("utf-8")[:-1]  # rune missing a byte
    got = _watch_with_blocks(monkeypatch, [good, torn])
    assert got == [{"job": {"id": "j"}}]


def test_unknown_fields_ignored():
    stream = "retry: 100\nevent: job\ndata: x\n\n"
    assert events([stream]) == [{"event": "job", "data": "x"}]


def test_empty_stream():
    assert events([]) == []
    assert events([""]) == []
