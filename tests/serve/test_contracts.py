"""The repro.serve/1 wire contracts: round trips, validation, the registry."""

import pytest

from repro.sched.campaign import Campaign, TaskSpec
from repro.sched.tenancy import JobRecord
from repro.sched.campaign import CampaignExecution
from repro.sched.store import ResultStore
from repro.serve.contracts import (
    SCHEMA,
    ContractError,
    SubmitRequest,
    error_view,
    job_view,
    jobs_view,
)
from repro.serve.registry import CampaignEntry, OptionSpec, default_registry


def ok():
    return {"correct": True}


# -- SubmitRequest -----------------------------------------------------------

def test_submit_request_round_trip():
    req = SubmitRequest("demo", {"points": 4, "delay": 0.0})
    assert SubmitRequest.from_dict(req.to_dict()) == req
    assert req.to_dict()["schema"] == SCHEMA


def test_submit_request_minimal():
    req = SubmitRequest.from_dict({"schema": SCHEMA, "campaign": "demo"})
    assert req.campaign == "demo"
    assert req.options == {}


@pytest.mark.parametrize("body,code", [
    ("not an object", "bad_request"),
    ({}, "bad_schema"),
    ({"schema": "repro.serve/99", "campaign": "demo"}, "bad_schema"),
    ({"schema": SCHEMA}, "bad_request"),
    ({"schema": SCHEMA, "campaign": ""}, "bad_request"),
    ({"schema": SCHEMA, "campaign": 7}, "bad_request"),
    ({"schema": SCHEMA, "campaign": "demo", "options": []}, "bad_request"),
    ({"schema": SCHEMA, "campaign": "demo", "bogus": 1}, "bad_request"),
])
def test_submit_request_rejects(body, code):
    with pytest.raises(ContractError) as excinfo:
        SubmitRequest.from_dict(body)
    assert excinfo.value.code == code
    assert excinfo.value.status == 400


def test_error_view_shape():
    view = error_view("quota_jobs", "too many")
    assert view["schema"] == SCHEMA
    assert view["error"] == {"code": "quota_jobs", "message": "too many"}


# -- job_view ----------------------------------------------------------------

def _job(tmp_path):
    campaign = Campaign("tiny", (TaskSpec("a", ok),))
    execution = CampaignExecution(campaign, ResultStore(str(tmp_path / "store")))
    return JobRecord("job-0001", "alice", campaign, execution)


def test_job_view_envelope(tmp_path):
    view = job_view(_job(tmp_path))
    assert view["schema"] == SCHEMA
    job = view["job"]
    assert job["id"] == "job-0001"
    assert job["tenant"] == "alice"
    assert job["campaign"] == "tiny"
    assert job["state"] == "queued"
    assert job["tasks"] == 1
    assert job["counts"] == {"pending": 1}


def test_jobs_view_envelope(tmp_path):
    view = jobs_view([_job(tmp_path)])
    assert view["schema"] == SCHEMA
    assert [j["id"] for j in view["jobs"]] == ["job-0001"]


# -- registry ----------------------------------------------------------------

def test_default_registry_covers_shipped_campaigns():
    registry = default_registry()
    assert set(registry) == {
        "demo", "table1", "section8", "chaos", "cross_model"
    }
    demo = registry["demo"].to_dict()
    assert [o["name"] for o in demo["options"]] == ["points", "delay"]


def test_registry_builds_cross_model_campaign():
    # The cross-model table runs at its stock grid (no tenant options)
    # and covers all 7 models for each problem.
    campaign = default_registry()["cross_model"].build({})
    assert campaign.name == "cross_model"
    points = [t for t in campaign.tasks if not t.name.endswith("/verdict")]
    models = {t.name.split("/")[2] for t in points}
    assert models == {"QSM", "s-QSM", "QSM(g,d)", "BSP", "PRAM", "MPC", "PEM"}


def test_registry_builds_demo_with_options():
    campaign = default_registry()["demo"].build({"points": 3, "delay": 0.0})
    assert campaign.name == "demo"
    assert len(campaign.tasks) == 4  # 3 points + summary


def test_registry_rejects_unknown_option():
    with pytest.raises(ContractError) as excinfo:
        default_registry()["demo"].build({"bogus": 1})
    assert excinfo.value.code == "bad_option"


def test_registry_rejects_out_of_bounds():
    with pytest.raises(ContractError) as excinfo:
        default_registry()["demo"].build({"points": 100000})
    assert excinfo.value.code == "bad_option"


def test_registry_rejects_wrong_type():
    with pytest.raises(ContractError) as excinfo:
        default_registry()["demo"].build({"points": 2.5})
    assert excinfo.value.code == "bad_option"
    with pytest.raises(ContractError):
        default_registry()["demo"].build({"points": True})


def test_registry_accepts_int_where_float_declared():
    campaign = default_registry()["demo"].build({"points": 2, "delay": 0})
    assert len(campaign.tasks) == 3


def test_option_spec_rejects_bad_kind():
    with pytest.raises(ValueError):
        OptionSpec("x", "str", "hello")


def test_campaign_entry_without_options_rejects_any():
    entry = CampaignEntry("table1", "stock grid")
    with pytest.raises(ContractError) as excinfo:
        entry.build({"ns": [64]})
    assert "allowed: (none)" in str(excinfo.value)
