"""The multi-tenant scheduling layer: fair-share, quotas, dedup, cancel.

Exercises :class:`repro.sched.tenancy.FairShareMultiplexer` directly
(deterministic stepping, no threads) and
:class:`repro.serve.service.CampaignService` for the threaded
service-level semantics: disconnect-cancel, resubmit-resume, and the
event hub.
"""

import os
import time

import pytest

from repro.obs import metrics as _metrics
from repro.sched.campaign import Campaign, TaskSpec
from repro.sched.store import ResultStore
from repro.sched.tenancy import FairShareMultiplexer, QuotaExceeded, TenantQuota
from repro.serve.contracts import ContractError, SubmitRequest
from repro.serve.service import CampaignService


# Module-level task functions (pool tasks must pickle).

def emit(value, tenant="", marker_dir=None, name="", delay=0.0):
    """Return a small outcome; optionally count executions via marker files."""
    if delay:
        time.sleep(delay)
    if marker_dir is not None:
        count_file = os.path.join(marker_dir, f"{name}.count")
        count = int(open(count_file).read()) if os.path.exists(count_file) else 0
        with open(count_file, "w") as fh:
            fh.write(str(count + 1))
    return {"value": value, "correct": True}


def flaky_once(marker_dir, delay=0.0):
    """Fail on the first execution, succeed afterwards (cross-process state)."""
    if delay:
        time.sleep(delay)
    count_file = os.path.join(marker_dir, "flaky.count")
    count = int(open(count_file).read()) if os.path.exists(count_file) else 0
    with open(count_file, "w") as fh:
        fh.write(str(count + 1))
    if count == 0:
        raise RuntimeError("first execution fails")
    return {"value": count, "correct": True}


def fanout(tenant, n, **extra):
    """An n-task campaign whose specs are distinct per tenant."""
    tasks = tuple(
        TaskSpec(f"{tenant}/{i}", emit,
                 kwargs={"value": i, "tenant": tenant, **extra})
        for i in range(n)
    )
    return Campaign(f"fanout-{tenant}", tasks)


def shared(n, **extra):
    """An n-task campaign with tenant-independent specs (dedup bait)."""
    tasks = tuple(
        TaskSpec(f"point/{i}", emit, kwargs={"value": i, **extra})
        for i in range(n)
    )
    return Campaign("shared", tasks)


def drive(mux, timeout=30.0, wait=0.05):
    t0 = time.monotonic()
    while mux.active:
        mux.step(wait=wait)
        assert time.monotonic() - t0 < timeout, "multiplexer did not converge"


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture
def mux(store):
    m = FairShareMultiplexer(store, jobs=2)
    yield m
    m.shutdown()


# -- fair share --------------------------------------------------------------

def test_two_tenants_both_finish(mux):
    a = mux.submit("alice", fanout("alice", 4))
    b = mux.submit("bob", fanout("bob", 4))
    drive(mux)
    assert a.state == "done" and b.state == "done"
    assert a.counts() == {"done": 4}
    assert b.counts() == {"done": 4}


def test_fair_share_interleaves_tenants(mux):
    """Neither tenant's frontier starves: early pool slots go to both."""
    a = mux.submit("alice", fanout("alice", 6, delay=0.05))
    b = mux.submit("bob", fanout("bob", 6, delay=0.05))
    drive(mux)
    spans = sorted(a.spans + b.spans, key=lambda s: s.start)
    first_four = {s.name.split("/")[0] for s in spans[:4]}
    assert first_four == {"alice", "bob"}, [s.name for s in spans]


def test_jobs_within_tenant_run_oldest_first(mux):
    first = mux.submit("alice", fanout("alice", 3))
    second = mux.submit("alice", shared(3))
    drive(mux)
    assert first.state == "done" and second.state == "done"
    assert first.finished <= second.finished


# -- quotas ------------------------------------------------------------------

def test_quota_rejects_excess_jobs(store):
    mux = FairShareMultiplexer(store, jobs=1, quota=TenantQuota(max_jobs=1))
    try:
        mux.submit("alice", fanout("alice", 2))
        with pytest.raises(QuotaExceeded) as excinfo:
            mux.submit("alice", shared(2))
        assert excinfo.value.code == "quota_jobs"
        # Another tenant is unaffected, and a finished job frees the slot.
        mux.submit("bob", fanout("bob", 2))
        drive(mux)
        mux.submit("alice", shared(2))
        drive(mux)
    finally:
        mux.shutdown()


def test_quota_rejects_oversized_campaign(store):
    mux = FairShareMultiplexer(
        store, jobs=1, quota=TenantQuota(max_tasks_per_job=3)
    )
    try:
        with pytest.raises(QuotaExceeded) as excinfo:
            mux.submit("alice", fanout("alice", 4))
        assert excinfo.value.code == "quota_tasks"
    finally:
        mux.shutdown()


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(max_jobs=0)
    with pytest.raises(ValueError):
        TenantQuota(max_tasks_in_flight=0)
    with pytest.raises(ValueError):
        TenantQuota(max_tasks_per_job=0)


# -- cross-tenant dedup ------------------------------------------------------

def test_dedup_after_completion(mux, tmp_path):
    """A spec already served for tenant A resumes as cached for tenant B."""
    marker = str(tmp_path / "markers")
    os.makedirs(marker)
    a = mux.submit("alice", shared(3, marker_dir=marker, name="p"))
    drive(mux)
    b = mux.submit("bob", shared(3, marker_dir=marker, name="p"))
    drive(mux)
    assert a.counts() == {"done": 3}
    assert b.counts() == {"cached": 3}
    # Three distinct specs, each executed exactly once across both tenants.
    assert open(os.path.join(marker, "p.count")).read() == "3"


def test_dedup_of_in_flight_work(mux):
    """A task already executing for tenant A completes as cached for B."""
    a = mux.submit("alice", shared(4, delay=0.3))
    mux.step(wait=0.05)  # get alice's tasks onto the pool
    b = mux.submit("bob", shared(4, delay=0.3))
    drive(mux)
    assert a.state == "done" and b.state == "done"
    assert b.counts() == {"cached": 4}
    # No double execution: the pool only ever ran alice's four tasks.
    assert mux.pool.stats["tasks_completed"] == 4


def test_failed_owner_requeues_waiters(store, tmp_path):
    """If the owning job's task fails, a parked waiter executes it itself."""
    marker = str(tmp_path / "markers")
    os.makedirs(marker)
    mux = FairShareMultiplexer(store, jobs=1)
    try:
        flaky_task = Campaign(
            "flaky",
            (TaskSpec("a", flaky_once,
                      kwargs={"marker_dir": marker, "delay": 0.3}),),
        )
        a = mux.submit("alice", flaky_task)
        mux.step(wait=0.05)  # alice's (doomed) first execution in flight
        b = mux.submit("bob", flaky_task)
        drive(mux)
        # Alice's execution failed; bob's parked waiter was requeued,
        # re-executed the task itself, and succeeded.
        assert a.state == "failed"
        assert b.state == "done"
        assert open(os.path.join(marker, "flaky.count")).read() == "2"
    finally:
        mux.shutdown()


# -- cancellation ------------------------------------------------------------

def test_cancel_queued_job_is_immediate(mux):
    job = mux.submit("alice", fanout("alice", 3))
    assert mux.cancel(job.id).state == "cancelled"
    assert job.counts() == {"pending": 3}


def test_cancel_running_job_drains_into_store(mux, store):
    job = mux.submit("alice", fanout("alice", 6, delay=0.2))
    deadline = time.monotonic() + 20
    while not job.execution.in_flight and time.monotonic() < deadline:
        mux.step(wait=0.05)
    mux.cancel(job.id)
    drive(mux)
    assert job.state == "cancelled"
    counts = job.counts()
    assert counts.get("pending", 0) > 0  # cancelled before completion
    # The drained in-flight results reached the store: a resubmission
    # resumes instead of starting over.
    resumed = mux.submit("alice", fanout("alice", 6, delay=0.2))
    drive(mux)
    assert resumed.state == "done"
    assert resumed.counts().get("cached", 0) >= 1


def test_cancel_unknown_job_returns_none(mux):
    assert mux.cancel("job-9999") is None


# -- the threaded service ----------------------------------------------------

def demo_request(points=3, delay=0.0):
    return SubmitRequest("demo", {"points": points, "delay": delay})


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(
        str(tmp_path / "store"), jobs=2, snapshot_interval=0.1
    )
    svc.start()
    yield svc
    svc.stop()


def test_service_runs_submission_to_done(service):
    job = service.submit("alice", demo_request())
    assert wait_for(lambda: service.job(job.id).terminal)
    assert service.job(job.id).state == "done"


def test_service_rejects_unknown_campaign(service):
    with pytest.raises(ContractError) as excinfo:
        service.submit("alice", SubmitRequest("nope", {}))
    assert excinfo.value.code == "unknown_campaign"
    assert excinfo.value.status == 404


def test_service_maps_quota_to_429(tmp_path):
    svc = CampaignService(
        str(tmp_path / "store"), jobs=1,
        quota=TenantQuota(max_jobs=1), snapshot_interval=0.1,
    )
    try:
        svc.submit("alice", demo_request(points=4, delay=0.2))
        with pytest.raises(ContractError) as excinfo:
            svc.submit("alice", demo_request())
        assert excinfo.value.code == "quota_jobs"
        assert excinfo.value.status == 429
    finally:
        svc.stop()


def test_service_cancel_is_tenant_checked(service):
    job = service.submit("alice", demo_request(points=6, delay=0.2))
    with pytest.raises(ContractError) as excinfo:
        service.cancel(job.id, "bob")
    assert excinfo.value.code == "wrong_tenant"
    assert excinfo.value.status == 403
    service.cancel(job.id, "alice")
    assert wait_for(lambda: service.job(job.id).terminal)
    assert service.job(job.id).state == "cancelled"


def test_disconnect_cancel_then_resubmit_resumes(service):
    """The ISSUE semantics: cancel mid-run, resubmit, resume from the store."""
    job = service.submit("alice", demo_request(points=6, delay=0.2))
    # Wait until some work has completed, as a disconnecting watcher would.
    assert wait_for(
        lambda: service.job(job.id).counts().get("done", 0) >= 1
    )
    service.cancel(job.id, "alice")  # what the SSE handler does on disconnect
    assert wait_for(lambda: service.job(job.id).terminal)
    cancelled = service.job(job.id)
    assert cancelled.state == "cancelled"
    assert cancelled.counts().get("pending", 0) > 0
    resubmitted = service.submit("alice", demo_request(points=6, delay=0.2))
    assert wait_for(lambda: service.job(resubmitted.id).terminal)
    final = service.job(resubmitted.id)
    assert final.state == "done"
    assert final.counts().get("cached", 0) >= 1


def test_subscription_streams_job_events(service):
    sub = service.subscribe()
    try:
        job = service.submit("alice", demo_request())
        assert wait_for(lambda: service.job(job.id).terminal)
        seen_states = set()
        deadline = time.monotonic() + 10
        import json as _json

        while time.monotonic() < deadline:
            item = sub.get(timeout=0.2)
            if item is None:
                continue
            event, data, _ = item
            if event == "job":
                view = _json.loads(data)["job"]
                if view["id"] == job.id:
                    seen_states.add(view["state"])
                    if view["state"] in ("done", "failed"):
                        break
        assert "done" in seen_states
    finally:
        service.unsubscribe(sub)


def test_per_job_subscription_primed_with_terminal_state(service):
    job = service.submit("alice", demo_request())
    assert wait_for(lambda: service.job(job.id).terminal)
    sub = service.subscribe(job.id)  # attach *after* completion
    try:
        item = sub.get(timeout=2.0)
        assert item is not None
        event, _, done = item
        assert event == "job" and done
    finally:
        service.unsubscribe(sub)


def test_service_restores_metrics_state(tmp_path):
    was_enabled = _metrics.REGISTRY.enabled
    assert not was_enabled  # tests run with the registry off
    svc = CampaignService(str(tmp_path / "store"), jobs=1)
    assert _metrics.REGISTRY.enabled
    svc.stop()
    assert not _metrics.REGISTRY.enabled
