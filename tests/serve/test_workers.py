"""The worker-fleet surface: fleet_view, /v1/workers, the workers SSE event."""

import json
import subprocess
import threading
import time
import urllib.request

import pytest

from repro.sched.net.worker import spawn_local_workers
from repro.sched.pool import WorkerPool
from repro.serve.client import ServeClient
from repro.serve.contracts import SCHEMA, fleet_view
from repro.serve.http import create_server, serve_forever
from repro.serve.service import CampaignService
from repro.serve.sse import iter_sse


def _noop():
    return None


class TestFleetView:
    def test_pipe_pool_rows(self):
        # Pipe workers spawn lazily; the fleet is empty until tasks arrive.
        pool = WorkerPool(jobs=2)
        try:
            assert fleet_view(pool) == {"schema": SCHEMA, "workers": [], "live": 0}
            pool.submit("a", _noop)
            pool.submit("b", _noop)
            done = 0
            deadline = time.monotonic() + 15
            while done < 2 and time.monotonic() < deadline:
                done += len(pool.events(wait=0.2))
            view = fleet_view(pool)
            assert view["schema"] == SCHEMA
            assert view["live"] == 2
            assert "listen" not in view
            for row in view["workers"]:
                assert row["transport"] == "pipe"
                assert row["state"] == "live"
                assert row["addr"] is None
                assert isinstance(row["pid"], int)
        finally:
            pool.shutdown()

    def test_poolless_object_yields_empty_fleet(self):
        view = fleet_view(object())
        assert view == {"schema": SCHEMA, "workers": [], "live": 0}


def _boot(service):
    srv = create_server(service, port=0)
    thread = threading.Thread(target=serve_forever, args=(srv,), daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", tenant="alice")
    deadline = time.monotonic() + 10
    while not client.healthy():
        assert time.monotonic() < deadline, "server did not come up"
        time.sleep(0.05)
    return srv, thread, client


class TestPipeServer:
    def test_v1_workers_route(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "store"), jobs=2, snapshot_interval=0.1
        )
        srv, thread, client = _boot(service)
        try:
            view = client.workers()
            assert view["schema"] == SCHEMA
            assert view["workers"] == [] and view["live"] == 0  # lazy spawn
            job = client.submit("demo", {"points": 3, "delay": 0.0})
            assert client.wait(job["id"], timeout=30)["state"] == "done"
            view = client.workers()
            assert view["live"] >= 1
            assert {r["transport"] for r in view["workers"]} == {"pipe"}
        finally:
            srv.shutdown()
            thread.join(timeout=10)


class TestRemoteServer:
    @pytest.fixture
    def remote(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "store"),
            jobs=2,
            snapshot_interval=0.1,
            workers_port=0,
        )
        srv, thread, client = _boot(service)
        procs = spawn_local_workers(service.mux.pool.address, 2)
        # Wait for both registrations before yielding: shutdown only
        # sends ``stop`` to workers the registry knows about, and an
        # unregistered worker left behind would redial the closed
        # listener forever (the chaos-friendly default).
        deadline = time.monotonic() + 15
        while client.workers()["live"] < 2:
            assert time.monotonic() < deadline, "workers never registered"
            time.sleep(0.05)
        try:
            yield service, srv, client
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)

    def test_remote_fleet_serves_a_campaign(self, remote):
        service, srv, client = remote
        # Workers register asynchronously; the route reflects them live.
        deadline = time.monotonic() + 10
        while client.workers()["live"] < 2:
            assert time.monotonic() < deadline, "workers never registered"
            time.sleep(0.05)
        view = client.workers()
        assert view["listen"] == "%s:%d" % service.mux.pool.address
        assert {r["transport"] for r in view["workers"]} == {"tcp"}
        assert all(r["generation"] == 1 for r in view["workers"])

        job = client.submit("demo", {"points": 3, "delay": 0.0})
        final = client.wait(job["id"], timeout=30)
        assert final["state"] == "done"
        assert final["counts"] == {"done": 4}
        done = sum(r["tasks_done"] for r in client.workers()["workers"])
        assert done >= 1  # the summary task may run on either worker

    def test_global_stream_carries_workers_events(self, remote):
        service, srv, client = remote
        host, port = srv.server_address[:2]
        req = urllib.request.Request(f"http://{host}:{port}/v1/events")
        resp = urllib.request.urlopen(req, timeout=10)
        # The fleet registered before this stream attached, so force a
        # digest change (tasks_done moves) the subscriber will see.
        client.submit("demo", {"points": 2, "delay": 0.0})

        def chunks():
            with resp:
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    block = resp.read1(4096)
                    if not block:
                        return
                    yield block.decode("utf-8")

        seen = None
        for event in iter_sse(chunks()):
            if event["event"] == "workers":
                seen = json.loads(event["data"])
                break
        assert seen is not None, "no workers event on the global stream"
        assert seen["schema"] == SCHEMA
        assert "listen" in seen

    def test_stop_shuts_the_owned_remote_pool_down(self, remote):
        service, srv, client = remote
        deadline = time.monotonic() + 10
        while client.workers()["live"] < 2:
            assert time.monotonic() < deadline
            time.sleep(0.05)
        srv.shutdown()  # serve_forever's finally runs service.stop()
        deadline = time.monotonic() + 10
        while not service.mux.pool._closed:
            assert time.monotonic() < deadline, "remote pool not shut down"
            time.sleep(0.05)
