"""The HTTP front end, end to end on an ephemeral port: routes, SSE, errors."""

import json
import threading
import time
import urllib.request

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.http import create_server, serve_forever
from repro.serve.service import CampaignService
from repro.serve.sse import iter_sse


@pytest.fixture
def server(tmp_path):
    service = CampaignService(
        str(tmp_path / "store"), jobs=2, snapshot_interval=0.1
    )
    srv = create_server(service, port=0)
    thread = threading.Thread(target=serve_forever, args=(srv,), daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    deadline = time.monotonic() + 10
    client = ServeClient(f"http://{host}:{port}")
    while not client.healthy():
        assert time.monotonic() < deadline, "server did not come up"
        time.sleep(0.05)
    yield srv
    srv.shutdown()
    thread.join(timeout=10)


def client_for(server, tenant=None):
    host, port = server.server_address[:2]
    return ServeClient(f"http://{host}:{port}", tenant=tenant)


def test_healthz_and_dashboard(server):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
        assert resp.read() == b"ok\n"
    with urllib.request.urlopen(f"http://{host}:{port}/") as resp:
        html = resp.read().decode("utf-8")
    assert "EventSource" in html and "/v1/events" in html


def test_campaign_catalogue(server):
    campaigns = client_for(server).campaigns()
    names = [c["name"] for c in campaigns]
    assert "demo" in names and "chaos" in names
    demo = next(c for c in campaigns if c["name"] == "demo")
    assert [o["name"] for o in demo["options"]] == ["points", "delay"]


def test_submit_watch_complete(server):
    client = client_for(server, tenant="alice")
    job = client.submit("demo", {"points": 3, "delay": 0.0})
    assert job["state"] == "queued"
    assert job["tenant"] == "alice"
    final = client.wait(job["id"], timeout=30)
    assert final["state"] == "done"
    assert final["counts"] == {"done": 4}


def test_duplicate_submission_is_cached_for_second_tenant(server):
    alice = client_for(server, tenant="alice")
    bob = client_for(server, tenant="bob")
    first = alice.submit("demo", {"points": 3, "delay": 0.0})
    assert alice.wait(first["id"], timeout=30)["state"] == "done"
    second = bob.submit("demo", {"points": 3, "delay": 0.0})
    final = bob.wait(second["id"], timeout=30)
    assert final["state"] == "done"
    # The three stored points dedup via the shared store; only the
    # inline summary re-runs.
    assert final["counts"]["cached"] == 3


def test_jobs_listing_is_tenant_scoped(server):
    alice = client_for(server, tenant="alice")
    bob = client_for(server, tenant="bob")
    job = alice.submit("demo", {"points": 2, "delay": 0.0})
    alice.wait(job["id"], timeout=30)
    assert any(j["id"] == job["id"] for j in alice.jobs())
    assert not bob.jobs()
    assert any(j["id"] == job["id"] for j in bob.jobs(all_tenants=True))


def test_get_single_job(server):
    client = client_for(server, tenant="alice")
    job = client.submit("demo", {"points": 2, "delay": 0.0})
    view = client.job(job["id"])
    assert view["id"] == job["id"]
    assert view["campaign"] == "demo"


def test_cancel_via_delete(server):
    client = client_for(server, tenant="alice")
    job = client.submit("demo", {"points": 8, "delay": 0.3})
    client.cancel(job["id"])
    deadline = time.monotonic() + 20
    while not client.job(job["id"])["state"] in ("cancelled", "done"):
        assert time.monotonic() < deadline
        time.sleep(0.05)
    assert client.job(job["id"])["state"] == "cancelled"


def test_cancel_wrong_tenant_is_403(server):
    alice = client_for(server, tenant="alice")
    bob = client_for(server, tenant="bob")
    job = alice.submit("demo", {"points": 6, "delay": 0.2})
    with pytest.raises(ServeError) as excinfo:
        bob.cancel(job["id"])
    assert excinfo.value.code == "wrong_tenant"
    assert excinfo.value.status == 403
    alice.cancel(job["id"])


@pytest.mark.parametrize("body,status,code", [
    (b"not json", 400, "bad_request"),
    (b'{"schema": "repro.serve/9", "campaign": "demo"}', 400, "bad_schema"),
    (b'{"schema": "repro.serve/1", "campaign": "nope"}', 404, "unknown_campaign"),
    (b'{"schema": "repro.serve/1", "campaign": "demo", '
     b'"options": {"points": -1}}', 400, "bad_option"),
])
def test_error_envelopes(server, body, status, code):
    host, port = server.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}/v1/jobs", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req)
    assert excinfo.value.code == status
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    assert payload["schema"] == "repro.serve/1"
    assert payload["error"]["code"] == code


def test_unknown_route_is_404(server):
    client = client_for(server)
    with pytest.raises(ServeError) as excinfo:
        client._json("/v1/bogus")
    assert excinfo.value.status == 404


def test_watch_unknown_job_is_404(server):
    client = client_for(server, tenant="alice")
    with pytest.raises(ServeError) as excinfo:
        list(client.watch("job-9999"))
    assert excinfo.value.code == "not_found"


def test_global_event_stream_carries_snapshots_and_jobs(server):
    """/v1/events is the dashboard feed: metrics snapshots + job updates."""
    client = client_for(server, tenant="alice")
    resp = client._request("/v1/events", timeout=30)
    job = client.submit("demo", {"points": 2, "delay": 0.0})
    seen = {"snapshot": None, "job": None}

    def chunks():
        while True:
            block = resp.read1(4096)
            if not block:
                return
            yield block.decode("utf-8")

    deadline = time.monotonic() + 20
    for event in iter_sse(chunks()):
        if event["event"] == "snapshot":
            snap = json.loads(event["data"])
            assert snap["schema"] == "repro.metrics/1"
            seen["snapshot"] = snap
        elif event["event"] == "job":
            view = json.loads(event["data"])
            assert view["schema"] == "repro.serve/1"
            if view["job"]["id"] == job["id"] and view["job"]["state"] == "done":
                seen["job"] = view
        if all(seen.values()) or time.monotonic() > deadline:
            break
    resp.close()
    assert seen["snapshot"] is not None
    assert seen["job"] is not None


def test_watch_stream_closes_on_terminal(server):
    client = client_for(server, tenant="alice")
    job = client.submit("demo", {"points": 2, "delay": 0.0})
    states = [env["job"]["state"] for env in client.watch(job["id"], timeout=30)]
    assert states  # at least the terminal frame
    assert states[-1] == "done"


def test_disconnect_with_cancel_on_disconnect_cancels_job(server):
    """A watching tenant that vanishes mid-campaign cancels its job."""
    client = client_for(server, tenant="alice")
    # Long enough (16 points x 2s over 2 workers ~ 16s) that the server's
    # keep-alive write hits the dead socket well before completion: the
    # first write after the FIN still lands in the kernel buffer, so
    # detection costs two ping intervals (~2-3s), not one.
    job = client.submit("demo", {"points": 16, "delay": 2.0})
    # A raw socket, not urllib: the disconnect must happen at the OS
    # level (FIN, then RST against the server's next writes).  urllib's
    # response.close() leaves the fd to a reference cycle the cyclic GC
    # collects at its leisure, so the server would keep writing pings
    # into a live socket and never see the tenant vanish.
    import socket as socketlib
    host, port = server.server_address[:2]
    raw = socketlib.create_connection((host, port), timeout=10)
    raw.sendall(
        (
            f"GET /v1/jobs/{job['id']}/events?cancel_on_disconnect=1 HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\nX-Repro-Tenant: alice\r\n\r\n"
        ).encode("ascii")
    )
    # Read one chunk so the stream is established, then drop the socket.
    assert raw.recv(1)
    raw.close()
    deadline = time.monotonic() + 20
    while client.job(job["id"])["state"] not in ("cancelled", "done"):
        assert time.monotonic() < deadline
        time.sleep(0.05)
    assert client.job(job["id"])["state"] == "cancelled"
    # Resubmitting resumes from whatever the drain stored.
    again = client.submit("demo", {"points": 8, "delay": 0.3})
    final = client.wait(again["id"], timeout=60)
    assert final["state"] == "done"


def test_slo_route_reports_disabled_without_tracing(server):
    """GET /v1/slo answers 200 with enabled=false when $REPRO_TRACE is off."""
    from repro.obs.tracing import TRACER

    if TRACER.enabled:
        pytest.skip("REPRO_TRACE is on in this environment")
    slo = client_for(server).slo()
    assert slo["enabled"] is False
    assert set(slo) == {"enabled", "window", "task", "end_to_end"}
    assert slo["task"]["count"] == 0


def test_job_view_trace_id_null_without_tracing(server):
    from repro.obs.tracing import TRACER

    if TRACER.enabled:
        pytest.skip("REPRO_TRACE is on in this environment")
    client = client_for(server, tenant="alice")
    job = client.submit("demo", {"points": 2, "delay": 0.0})
    assert "trace_id" in job and job["trace_id"] is None
