"""Metrics/snapshot properties: monotone counters, exact round trips.

Counters only ever accumulate, so any snapshot stream taken while a
program runs must show non-decreasing values for every counter series —
that is what makes ``campaign status --follow`` progress lines trustworthy.
The stream itself must survive the JSONL round trip exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, bucket_exponent
from repro.obs.snapshot import SnapshotWriter, read_snapshots

# A program is a list of (metric index, amount) increments; snapshots are
# taken every few steps.
programs = st.lists(
    st.tuples(st.integers(0, 3), st.floats(0.0, 1e6, allow_nan=False)),
    min_size=1,
    max_size=40,
)


def counter_values(snapshot):
    """{(name, label-tuple): value} for every counter series."""
    out = {}
    for metric in snapshot.metrics:
        if metric["type"] != "counter":
            continue
        for sample in metric["samples"]:
            key = (metric["name"], tuple(sorted(sample["labels"].items())))
            out[key] = sample["value"]
    return out


@settings(max_examples=50, deadline=None)
@given(program=programs, every=st.integers(1, 5))
def test_counters_monotone_across_snapshots(program, every, tmp_path_factory):
    registry = MetricsRegistry()
    path = str(tmp_path_factory.mktemp("snaps") / "metrics.jsonl")
    writer = SnapshotWriter(path, registry=registry, interval=3600.0)
    writer.emit()
    for step, (idx, amount) in enumerate(program):
        registry.counter(f"repro_c{idx}_total", "").inc(amount, lane=idx % 2)
        if step % every == 0:
            writer.emit()
    writer.close()
    snaps = writer.snapshots
    assert snaps[-1].final
    assert [s.seq for s in snaps] == list(range(len(snaps)))
    for prev, cur in zip(snaps, snaps[1:]):
        before, after = counter_values(prev), counter_values(cur)
        # No series ever vanishes, and none ever decreases.
        assert set(before) <= set(after)
        for key, value in before.items():
            assert after[key] >= value


@settings(max_examples=50, deadline=None)
@given(program=programs)
def test_snapshot_stream_round_trips_exactly(program, tmp_path_factory):
    registry = MetricsRegistry()
    path = str(tmp_path_factory.mktemp("snaps") / "metrics.jsonl")
    writer = SnapshotWriter(path, registry=registry, interval=3600.0)
    for idx, amount in program:
        registry.counter(f"repro_c{idx}_total", "").inc(amount)
        registry.histogram("repro_h", "").observe(amount + 1.0)
        writer.emit()
    writer.close()
    assert read_snapshots(path) == writer.snapshots


@settings(max_examples=200, deadline=None)
@given(value=st.floats(min_value=1e-300, max_value=1e300, allow_nan=False))
def test_bucket_exponent_brackets_value(value):
    exp = bucket_exponent(value)
    # The bucket's upper bound is 2**exp; the value must not exceed it,
    # and (when not clamped) must exceed the previous bucket's bound.
    if exp < 63:
        assert value <= 2.0 ** exp
    if -30 < exp:
        assert value > 2.0 ** (exp - 1)
