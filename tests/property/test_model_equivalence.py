"""Cross-model semantics equivalence.

The QSM, s-QSM and QSM(g,d) differ *only* in the cost rule; given the same
program and the same machine seed their memory must evolve identically.
Likewise QSM(g, d=1) must charge exactly the QSM rule and QSM(g, d=g)
exactly the s-QSM rule, phase by phase.  Random programs are generated and
replayed across the machines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QSM, QSMGD, QSMGDParams, QSMParams, SQSM, SQSMParams

# A program is a list of phases; each phase is a list of ops:
#   ('w', proc, addr, value) or ('r', proc, addr).
ops = st.one_of(
    st.tuples(st.just("w"), st.integers(0, 5), st.integers(0, 7), st.integers(0, 99)),
    st.tuples(st.just("r"), st.integers(0, 5), st.integers(0, 7)),
)
programs = st.lists(st.lists(ops, min_size=1, max_size=6), min_size=1, max_size=6)


def run_program(machine, program):
    """Replay a random program, separating reads and writes per phase so the
    no-concurrent-read-and-write rule is respected deterministically."""
    costs = []
    for phase_ops in program:
        writes = [(o[1], o[2], o[3]) for o in phase_ops if o[0] == "w"]
        reads = [(o[1], o[2]) for o in phase_ops if o[0] == "r"]
        written = {a for _, a, _ in writes}
        reads = [(p, a) for p, a in reads if a not in written]
        if writes:
            with machine.phase() as ph:
                for p, a, v in writes:
                    ph.write(p, a, v)
            costs.append(machine.phase_costs[-1])
        if reads:
            with machine.phase() as ph:
                for p, a in reads:
                    ph.read(p, a)
            costs.append(machine.phase_costs[-1])
    memory = {a: machine.peek(a) for a in range(8)}
    return memory, costs


class TestMemoryEquivalence:
    @given(programs, st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_qsm_sqsm_qsmgd_same_memory(self, program, seed):
        m1, _ = run_program(QSM(QSMParams(g=3), seed=seed), program)
        m2, _ = run_program(SQSM(SQSMParams(g=3), seed=seed), program)
        m3, _ = run_program(QSMGD(QSMGDParams(g=3, d=2), seed=seed), program)
        assert m1 == m2 == m3

    @given(programs, st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_qsmgd_d1_charges_qsm_rule(self, program, seed):
        _, c1 = run_program(QSM(QSMParams(g=4), seed=seed), program)
        _, c2 = run_program(QSMGD(QSMGDParams(g=4, d=1), seed=seed), program)
        assert c1 == c2

    @given(programs, st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_qsmgd_dg_charges_sqsm_rule(self, program, seed):
        _, c1 = run_program(SQSM(SQSMParams(g=4), seed=seed), program)
        _, c2 = run_program(QSMGD(QSMGDParams(g=4, d=4), seed=seed), program)
        assert c1 == c2

    @given(programs, st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_cost_ordering_qsm_le_gd_le_sqsm(self, program, seed):
        _, c1 = run_program(QSM(QSMParams(g=4), seed=seed), program)
        _, c2 = run_program(QSMGD(QSMGDParams(g=4, d=2), seed=seed), program)
        _, c3 = run_program(SQSM(SQSMParams(g=4), seed=seed), program)
        assert sum(c1) <= sum(c2) <= sum(c3)
