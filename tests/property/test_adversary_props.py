"""Property tests for the Section 5.1 oracle quantities.

The Random Adversary's correctness rests on structural facts about
Know / States / AffProc / AffCell / Cert that the paper uses implicitly.
We generate random *small* white-box GSM algorithms (random read/write
wiring over 4-5 inputs) and check the facts hold on every one:

* Know is the junta support: fixing everything in Know pins the trace.
* Know shrinks (never grows) under refinement of the partial map.
* States counts shrink under refinement.
* Aff-set duality: p is in AffProc(i) iff i is in Know(p).
* Cert is contained in Know and actually certifies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds.adversary import GSMOracle, PartialInputMap


def make_algorithm(wiring):
    """A deterministic 2-phase GSM algorithm from a random wiring spec.

    ``wiring`` is a list of (reader_proc, input_cell, dest_cell) triples:
    phase 1 reads input cells; phase 2 writes a value derived from the read
    bits to the destination cells.
    """

    def alg(machine, bits):
        n = len(bits)
        machine.load_packed(bits)
        handles = []
        with machine.phase() as ph:
            for proc, (reader, src, dest) in enumerate(wiring):
                handles.append((proc, dest, ph.read(proc, src % n)))
        with machine.phase() as ph:
            for proc, dest, h in handles:
                got = h.value
                bit = got[0] if isinstance(got, tuple) else got
                ph.write(proc, 100 + dest % 4, int(bit))

    return alg


wirings = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 4), st.integers(0, 3)),
    min_size=1,
    max_size=5,
)

partial_assignments = st.dictionaries(st.integers(0, 3), st.integers(0, 1), max_size=3)


@st.composite
def oracle_and_map(draw):
    wiring = draw(wirings)
    n = 4
    oracle = GSMOracle(make_algorithm(wiring), n)
    fixed = draw(partial_assignments)
    return oracle, PartialInputMap(n, fixed)


class TestKnowProperties:
    @given(oracle_and_map())
    @settings(max_examples=30, deadline=None)
    def test_know_pins_the_trace(self, pair):
        oracle, f = pair
        t = oracle.n_phases
        for cell in list(oracle.cells)[:6]:
            know = oracle.know(("cell", cell), t, f)
            # Group refinements by their values on Know: each group must be
            # trace-homogeneous.
            groups = {}
            for mask in f.consistent_masks():
                key = tuple((mask >> i) & 1 for i in sorted(know))
                groups.setdefault(key, set()).add(oracle.cell_trace(cell, t, mask))
            assert all(len(traces) == 1 for traces in groups.values())

    @given(oracle_and_map(), st.integers(0, 3), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_know_monotone_under_refinement(self, pair, var, val):
        oracle, f = pair
        if f[var] != "*":
            return
        t = oracle.n_phases
        f2 = f.refine({var: val})
        for cell in list(oracle.cells)[:5]:
            k1 = oracle.know(("cell", cell), t, f)
            k2 = oracle.know(("cell", cell), t, f2)
            assert k2 <= (k1 | {var})  # can only lose dependence

    @given(oracle_and_map(), st.integers(0, 3), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_states_shrink_under_refinement(self, pair, var, val):
        oracle, f = pair
        if f[var] != "*":
            return
        t = oracle.n_phases
        f2 = f.refine({var: val})
        for proc in list(oracle.processors)[:5]:
            s1 = len(oracle.states(("proc", proc), t, f))
            s2 = len(oracle.states(("proc", proc), t, f2))
            assert s2 <= s1


class TestAffDuality:
    @given(oracle_and_map())
    @settings(max_examples=25, deadline=None)
    def test_affproc_matches_know(self, pair):
        oracle, f = pair
        t = oracle.n_phases
        for i in f.unset_indices():
            aff = oracle.aff_proc(i, t, f)
            for proc in list(oracle.processors)[:6]:
                know = oracle.know(("proc", proc), t, f)
                assert (proc in aff) == (i in know)

    @given(oracle_and_map())
    @settings(max_examples=25, deadline=None)
    def test_affcell_matches_know(self, pair):
        oracle, f = pair
        t = oracle.n_phases
        for i in f.unset_indices():
            aff = oracle.aff_cell(i, t, f)
            for cell in list(oracle.cells)[:6]:
                know = oracle.know(("cell", cell), t, f)
                assert (cell in aff) == (i in know)


class TestCertProperties:
    @given(wirings, st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_cert_certifies_and_is_inside_know(self, wiring, mask):
        oracle = GSMOracle(make_algorithm(wiring), 4)
        t = oracle.n_phases
        full = PartialInputMap.from_mask(4, mask)
        blank = PartialInputMap.blank(4)
        for cell in list(oracle.cells)[:5]:
            cert = oracle.cert(("cell", cell), t, full)
            know = oracle.know(("cell", cell), t, blank)
            assert cert <= know
            # Fixing exactly the cert must pin the trace.
            partial = PartialInputMap(4, {i: (mask >> i) & 1 for i in cert})
            target = oracle.cell_trace(cell, t, mask)
            assert all(
                oracle.cell_trace(cell, t, m2) == target
                for m2 in partial.consistent_masks()
            )


class TestInfluenceConeContainsOracle:
    """Cross-machinery property: the linear-time influence cone computed on
    the merged (all-inputs) trace contains the exhaustive oracle's semantic
    AffProc/AffCell sets, for arbitrary random wirings."""

    @given(wirings)
    @settings(max_examples=20, deadline=None)
    def test_merged_cone_contains_aff_sets(self, wiring):
        from repro.core import GSM, GSMParams
        from repro.lowerbounds.influence import influence_cone, merge_traces

        n = 4
        alg = make_algorithm(wiring)
        oracle = GSMOracle(alg, n)
        runs = []
        for mask in range(1 << n):
            m = GSM(GSMParams(), record_trace=True)
            alg(m, [(mask >> j) & 1 for j in range(n)])
            runs.append(m.traces)
        merged = merge_traces(runs)
        blank = PartialInputMap.blank(n)
        t = oracle.n_phases
        for i in range(n):
            # load_packed puts input i in cell i (gamma = 1).
            cone = influence_cone(merged, [i])
            assert oracle.aff_cell(i, t, blank) <= cone.cells[-1]
            assert oracle.aff_proc(i, t, blank) <= cone.procs[-1]
