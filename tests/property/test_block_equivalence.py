"""Block operations are drop-in for scalar loops — property-checked.

``read_block`` / ``write_block`` / ``send_block`` promise *semantic
identity* with the per-operation loops: same PhaseRecord aggregates, same
phase costs, same final memory, same delivered values — on every machine,
for any access pattern, including colliding and duplicate addresses.  The
machines here are seeded identically, so even arbitrary-winner write
resolution must agree between the two executions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core import BSP, GSM, QSM, QSMGD, SQSM, BSPParams

# Per-processor write blocks over a small address range (forces collisions
# and duplicates) and per-processor read address lists.
write_programs = st.lists(
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(-5, 5)),
        max_size=6,
    ),
    min_size=1,
    max_size=4,
)
read_programs = st.lists(
    st.lists(st.integers(0, 11), max_size=6),
    min_size=1,
    max_size=4,
)

MACHINES = [
    pytest.param(lambda: QSM(seed=7, record_trace=True), id="qsm"),
    pytest.param(lambda: SQSM(seed=7, record_trace=True), id="sqsm"),
    pytest.param(lambda: QSMGD(seed=7, record_trace=True), id="qsm-gd"),
    pytest.param(lambda: GSM(seed=7, record_trace=True), id="gsm"),
]


class TestSharedMemoryEquivalence:
    @pytest.mark.parametrize("make", MACHINES)
    @given(writes=write_programs, reads=read_programs)
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_block_executions_identical(self, make, writes, reads):
        scalar, block = make(), make()

        with scalar.phase() as ph:
            for proc, items in enumerate(writes):
                for addr, value in items:
                    ph.write(proc, addr, value)
        with block.phase() as ph:
            for proc, items in enumerate(writes):
                ph.write_block(proc, items)

        with scalar.phase() as ph:
            scalar_handles = [
                [ph.read(proc, a) for a in addrs]
                for proc, addrs in enumerate(reads)
            ]
        with block.phase() as ph:
            block_handles = [
                ph.read_block(proc, addrs) for proc, addrs in enumerate(reads)
            ]

        assert scalar.history == block.history
        assert scalar.phase_costs == block.phase_costs
        assert scalar._memory == block._memory
        assert scalar.traces == block.traces
        assert [
            [h.value for h in hs] for hs in scalar_handles
        ] == [bh.values for bh in block_handles]


class TestBSPEquivalence:
    @given(
        program=st.lists(
            st.lists(
                st.tuples(st.integers(0, 3), st.integers(-5, 5)),
                max_size=6,
            ),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_block_sends_identical(self, program):
        scalar = BSP(4, BSPParams(g=2, L=2))
        block = BSP(4, BSPParams(g=2, L=2))

        with scalar.superstep() as ss:
            for src, msgs in enumerate(program):
                for dst, payload in msgs:
                    ss.send(src, dst, payload)
        with block.superstep() as ss:
            for src, msgs in enumerate(program):
                ss.send_block(src, msgs)

        assert scalar.history == block.history
        assert scalar.step_costs == block.step_costs
        assert all(scalar.inbox(i) == block.inbox(i) for i in range(4))
