"""Property-based tests (hypothesis) for the Boolean polynomial algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn.certificate import certificate_complexity, fact_2_3_holds
from repro.boolfn.multilinear import BooleanFunction, MultilinearPolynomial


def truth_tables(max_n=4, integer=False):
    def build(n):
        elems = st.integers(-5, 5) if integer else st.integers(0, 1)
        return st.lists(elems, min_size=1 << n, max_size=1 << n)

    return st.integers(1, max_n).flatmap(build)


class TestFact21Uniqueness:
    @given(truth_tables(integer=True))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_is_identity(self, table):
        # Fact 2.1: the representation is unique, so transform + inverse
        # recovers the table exactly (over the integers, no rounding).
        p = MultilinearPolynomial.from_truth_table(table)
        assert p.truth_table() == table

    @given(truth_tables(integer=True))
    @settings(max_examples=50, deadline=None)
    def test_evaluation_agrees_with_table(self, table):
        p = MultilinearPolynomial.from_truth_table(table)
        assert all(p.evaluate(a) == table[a] for a in range(len(table)))


class TestAlgebraLaws:
    @given(truth_tables(integer=True), truth_tables(integer=True))
    @settings(max_examples=60, deadline=None)
    def test_addition_pointwise(self, t1, t2):
        n = min(len(t1), len(t2))
        n = 1 << (n.bit_length() - 1)
        a = MultilinearPolynomial.from_truth_table(t1[:n])
        b = MultilinearPolynomial.from_truth_table(t2[:n])
        assert (a + b).truth_table() == [x + y for x, y in zip(t1[:n], t2[:n])]

    @given(truth_tables(max_n=3, integer=True), truth_tables(max_n=3, integer=True))
    @settings(max_examples=60, deadline=None)
    def test_multiplication_pointwise(self, t1, t2):
        n = min(len(t1), len(t2))
        n = 1 << (n.bit_length() - 1)
        a = MultilinearPolynomial.from_truth_table(t1[:n])
        b = MultilinearPolynomial.from_truth_table(t2[:n])
        assert (a * b).truth_table() == [x * y for x, y in zip(t1[:n], t2[:n])]


class TestFact22Properties:
    @given(truth_tables(), truth_tables())
    @settings(max_examples=60, deadline=None)
    def test_and_or_degree_bounds(self, t1, t2):
        n = min(len(t1), len(t2))
        n = 1 << (n.bit_length() - 1)
        f = BooleanFunction((n - 1).bit_length(), t1[:n])
        g = BooleanFunction((n - 1).bit_length(), t2[:n])
        assert (f & g).degree <= f.degree + g.degree
        assert (f | g).degree <= f.degree + g.degree

    @given(truth_tables())
    @settings(max_examples=60, deadline=None)
    def test_negation_preserves_degree_or_both_constant(self, table):
        f = BooleanFunction((len(table) - 1).bit_length(), table)
        g = ~f
        if f.is_constant():
            assert g.degree == 0
        else:
            assert g.degree == f.degree

    @given(truth_tables(), st.integers(0, 3), st.integers(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_restriction_never_raises_degree(self, table, var, val):
        n = (len(table) - 1).bit_length()
        f = BooleanFunction(n, table)
        assert f.restrict({var % n: val}).degree <= f.degree


class TestFact23Property:
    @given(truth_tables(max_n=3))
    @settings(max_examples=40, deadline=None)
    def test_certificate_vs_degree_fourth_power(self, table):
        f = BooleanFunction((len(table) - 1).bit_length(), table)
        assert fact_2_3_holds(f)

    @given(truth_tables(max_n=3))
    @settings(max_examples=40, deadline=None)
    def test_certificate_at_most_n(self, table):
        n = (len(table) - 1).bit_length()
        f = BooleanFunction(n, table)
        assert 0 <= certificate_complexity(f) <= n
