"""WriteEntry discrimination with tuple-like payloads (bugfix-sweep audit).

A pending write is stored either as a bare value (bulk ``write_block``
path) or as a ``(proc, value)`` pair (scalar ``write`` path), and
``_first_writer`` / collision resolution must tell them apart.  The
hazard: a *user payload that is itself a 2-tuple of ints* is shape-
identical to the ``(proc, value)`` encoding.  The audit found the
discrimination sound — block writes are tracked via ``_block_origins``
rather than by sniffing the stored value — and these properties pin
that: tuple payloads round-trip bit-exactly through both the scalar and
block write paths, under collisions, on both engines.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QSM, SQSM, QSMParams, SQSMParams

ENGINES = ["reference", "vector"]

payloads = st.one_of(
    # The adversarial shape: (small-int, small-int) looks exactly like a
    # (proc, value) pair.
    st.tuples(st.integers(0, 7), st.integers(-5, 5)),
    st.tuples(st.integers(0, 7), st.integers(-5, 5), st.integers(0, 3)),
    st.tuples(),
    st.integers(-5, 5),
)


def _make(engine):
    if engine == "vector":
        pytest.importorskip("numpy")
    return QSM(QSMParams(g=2), seed=13, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestTuplePayloadRoundTrip:
    @given(payload=payloads, addr=st.integers(0, 15), proc=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_scalar_write_round_trips(self, engine, payload, addr, proc):
        machine = _make(engine)
        with machine.phase() as ph:
            ph.write(proc, addr, payload)
        with machine.phase() as ph:
            handle = ph.read(0, addr)
        assert handle.value == payload
        assert type(handle.value) is type(payload)

    @given(
        payload_a=payloads,
        payload_b=payloads,
        base=st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_write_round_trips(self, engine, payload_a, payload_b, base):
        machine = _make(engine)
        with machine.phase() as ph:
            ph.write_block(1, [(base, payload_a), (base + 1, payload_b)])
        with machine.phase() as ph:
            handle = ph.read_block(2, [base, base + 1])
        assert list(handle.values) == [payload_a, payload_b]
        assert [type(v) for v in handle.values] == [
            type(payload_a),
            type(payload_b),
        ]

    @given(
        payload=st.tuples(st.integers(0, 7), st.integers(-5, 5)),
        addr=st.integers(0, 15),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_colliding_tuple_writes_pick_a_real_payload(
        self, engine, payload, addr, seed
    ):
        # Scalar write vs block write of tuple payloads colliding on one
        # cell: whichever wins, the surviving value must be one of the two
        # user payloads — never a (proc, value) wrapper or an unwrapped
        # member of one.
        other = (payload[0] + 1, payload[1] - 1)
        if engine == "vector":
            pytest.importorskip("numpy")
        machine = SQSM(SQSMParams(g=2), seed=seed, engine=engine)
        with machine.phase() as ph:
            ph.write(3, addr, payload)
            ph.write_block(5, [(addr, other)])
        with machine.phase() as ph:
            handle = ph.read(0, addr)
        assert handle.value in (payload, other)

    @given(
        payload=st.tuples(st.integers(0, 7), st.integers(-5, 5)),
        addr=st.integers(0, 15),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_collision_winner_identical_across_engines(
        self, engine, payload, addr, seed
    ):
        # Same seed => same arbitrary-winner draw => same surviving tuple,
        # regardless of engine.  (engine param names the non-reference side.)
        if engine == "vector":
            pytest.importorskip("numpy")
        other = (payload[0] + 2, payload[1] + 3)

        def run(eng):
            m = QSM(QSMParams(g=2), seed=seed, engine=eng)
            with m.phase() as ph:
                ph.write(1, addr, payload)
                ph.write(2, addr, other)
                ph.write_block(3, [(addr, (9, 9))])
            with m.phase() as ph:
                h = ph.read(0, addr)
            return h.value

        assert run("reference") == run(engine)
