"""Executor equivalence: serial, process-per-point and warm-pool sweeps
must be bit-identical.

The warm pool (repro.sched.pool) replaces process-per-point execution as
parallel_sweep's worker backend; its whole contract is that *where* a
point runs is invisible in the results.  These properties pin that:
random grids, seeded and unseeded, produce byte-for-byte equal outcome
lists under every executor, and a store-backed re-run (resume) changes
nothing either.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.parallel_sweep import parallel_sweep
from repro.sched.pool import WorkerPool
from repro.sched.store import ResultStore


def seeded_point(x, k, seed=0):
    """Deterministic pseudo-measurement mixing params and derived seed."""
    h = (x * 1_000_003 + k * 101 + seed * 17) % 65_521
    return {
        "measured": float(h),
        "correct": True,
        "detail": {"x": x, "k": k, "seed": seed},
    }


# One pool for the whole module: spawning processes per hypothesis example
# would swamp the test; reusing the pool is also exactly the production
# usage pattern (many sweeps, one warm pool).
_POOL = None


def shared_pool():
    global _POOL
    if _POOL is None or _POOL._closed:
        _POOL = WorkerPool(jobs=2)
    return _POOL


def teardown_module():
    if _POOL is not None:
        _POOL.shutdown()


grids = st.builds(
    lambda xs, ks: {"x": sorted(xs), "k": sorted(ks)},
    st.lists(st.integers(0, 50), min_size=1, max_size=3, unique=True),
    st.lists(st.integers(0, 50), min_size=1, max_size=2, unique=True),
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=grids, base_seed=st.integers(0, 2**16))
def test_serial_and_pool_sweeps_bit_identical(grid, base_seed):
    serial = parallel_sweep(
        grid, seeded_point, executor="serial", jobs=1,
        seed_arg="seed", base_seed=base_seed,
    )
    pooled = parallel_sweep(
        grid, seeded_point, executor="pool", pool=shared_pool(),
        seed_arg="seed", base_seed=base_seed,
    )
    assert serial == pooled


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=grids, base_seed=st.integers(0, 2**16))
def test_store_backed_rerun_is_identical(grid, base_seed, tmp_path_factory):
    store = ResultStore(str(tmp_path_factory.mktemp("store")))
    live = parallel_sweep(
        grid, seeded_point, executor="pool", pool=shared_pool(),
        seed_arg="seed", base_seed=base_seed, store=store,
    )
    resumed = parallel_sweep(
        grid, seeded_point, executor="pool", pool=shared_pool(),
        seed_arg="seed", base_seed=base_seed, store=store,
    )
    assert live == resumed
    assert store.stats().entries == len(live)


def test_all_three_executors_bit_identical_on_a_real_grid():
    """The non-hypothesis anchor: serial == process-per-point == warm pool
    on a multi-axis seeded grid (process-per-point is too slow to run under
    hypothesis, so it gets one thorough deterministic case)."""
    grid = {"x": [1, 5, 9, 13], "k": [0, 3]}
    runs = {
        executor: parallel_sweep(
            grid, seeded_point, executor=executor, jobs=2,
            seed_arg="seed", base_seed=42,
        )
        for executor in ("serial", "process", "pool")
    }
    assert runs["serial"] == runs["process"] == runs["pool"]
    assert all(p.correct for p in runs["serial"])
