"""Property tests for BSP delivery semantics against a reference queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BSP, BSPParams

# A superstep is a list of (src, dst, payload) sends.
sends = st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 99))
supersteps = st.lists(st.lists(sends, max_size=8), min_size=1, max_size=5)


class TestDeliverySemantics:
    @given(supersteps)
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_delivery(self, program):
        """Every message sent in superstep t is in exactly one inbox during
        superstep t+1, and nowhere afterwards."""
        b = BSP(4, BSPParams(g=1, L=1))
        for step in program:
            with b.superstep() as ss:
                for src, dst, payload in step:
                    ss.send(src, dst, payload)
            delivered = sorted(
                (src, dst, payload)
                for dst in range(4)
                for src, payload in b.inbox(dst)
            )
            assert delivered == sorted(step)

    @given(supersteps)
    @settings(max_examples=40, deadline=None)
    def test_inboxes_cleared_each_superstep(self, program):
        b = BSP(4, BSPParams(g=1, L=1))
        for step in program:
            with b.superstep() as ss:
                for src, dst, payload in step:
                    ss.send(src, dst, payload)
        # One empty superstep flushes everything.
        with b.superstep() as ss:
            ss.local(0, 1)
        assert all(b.inbox(i) == [] for i in range(4))

    @given(st.lists(sends, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_h_relation_is_max_send_receive(self, step):
        b = BSP(4, BSPParams(g=1, L=1))
        with b.superstep() as ss:
            for src, dst, payload in step:
                ss.send(src, dst, payload)
        rec = b.history[0]
        sent = [0] * 4
        recv = [0] * 4
        for src, dst, _ in step:
            sent[src] += 1
            recv[dst] += 1
        assert rec.h == max(max(sent), max(recv))

    @given(st.lists(sends, min_size=1, max_size=12), st.floats(1.0, 8.0), st.floats(8.0, 64.0))
    @settings(max_examples=40, deadline=None)
    def test_superstep_cost_formula(self, step, g, L):
        b = BSP(4, BSPParams(g=g, L=L))
        with b.superstep() as ss:
            for src, dst, payload in step:
                ss.send(src, dst, payload)
        rec = b.history[0]
        assert b.step_costs[0] == max(rec.w, g * rec.h, L)

    @given(supersteps)
    @settings(max_examples=30, deadline=None)
    def test_order_within_inbox_by_sender(self, program):
        b = BSP(4, BSPParams(g=1, L=1))
        for step in program:
            with b.superstep() as ss:
                for src, dst, payload in step:
                    ss.send(src, dst, payload)
            for dst in range(4):
                senders = [src for src, _ in b.inbox(dst)]
                assert senders == sorted(senders)
