"""Property tests for the cost-provenance invariants.

On random programs, for every model: each phase's recorded charge is the
max of its term decomposition, the per-term maxima add up to the
machine's total time, and records rebuilt after the fact agree with live
ones except for wall time (which only exists live).
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BSP,
    GSM,
    QSM,
    SQSM,
    BSPParams,
    GSMParams,
    QSMParams,
    SQSMParams,
)
from repro.obs import machine_cost_records

N_PROCS = 6
N_CELLS = 8

# One shared-memory phase: either all-reads or all-writes (reading and
# writing one cell in the same phase is illegal on the QSM family), plus
# local work.  Entries are (proc, addr) pairs; locals are (proc, ops).
accesses = st.lists(
    st.tuples(st.integers(0, N_PROCS - 1), st.integers(0, N_CELLS - 1)),
    min_size=1,
    max_size=10,
)
locals_ = st.lists(
    st.tuples(st.integers(0, N_PROCS - 1), st.integers(1, 5)), max_size=3
)
phases = st.lists(
    st.tuples(st.booleans(), accesses, locals_), min_size=1, max_size=6
)


def run_program(machine, program):
    machine.load([0] * N_CELLS)
    for is_read, pairs, local_ops in program:
        with machine.phase() as ph:
            if is_read:
                for proc, addr in pairs:
                    ph.read(proc, addr)
            else:
                for proc, addr in pairs:
                    ph.write(proc, addr, proc)
            for proc, ops in local_ops:
                ph.local(proc, ops)
    return machine


def shared_machines(record_costs):
    return [
        QSM(QSMParams(g=3.0), record_costs=record_costs),
        QSM(QSMParams(g=3.0, unit_time_concurrent_reads=True), record_costs=record_costs),
        SQSM(SQSMParams(g=2.0), record_costs=record_costs),
        GSM(GSMParams(alpha=2, beta=3), record_costs=record_costs),
    ]


class TestSharedMemoryInvariants:
    @given(phases)
    @settings(max_examples=60, deadline=None)
    def test_cost_is_max_of_terms(self, program):
        for machine in shared_machines(record_costs=True):
            run_program(machine, program)
            for rec, cost in zip(machine.cost_records, machine.phase_costs):
                assert rec.cost == max(rec.terms.values()) == cost

    @given(phases)
    @settings(max_examples=60, deadline=None)
    def test_term_maxima_sum_to_machine_time(self, program):
        for machine in shared_machines(record_costs=True):
            run_program(machine, program)
            total = sum(max(rec.terms.values()) for rec in machine.cost_records)
            assert total == machine.time

    @given(phases)
    @settings(max_examples=40, deadline=None)
    def test_rebuilt_records_match_live(self, program):
        for live, cold in zip(
            shared_machines(record_costs=True), shared_machines(record_costs=False)
        ):
            run_program(live, program)
            run_program(cold, program)
            assert machine_cost_records(cold) == [
                replace(rec, wall_time=0.0) for rec in live.cost_records
            ]


# One BSP superstep: messages as (src, dst) pairs plus local work.
supersteps = st.lists(
    st.tuples(
        st.lists(
            st.tuples(st.integers(0, N_PROCS - 1), st.integers(0, N_PROCS - 1)),
            max_size=10,
        ),
        locals_,
    ),
    min_size=1,
    max_size=5,
)


def run_bsp(machine, program):
    for msgs, local_ops in program:
        with machine.superstep() as ss:
            for src, dst in msgs:
                ss.send(src, dst, (src, dst))
            for proc, ops in local_ops:
                ss.local(proc, ops)
    return machine


class TestBSPInvariants:
    @given(supersteps)
    @settings(max_examples=60, deadline=None)
    def test_cost_is_max_of_terms_and_sums_to_time(self, program):
        machine = run_bsp(BSP(N_PROCS, BSPParams(g=2.0, L=6.0), record_costs=True), program)
        for rec, cost in zip(machine.cost_records, machine.step_costs):
            assert rec.cost == max(rec.terms.values()) == cost
        assert sum(max(r.terms.values()) for r in machine.cost_records) == machine.time

    @given(supersteps)
    @settings(max_examples=40, deadline=None)
    def test_rebuilt_records_match_live(self, program):
        live = run_bsp(BSP(N_PROCS, BSPParams(g=2.0, L=6.0), record_costs=True), program)
        cold = run_bsp(BSP(N_PROCS, BSPParams(g=2.0, L=6.0)), program)
        assert machine_cost_records(cold) == [
            replace(rec, wall_time=0.0) for rec in live.cost_records
        ]
