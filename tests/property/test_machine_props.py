"""Property-based tests for the cost simulators' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.cost import gsm_phase_cost, qsm_phase_cost, sqsm_phase_cost
from repro.core.phase import PhaseRecord


def phase_records():
    counts = st.dictionaries(st.integers(0, 7), st.integers(1, 10), max_size=5)
    return st.builds(
        PhaseRecord,
        index=st.just(0),
        reads_per_proc=counts,
        writes_per_proc=counts,
        ops_per_proc=counts,
        read_queue=counts,
        write_queue=counts,
    )


class TestCostProperties:
    @given(phase_records(), st.floats(1.0, 64.0))
    @settings(max_examples=100, deadline=None)
    def test_sqsm_at_least_qsm(self, record, g):
        # Charging contention the gap can only increase cost.
        assert sqsm_phase_cost(record, SQSMParams(g=g)) >= qsm_phase_cost(
            record, QSMParams(g=g)
        )

    @given(phase_records(), st.floats(1.0, 32.0), st.floats(1.0, 32.0))
    @settings(max_examples=100, deadline=None)
    def test_qsm_cost_monotone_in_g(self, record, g1, g2):
        lo, hi = sorted((g1, g2))
        assert qsm_phase_cost(record, QSMParams(g=lo)) <= qsm_phase_cost(
            record, QSMParams(g=hi)
        )

    @given(phase_records())
    @settings(max_examples=100, deadline=None)
    def test_costs_positive(self, record):
        assert qsm_phase_cost(record, QSMParams(g=2)) > 0
        assert gsm_phase_cost(record, GSMParams(alpha=2, beta=2)) > 0

    @given(phase_records(), st.floats(1.0, 8.0), st.floats(1.0, 8.0))
    @settings(max_examples=100, deadline=None)
    def test_gsm_never_exceeds_naive_sum(self, record, alpha, beta):
        prm = GSMParams(alpha=alpha, beta=beta)
        naive = prm.mu * (record.m_rw + record.kappa + 2)
        assert gsm_phase_cost(record, prm) <= naive

    @given(phase_records())
    @settings(max_examples=60, deadline=None)
    def test_unit_time_reads_never_cost_more(self, record):
        plain = qsm_phase_cost(record, QSMParams(g=3))
        free = qsm_phase_cost(record, QSMParams(g=3, unit_time_concurrent_reads=True))
        assert free <= plain


class TestMemorySemanticsAgainstSequentialReference:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 9), st.integers(0, 99)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_single_writer_phases_match_dict_semantics(self, ops):
        """With one writer per cell per phase, the QSM memory is exactly a
        dict applied phase by phase."""
        m = QSM()
        reference = {}
        for proc, addr, value in ops:
            with m.phase() as ph:
                ph.write(proc, addr, value)
            reference[addr] = value
        for addr in reference:
            assert m.peek(addr) == reference[addr]

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=15), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_concurrent_write_winner_among_writers(self, values, seed):
        m = QSM(seed=seed)
        with m.phase() as ph:
            for i, v in enumerate(values):
                ph.write(i, 0, v)
        assert m.peek(0) in values

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_gsm_accumulates_exactly_the_multiset(self, values):
        g = GSM()
        with g.phase() as ph:
            for i, v in enumerate(values):
                ph.write(i, 0, v)
        assert sorted(g.peek(0)) == sorted(values)


class TestTimeAccounting:
    @given(st.lists(st.integers(1, 8), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_time_is_sum_of_phase_costs(self, fanouts):
        m = QSM(QSMParams(g=2))
        for k in fanouts:
            with m.phase() as ph:
                for a in range(k):
                    ph.read(0, a)
        assert m.time == sum(m.phase_costs)
        assert m.phase_costs == [2.0 * k for k in fanouts]

    @given(st.integers(1, 6), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_bsp_h_relation_accounting(self, p, msgs):
        b = BSP(p, BSPParams(g=2, L=2))
        with b.superstep() as ss:
            for k in range(msgs):
                ss.send(k % p, (k + 1) % p, k)
        rec = b.history[0]
        assert rec.total_messages == msgs
        assert b.time >= 2.0
