"""engine="reference" == engine="vector" — bit-equality, property-checked.

The vector engine promises to be a drop-in for the reference engine: same
``PhaseRecord`` / ``SuperstepRecord`` streams, same phase costs and cost
records, same final memory, same delivered read values and inboxes, same
traces — and the same winner-policy RNG draws, so even arbitrary-winner
collisions resolve identically on seeded machines.  Randomized IR programs
(scalar and block reads/writes, local charges, collisions, duplicates,
conflicts, faults) are replayed through both engines and every observable
compared.
"""

from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BSP,
    GSM,
    PRAM,
    QSM,
    QSMGD,
    SQSM,
    BSPParams,
    LocalOp,
    MemoryConflictError,
    PRAMParams,
    ReadBlockOp,
    ReadOp,
    SendBlockOp,
    SendOp,
    WorkOp,
    WriteBlockOp,
    WriteOp,
    run_phase,
    run_superstep,
)
from repro.faults.plan import random_fault_plan
from repro.faults.winners import FirstWriterWins, LastWriterWins, SeededWinners
from repro.models import MPC, PEM, MPCParams, PEMParams

ADDRS = st.integers(0, 15)
VALUES = st.integers(-5, 5)
PROCS = st.integers(0, 3)


def _block_addrs():
    # Mix of explicit address lists and contiguous ranges: ranges take the
    # vector engine's interval fast paths, lists its np.unique paths.
    explicit = st.lists(ADDRS, min_size=0, max_size=6)
    contiguous = st.tuples(ADDRS, st.integers(0, 6)).map(
        lambda t: range(t[0], t[0] + t[1])
    )
    return st.one_of(explicit, contiguous)


def _write_ops():
    return st.one_of(
        st.builds(WriteOp, PROCS, ADDRS, VALUES),
        st.builds(
            lambda proc, addrs, seed: WriteBlockOp(
                proc, addrs, [seed + i for i in range(len(addrs))]
            ),
            PROCS,
            _block_addrs(),
            VALUES,
        ),
        st.builds(LocalOp, PROCS, st.integers(0, 4)),
    )


def _read_ops():
    return st.one_of(
        st.builds(ReadOp, PROCS, ADDRS),
        st.builds(ReadBlockOp, PROCS, _block_addrs()),
        st.builds(LocalOp, PROCS, st.integers(0, 4)),
    )


write_phases = st.lists(_write_ops(), min_size=0, max_size=8)
read_phases = st.lists(_read_ops(), min_size=0, max_size=8)

MACHINES = [
    pytest.param(
        lambda eng: QSM(seed=7, record_trace=True, record_costs=True, engine=eng),
        id="qsm",
    ),
    pytest.param(
        lambda eng: SQSM(seed=7, record_trace=True, record_costs=True, engine=eng),
        id="sqsm",
    ),
    pytest.param(
        lambda eng: QSMGD(seed=7, record_trace=True, record_costs=True, engine=eng),
        id="qsm-gd",
    ),
    pytest.param(
        lambda eng: GSM(seed=7, record_trace=True, record_costs=True, engine=eng),
        id="gsm",
    ),
    pytest.param(
        lambda eng: PEM(
            PEMParams(M=16, B=4), seed=7, record_trace=True,
            record_costs=True, engine=eng,
        ),
        id="pem",
    ),
]


def _sans_wall(records):
    # wall_time is real elapsed clock — the one field that legitimately
    # differs between engines.
    return [replace(r, wall_time=0.0) for r in records]


def _read_values(handles):
    out = []
    for h in handles:
        if hasattr(h, "values"):
            out.append(list(h.values))
        else:
            out.append(h.value)
    return out


def _assert_machines_equal(ref, vec):
    assert ref.history == vec.history
    assert vec.history == ref.history  # reflected CountQueue equality too
    assert ref.phase_costs == vec.phase_costs
    assert ref.time == vec.time
    assert ref._memory == vec._memory
    assert vec._memory == ref._memory
    assert ref.traces == vec.traces
    assert _sans_wall(ref.cost_records) == _sans_wall(vec.cost_records)


def _run_both(make, writes, reads):
    ref, vec = make("reference"), make("vector")
    results = []
    for machine in (ref, vec):
        vals = []
        try:
            vals.append(_read_values(run_phase(machine, writes)))
            vals.append(_read_values(run_phase(machine, reads)))
            results.append(("ok", vals))
        except MemoryConflictError as exc:
            results.append(("conflict", str(exc)))
    # Identical outcome: both conflict with the same message, or both
    # succeed with identical observables.
    assert results[0] == results[1]
    if results[0][0] == "ok":
        _assert_machines_equal(ref, vec)
    return results[0]


class TestSharedMemoryBitEquality:
    @pytest.mark.parametrize("make", MACHINES)
    @given(writes=write_phases, reads=read_phases)
    @settings(max_examples=60, deadline=None)
    def test_engines_identical_on_random_programs(self, make, writes, reads):
        _run_both(make, writes, reads)

    @pytest.mark.parametrize("make", MACHINES)
    @given(writes=write_phases, reads=read_phases)
    @settings(max_examples=25, deadline=None)
    def test_engines_identical_on_mixed_conflicting_phases(self, make, writes, reads):
        # Interleave reads and writes in one phase so conflict detection
        # (and its error messages) is exercised, not just clean programs.
        _run_both(make, writes + reads, reads + writes)

    @pytest.mark.parametrize(
        "policy",
        [FirstWriterWins(), LastWriterWins(), SeededWinners(99)],
        ids=["first", "last", "seeded"],
    )
    @given(writes=write_phases)
    @settings(max_examples=25, deadline=None)
    def test_winner_policies_replay_identically(self, policy, writes):
        make = lambda eng: QSM(seed=11, winner_policy=policy, engine=eng)
        ref, vec = make("reference"), make("vector")
        for machine in (ref, vec):
            policy.reset()
            run_phase(machine, writes)
        assert ref.history == vec.history
        assert ref._memory == vec._memory

    @pytest.mark.parametrize(
        "policy",
        [FirstWriterWins(), LastWriterWins(), SeededWinners(99)],
        ids=["first", "last", "seeded"],
    )
    @given(writes=write_phases)
    @settings(max_examples=15, deadline=None)
    def test_pem_winner_policies_replay_identically(self, policy, writes):
        # PEM routes collisions through the same _pick_winner choke point
        # as the QSM family; the draws must be engine-independent there too.
        make = lambda eng: PEM(
            PEMParams(M=16, B=4), seed=11, winner_policy=policy, engine=eng
        )
        ref, vec = make("reference"), make("vector")
        for machine in (ref, vec):
            policy.reset()
            run_phase(machine, writes)
        assert ref.history == vec.history
        assert ref._memory == vec._memory
        assert ref.phase_costs == vec.phase_costs

    @given(writes=write_phases, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_fault_plans_fire_identically(self, writes, seed):
        def run(eng):
            plan = random_fault_plan("shared", seed=seed, max_faults=2)
            machine = QSM(seed=5, fault_plan=plan, record_costs=True, engine=eng)
            for _ in range(3):
                run_phase(machine, writes)
            return machine

        ref, vec = run("reference"), run("vector")
        assert ref.history == vec.history
        assert ref.phase_costs == vec.phase_costs
        assert ref._memory == vec._memory
        assert [e.to_dict() for e in ref.fault_events] == [
            e.to_dict() for e in vec.fault_events
        ]
        assert _sans_wall(ref.cost_records) == _sans_wall(vec.cost_records)


class TestPRAMBitEquality:
    @given(
        addrs=st.lists(st.integers(0, 7), min_size=1, max_size=4, unique=True),
        value=VALUES,
    )
    @settings(max_examples=25, deadline=None)
    def test_crcw_step_identical(self, addrs, value):
        def make(eng):
            return PRAM(
                PRAMParams(variant="CRCW", write_rule="arbitrary"),
                seed=3,
                engine=eng,
            )

        prog = [WriteOp(i, a, value + i) for i, a in enumerate(addrs)]
        ref, vec = make("reference"), make("vector")
        run_phase(ref, prog)
        run_phase(vec, prog)
        assert ref.history == vec.history
        assert ref._memory == vec._memory


class TestBSPBitEquality:
    send_programs = st.lists(
        st.one_of(
            st.builds(SendOp, st.integers(0, 3), st.integers(0, 3), VALUES),
            st.builds(
                lambda src, dsts, seed: SendBlockOp(
                    src, dsts, [seed + i for i in range(len(dsts))]
                ),
                st.integers(0, 3),
                st.lists(st.integers(0, 3), min_size=0, max_size=6),
                VALUES,
            ),
            st.builds(WorkOp, st.integers(0, 3), st.integers(0, 4)),
        ),
        min_size=0,
        max_size=8,
    )

    @given(program=send_programs)
    @settings(max_examples=60, deadline=None)
    def test_superstep_streams_identical(self, program):
        def make(eng):
            return BSP(4, BSPParams(g=2, L=2), record_costs=True, engine=eng)

        ref, vec = make("reference"), make("vector")
        for machine in (ref, vec):
            run_superstep(machine, program)
            run_superstep(machine, program[::-1])
        assert ref.history == vec.history
        assert ref.step_costs == vec.step_costs
        assert all(ref.inbox(i) == vec.inbox(i) for i in range(4))
        assert _sans_wall(ref.cost_records) == _sans_wall(vec.cost_records)

    @given(program=send_programs, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_fault_plans_route_identically(self, program, seed):
        def run(eng):
            plan = random_fault_plan("bsp", seed=seed, max_faults=2, procs=4)
            machine = BSP(4, BSPParams(g=2, L=2), fault_plan=plan, engine=eng)
            for _ in range(3):
                run_superstep(machine, program)
            return machine

        ref, vec = run("reference"), run("vector")
        assert ref.history == vec.history
        assert ref.step_costs == vec.step_costs
        assert all(ref.inbox(i) == vec.inbox(i) for i in range(4))
        assert [e.to_dict() for e in ref.fault_events] == [
            e.to_dict() for e in vec.fault_events
        ]


class TestMPCBitEquality:
    # MPC is a BSP subclass with a different round charge, so the same
    # randomized send programs exercise its commit path; records, round
    # costs and inboxes must match across engines bit-for-bit.
    send_programs = TestBSPBitEquality.send_programs

    @given(program=send_programs)
    @settings(max_examples=60, deadline=None)
    def test_round_streams_identical(self, program):
        def make(eng):
            return MPC(4, MPCParams(s=3), record_costs=True, engine=eng)

        ref, vec = make("reference"), make("vector")
        for machine in (ref, vec):
            run_superstep(machine, program)
            run_superstep(machine, program[::-1])
        assert ref.history == vec.history
        assert ref.step_costs == vec.step_costs
        assert ref.rounds == vec.rounds
        assert ref.max_message_volume == vec.max_message_volume
        assert all(ref.inbox(i) == vec.inbox(i) for i in range(4))
        assert _sans_wall(ref.cost_records) == _sans_wall(vec.cost_records)

    @given(program=send_programs, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_fault_plans_route_identically(self, program, seed):
        def run(eng):
            plan = random_fault_plan("bsp", seed=seed, max_faults=2, procs=4)
            machine = MPC(4, MPCParams(s=3), fault_plan=plan, engine=eng)
            for _ in range(3):
                run_superstep(machine, program)
            return machine

        ref, vec = run("reference"), run("vector")
        assert ref.history == vec.history
        assert ref.step_costs == vec.step_costs
        assert all(ref.inbox(i) == vec.inbox(i) for i in range(4))
        assert [e.to_dict() for e in ref.fault_events] == [
            e.to_dict() for e in vec.fault_events
        ]
