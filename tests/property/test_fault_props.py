"""Property-based robustness: winner policies and random tolerated faults.

Two families of properties:

* **Winner independence** — the Section 8 shared-memory algorithms must be
  correct under *every* winner policy (the models' "arbitrary" rule is
  adversarial), including replay policies forcing arbitrary decisions.
* **Fault survival** — under a random transient fault schedule
  (:func:`repro.faults.plan.random_fault_plan`), the self-checking harness
  (verify + retry on a fresh machine) must converge to a correct answer:
  transient faults spend themselves, so attempt 2 is clean.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.or_ import or_bsp, or_tree_writes
from repro.algorithms.parity import parity_bsp, parity_tree
from repro.algorithms.prefix import prefix_sums_bsp
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.faults.harness import ChaosCase, run_self_checking
from repro.faults.plan import random_fault_plan
from repro.faults.winners import FirstWriterWins, LastWriterWins, ReplayWinners, SeededWinners

bits_lists = st.lists(st.integers(0, 1), min_size=1, max_size=32)

policies = st.one_of(
    st.builds(FirstWriterWins),
    st.builds(LastWriterWins),
    st.builds(SeededWinners, st.integers(0, 2**20)),
    st.builds(
        ReplayWinners,
        st.dictionaries(st.integers(0, 40), st.integers(0, 7), max_size=8),
    ),
)


class TestWinnerIndependence:
    @given(bits_lists, policies)
    @settings(max_examples=50, deadline=None)
    def test_parity_tree_any_policy(self, bits, policy):
        machine = QSM(QSMParams(g=2), winner_policy=policy)
        assert parity_tree(machine, bits).value == sum(bits) % 2

    @given(bits_lists, policies)
    @settings(max_examples=50, deadline=None)
    def test_or_tournament_any_policy(self, bits, policy):
        machine = SQSM(SQSMParams(g=2), winner_policy=policy)
        assert or_tree_writes(machine, bits).value == (1 if any(bits) else 0)

    @given(bits_lists, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_seeded_policy_is_bit_compatible_with_machine_default(self, bits, seed):
        plain = or_tree_writes(QSM(QSMParams(g=2), seed=seed), bits)
        policied = or_tree_writes(
            QSM(QSMParams(g=2), seed=seed, winner_policy=SeededWinners(seed)), bits
        )
        assert plain.value == policied.value
        assert plain.time == policied.time


class TestFaultSurvival:
    # The plans carry up to 2 faults, and faults can fire across *different*
    # attempts (e.g. a crash spends itself in attempt 1 while a delay only
    # reaches its trigger step in attempt 2) — so a clean attempt is only
    # guaranteed by attempt max_faults + 1 = 3.
    @given(bits_lists, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_parity_tree_survives_random_corruption(self, bits, seed):
        plan = random_fault_plan("shared", seed=seed, max_faults=2)
        case = ChaosCase(
            "parity", "shared",
            lambda winner_policy=None, fault_plan=None: parity_tree(
                QSM(QSMParams(g=2), winner_policy=winner_policy, fault_plan=fault_plan),
                bits,
            ).value,
            verify=lambda v: v == sum(bits) % 2,
        )
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok, outcome.note

    @given(bits_lists, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_bsp_parity_survives_random_message_faults(self, bits, seed):
        plan = random_fault_plan("bsp", seed=seed, max_faults=2, procs=4)
        case = ChaosCase(
            "parity-bsp", "bsp",
            lambda winner_policy=None, fault_plan=None: parity_bsp(
                BSP(4, BSPParams(g=2.0, L=8.0), fault_plan=fault_plan), bits
            ).value,
            verify=lambda v: v == sum(bits) % 2,
        )
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok, outcome.note

    @given(
        st.lists(st.integers(-20, 20), min_size=1, max_size=24),
        st.integers(0, 2**20),
    )
    @settings(max_examples=20, deadline=None)
    def test_bsp_prefix_sums_survive_random_message_faults(self, values, seed):
        from itertools import accumulate

        plan = random_fault_plan("bsp", seed=seed, max_faults=2, procs=4)
        truth = list(accumulate(values))
        case = ChaosCase(
            "prefix-bsp", "bsp",
            lambda winner_policy=None, fault_plan=None: prefix_sums_bsp(
                BSP(4, BSPParams(g=2.0, L=8.0), fault_plan=fault_plan), values
            ).value,
            verify=lambda v: list(v) == truth,
        )
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok, outcome.note

    @given(bits_lists, st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_bsp_or_survives_random_message_faults(self, bits, seed):
        plan = random_fault_plan("bsp", seed=seed, max_faults=2, procs=4)
        case = ChaosCase(
            "or-bsp", "bsp",
            lambda winner_policy=None, fault_plan=None: or_bsp(
                BSP(4, BSPParams(g=2.0, L=8.0), fault_plan=fault_plan), bits
            ).value,
            verify=lambda v: v == (1 if any(bits) else 0),
        )
        outcome = run_self_checking(case, fault_plan=plan, max_attempts=3)
        assert outcome.ok, outcome.note
