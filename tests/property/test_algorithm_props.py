"""Property-based correctness for the Section 8 algorithms."""

from itertools import accumulate

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.list_ranking import list_rank
from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_blocks, parity_tree
from repro.algorithms.prefix import prefix_sums
from repro.algorithms.sorting import sample_sort_bsp, sort_shared
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.problems import verify_lac, verify_list_ranks

bits_lists = st.lists(st.integers(0, 1), min_size=1, max_size=64)


class TestParityProperties:
    @given(bits_lists, st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_tree_any_fanin(self, bits, fan_in):
        r = parity_tree(QSM(QSMParams(g=2)), bits, fan_in=fan_in)
        assert r.value == sum(bits) % 2

    @given(bits_lists, st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_blocks_any_block_size(self, bits, block):
        r = parity_blocks(QSM(QSMParams(g=4)), bits, block_size=block)
        assert r.value == sum(bits) % 2

    @given(bits_lists)
    @settings(max_examples=40, deadline=None)
    def test_tree_and_blocks_agree(self, bits):
        t = parity_tree(QSM(QSMParams(g=4)), bits)
        b = parity_blocks(QSM(QSMParams(g=4)), bits)
        assert t.value == b.value


class TestOrProperties:
    @given(bits_lists, st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_tournament_any_fanin(self, bits, fan_in):
        r = or_tree_writes(SQSM(SQSMParams(g=2)), bits, fan_in=fan_in)
        assert r.value == (1 if any(bits) else 0)


class TestPrefixProperties:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=48), st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_accumulate(self, vals, fan_in):
        r = prefix_sums(QSM(QSMParams(g=2)), vals, fan_in=fan_in)
        assert r.value == list(accumulate(vals))

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_scan_last_element_is_total(self, vals):
        r = prefix_sums(SQSM(SQSMParams(g=1)), vals)
        assert r.value[-1] == sum(vals)


class TestCompactionProperties:
    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 999)), min_size=1, max_size=40),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_dart_preserves_items(self, arr, seed):
        tagged = [None if v is None else (i, v) for i, v in enumerate(arr)]
        h = sum(1 for v in tagged if v is not None)
        r = lac_dart(QSM(QSMParams(g=2)), tagged, seed=seed)
        assert verify_lac(tagged, r.value, max(h, 1))

    @given(st.lists(st.one_of(st.none(), st.integers(0, 999)), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_prefix_is_order_preserving(self, arr):
        tagged = [None if v is None else (i, v) for i, v in enumerate(arr)]
        r = lac_prefix(QSM(QSMParams(g=2)), tagged)
        assert r.value == [v for v in tagged if v is not None]


class TestSortingProperties:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=64), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bsp_sample_sort(self, vals, p):
        p = min(p, len(vals))
        r = sample_sort_bsp(BSP(p, BSPParams(g=2, L=8)), vals)
        assert r.value == sorted(vals)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_shared_sort(self, vals):
        r = sort_shared(QSM(QSMParams(g=2)), vals)
        assert r.value == sorted(vals)


class TestListRankingProperties:
    @given(st.permutations(list(range(12))))
    @settings(max_examples=50, deadline=None)
    def test_any_permutation_list(self, order):
        n = len(order)
        nxt = [None] * n
        for a, b in zip(order, order[1:]):
            nxt[a] = b
        r = list_rank(QSM(QSMParams(g=1)), nxt)
        assert verify_list_ranks(nxt, r.value)

    @given(st.permutations(list(range(10))), st.lists(st.integers(0, 9), min_size=10, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_weighted_ranks(self, order, weights):
        n = len(order)
        nxt = [None] * n
        for a, b in zip(order, order[1:]):
            nxt[a] = b
        r = list_rank(QSM(QSMParams(g=1)), nxt, weights=weights)
        assert verify_list_ranks(nxt, r.value, weights=weights)
