"""Tier-1 wrapper around tools/check_docs.py.

CI has a dedicated ``docs`` job, but running the same checks in the
ordinary test suite means a dead link or a stale ``file.py:NN``
cross-reference fails the fast local loop too, not just the workflow.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_docs_references_resolve():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_docs.py"), REPO_ROOT],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, (
        "documentation check failed:\n" + proc.stdout + proc.stderr
    )
