"""Failure injection and adversarial-environment robustness.

The models leave real freedom to the machine (arbitrary-winner writes) and
to chance (dart collisions); algorithms must be correct under every
resolution.  These tests drive the implementations through adversarial
machine seeds, forced retry exhaustion, hostile inputs, and misuse of the
APIs, checking that correctness never depends on luck and that failures are
loud, not silent.
"""

import pytest

from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.or_ import or_sparse_random, or_tree_writes
from repro.algorithms.padded_sort import padded_sort
from repro.algorithms.parity import parity_blocks, parity_tree
from repro.algorithms.sorting import sample_sort_bsp
from repro.core import (
    BSP,
    GSM,
    QSM,
    SQSM,
    BSPParams,
    GSMParams,
    MemoryConflictError,
    QSMParams,
    SQSMParams,
)
from repro.core.rounds import RoundAuditor, round_work_bound, total_work
from repro.problems import (
    gen_bits,
    gen_padded_sort_input,
    gen_sparse_array,
    verify_lac,
    verify_padded_sort,
    verify_parity,
)


class TestArbitraryWinnerAdversary:
    """Correctness must hold for every write-resolution seed."""

    @pytest.mark.parametrize("machine_seed", range(8))
    def test_lac_dart_every_machine_seed(self, machine_seed):
        arr = gen_sparse_array(96, 24, seed=1, exact=True)
        m = QSM(QSMParams(g=2), seed=machine_seed)
        r = lac_dart(m, arr, seed=5)
        assert verify_lac(arr, r.value, 24)

    @pytest.mark.parametrize("machine_seed", range(8))
    def test_or_tournament_every_machine_seed(self, machine_seed):
        bits = gen_bits(64, density=0.3, seed=2)
        m = QSM(QSMParams(g=4), seed=machine_seed)
        r = or_tree_writes(m, bits)
        assert r.value == (1 if any(bits) else 0)

    @pytest.mark.parametrize("machine_seed", range(6))
    def test_padded_sort_every_machine_seed(self, machine_seed):
        vals = gen_padded_sort_input(80, seed=3)
        m = QSM(QSMParams(g=2), seed=machine_seed)
        r = padded_sort(m, vals, seed=7)
        assert verify_padded_sort(vals, r.value)


class TestRetryExhaustion:
    def test_lac_dart_zero_rounds_pure_fallback(self):
        arr = gen_sparse_array(40, 20, seed=4, exact=True)
        r = lac_dart(QSM(QSMParams(g=2)), arr, seed=0, max_rounds=0)
        assert verify_lac(arr, r.value, 20)
        assert r.extra["fallback_items"] == 20

    def test_padded_sort_restart_exhaustion_raises(self):
        vals = [0.5] * 30  # all one bucket: guaranteed overflow
        with pytest.raises(RuntimeError, match="restarts"):
            padded_sort(QSM(QSMParams(g=2)), vals, seed=1, bucket_expected=4, max_restarts=0)

    def test_or_sparse_random_dense_input_still_correct(self):
        # All-ones input maximises dart collisions in every level.
        bits = [1] * 200
        m = QSM(QSMParams(g=2, unit_time_concurrent_reads=True))
        assert or_sparse_random(m, bits, seed=2).value == 1


class TestHostileInputs:
    def test_parity_blocks_alternating_worst_case(self):
        bits = [i % 2 for i in range(333)]
        r = parity_blocks(QSM(QSMParams(g=16)), bits)
        assert verify_parity(bits, r.value)

    def test_lac_all_items_adjacent(self):
        arr = ["x%d" % i for i in range(16)] + [None] * 112
        r = lac_dart(QSM(QSMParams(g=2)), arr, seed=3)
        assert verify_lac(arr, r.value, 16)

    def test_sample_sort_adversarial_skew(self):
        # Every element equal except one: splitters are degenerate.
        vals = [5] * 63 + [1]
        r = sample_sort_bsp(BSP(8, BSPParams(g=2, L=8)), vals)
        assert r.value == sorted(vals)

    def test_padded_sort_clustered_values(self):
        vals = [0.001 * (i % 3) for i in range(60)]
        r = padded_sort(QSM(QSMParams(g=2)), vals, seed=4)
        assert verify_padded_sort(vals, r.value)


class TestModelMisuse:
    def test_conflicting_phase_leaves_memory_untouched(self):
        m = QSM()
        m.load([1, 2])
        with pytest.raises(MemoryConflictError):
            with m.phase() as ph:
                ph.write(0, 5, "poison")
                ph.read(1, 5)
        assert m.peek(5) is None  # aborted phase must not commit its writes
        assert m.time == 0.0

    def test_gsm_cells_never_lose_information(self):
        g = GSM()
        values = []
        for k in range(5):
            with g.phase() as ph:
                ph.write(k, 0, f"v{k}")
            values.append(f"v{k}")
        assert list(g.peek(0)) == values  # strong queuing is append-only

    def test_bsp_inbox_cannot_be_mutated_externally(self):
        b = BSP(2)
        with b.superstep() as ss:
            ss.send(0, 1, "m")
        inbox = b.inbox(1)
        inbox.clear()
        assert b.inbox(1) == [(0, "m")]  # inbox() returns a copy


class TestWorkCeilings:
    def test_round_computation_respects_work_bound(self):
        """Section 2.3: an r-round computation does at most O(rgn) work."""
        from repro.algorithms.parity import parity_rounds

        n, p = 512, 32
        m = SQSM(SQSMParams(g=2))
        aud = RoundAuditor(m, n=n, p=p)
        parity_rounds(m, gen_bits(n, seed=5), p=p)
        rounds = aud.audit()
        assert aud.computes_in_rounds
        assert total_work(m, p) <= round_work_bound(m, n, p, rounds) + 1e-9

    def test_work_bound_validation(self):
        m = QSM()
        with pytest.raises(ValueError):
            total_work(m, 0)
        with pytest.raises(ValueError):
            round_work_bound(m, 1, 1, -1)

    def test_bsp_work_bound(self):
        from repro.algorithms.parity import parity_bsp

        n, p = 512, 16
        b = BSP(p, BSPParams(g=2, L=8))
        aud = RoundAuditor(b, n=n, p=p)
        parity_bsp(b, gen_bits(n, seed=6))
        rounds = aud.audit()
        assert aud.computes_in_rounds
        assert total_work(b, p) <= round_work_bound(b, n, p, rounds) + 1e-9


class TestDeterminismUnderSharedMachines:
    def test_sequential_composition_is_isolated(self):
        """Two algorithms on one machine must not corrupt each other."""
        m = QSM(QSMParams(g=2))
        bits = gen_bits(64, seed=7)
        r1 = parity_tree(m, bits)
        arr = gen_sparse_array(64, 16, seed=8, exact=True)
        r2 = lac_dart(m, arr, seed=9)
        r3 = parity_tree(m, bits)
        assert r1.value == r3.value == sum(bits) % 2
        assert verify_lac(arr, r2.value, 16)

    def test_three_stage_chain_on_gsm(self):
        g = GSM(GSMParams(alpha=2, beta=2))
        bits = gen_bits(32, seed=10)
        assert parity_tree(g, bits).value == sum(bits) % 2
        arr = gen_sparse_array(32, 8, seed=11, exact=True)
        assert verify_lac(arr, lac_prefix(g, arr).value, 8)
        assert or_tree_writes(g, bits).value == (1 if any(bits) else 0)
