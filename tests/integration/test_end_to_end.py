"""Integration: full algorithm + model + verifier + bound stacks.

These tests run the same pipelines the benches run (smaller sweeps) and
assert the end-to-end relationships the reproduction is about: verified
answers, cost dominance over the Table 1 bounds, round-discipline, and the
lower-bound machinery agreeing with live runs.
"""

import pytest

from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.or_ import or_bsp, or_rounds, or_tree_writes
from repro.algorithms.parity import parity_bsp, parity_rounds, parity_tree
from repro.analysis import dominance_constant, sweep
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor
from repro.lowerbounds.degree_argument import check_run
from repro.lowerbounds.formulas import (
    bsp_parity_det_time,
    qsm_or_det_time,
    sqsm_lac_det_time,
    sqsm_or_rounds,
    sqsm_parity_det_time,
)
from repro.problems import gen_bits, gen_sparse_array, verify_lac, verify_or, verify_parity


class TestDominanceOverTableBounds:
    def test_parity_sqsm_tight(self):
        """Table 1b Theta(g log n): measured/bound bounded both ways."""
        ratios = []
        for n in [64, 256, 1024, 4096]:
            for g in [2, 8]:
                m = SQSM(SQSMParams(g=g))
                bits = gen_bits(n, seed=n)
                r = parity_tree(m, bits)
                assert verify_parity(bits, r.value)
                ratios.append(r.time / sqsm_parity_det_time(n, g))
        assert min(ratios) >= 1.0  # dominance
        assert max(ratios) / min(ratios) < 4.0  # tightness band

    def test_or_qsm_dominates_bound(self):
        for n in [64, 1024]:
            for g in [2, 16]:
                m = QSM(QSMParams(g=g))
                bits = gen_bits(n, density=0.1, seed=n + g)
                r = or_tree_writes(m, bits)
                assert verify_or(bits, r.value)
                assert r.time >= qsm_or_det_time(n, g)

    def test_lac_sqsm_dominates_bound(self):
        for n in [256, 2048]:
            arr = gen_sparse_array(n, n // 8, seed=n, exact=True)
            m = SQSM(SQSMParams(g=4))
            r = lac_prefix(m, arr)
            assert r.time >= sqsm_lac_det_time(n, 4)

    def test_parity_bsp_tight(self):
        ratios = []
        for n in [256, 1024]:
            for p in [16, 64]:
                b = BSP(p, BSPParams(g=2, L=16))
                bits = gen_bits(n, seed=p)
                r = parity_bsp(b, bits)
                assert verify_parity(bits, r.value)
                ratios.append(r.time / bsp_parity_det_time(n, 2, 16, p))
        assert min(ratios) > 0.5  # same order as the Theta bound
        assert max(ratios) / min(ratios) < 8.0


class TestRoundsDiscipline:
    @pytest.mark.parametrize("n,p", [(256, 16), (1024, 32)])
    def test_or_rounds_match_tight_bound(self, n, p):
        m = SQSM(SQSMParams(g=2))
        aud = RoundAuditor(m, n=n, p=p, constant=1.0)
        bits = gen_bits(n, density=0.05, seed=p)
        r = or_rounds(m, bits, p=p)
        aud.audit()
        assert verify_or(bits, r.value)
        assert aud.computes_in_rounds
        bound = sqsm_or_rounds(n, 2, p)
        assert aud.rounds >= bound * 0.9
        assert aud.rounds <= 6 * bound + 4  # matches up to constants

    def test_parity_rounds_all_models(self):
        n, p = 512, 32
        bits = gen_bits(n, seed=1)
        for machine in (QSM(QSMParams(g=2)), SQSM(SQSMParams(g=2)), GSM(GSMParams())):
            aud = RoundAuditor(machine, n=n, p=p)
            r = parity_rounds(machine, bits, p=p)
            aud.audit()
            assert verify_parity(bits, r.value)
            assert aud.computes_in_rounds


class TestLowerBoundMachineryOnLiveRuns:
    def test_degree_certificate_for_every_parity_algorithm(self):
        n = 32
        bits = gen_bits(n, seed=9)
        m = GSM(GSMParams(alpha=2, beta=2))
        parity_tree(m, bits)
        cert = check_run(m, target_degree=n)
        assert cert.reached and cert.satisfies_bound

    def test_sweep_pipeline(self):
        def run(n, g):
            m = SQSM(SQSMParams(g=g))
            bits = gen_bits(n, seed=n * g)
            r = parity_tree(m, bits)
            return {
                "measured": r.time,
                "correct": verify_parity(bits, r.value),
                "bound": sqsm_parity_det_time(n, g),
            }

        pts = sweep({"n": [64, 256], "g": [2, 4]}, run)
        assert all(p.correct for p in pts)
        c = dominance_constant([p.measured for p in pts], [p.bound for p in pts])
        assert c >= 1.0


class TestCrossModelConsistency:
    def test_same_bits_same_answer_everywhere(self):
        bits = gen_bits(100, seed=42)
        want = sum(bits) % 2
        answers = [
            parity_tree(QSM(QSMParams(g=4)), bits).value,
            parity_tree(SQSM(SQSMParams(g=4)), bits).value,
            parity_tree(GSM(GSMParams(alpha=2, beta=2)), bits).value,
            parity_bsp(BSP(8, BSPParams(g=2, L=8)), bits).value,
        ]
        assert answers == [want] * 4

    def test_or_same_everywhere(self):
        bits = gen_bits(80, density=0.02, seed=3)
        want = 1 if any(bits) else 0
        answers = [
            or_tree_writes(QSM(QSMParams(g=4)), bits).value,
            or_tree_writes(SQSM(SQSMParams(g=4)), bits).value,
            or_tree_writes(GSM(GSMParams(alpha=2, beta=2)), bits).value,
            or_bsp(BSP(8, BSPParams(g=2, L=8)), bits).value,
        ]
        assert answers == [want] * 4

    def test_lac_dart_valid_on_all_shared_models(self):
        arr = gen_sparse_array(128, 32, seed=5, exact=True)
        for machine in (QSM(QSMParams(g=2)), SQSM(SQSMParams(g=2)), GSM(GSMParams())):
            r = lac_dart(machine, arr, seed=6)
            assert verify_lac(arr, r.value, 32)
