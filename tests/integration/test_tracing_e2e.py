"""The tracing acceptance path, end to end on real sockets and processes.

One HTTP submit with ``$REPRO_TRACE`` on must yield a *single*
``trace_id`` whose span tree covers the whole causal story:

    inbound traceparent -> HTTP request span -> job span -> task spans
    -> exec spans on remote TCP workers (surviving one forced requeue)
    -> per-phase cost records stamped with the exec context

and the scheduler-side + worker-side trace files must merge into one
Perfetto trace whose flow events link the service lane to the phase
lane.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs import tracing
from repro.obs.exporters import SERVICE_PID, write_combined_trace
from repro.obs.records import PhaseCostRecord
from repro.sched.net.worker import spawn_local_workers
from repro.serve.client import ServeClient
from repro.serve.contracts import SCHEMA, TENANT_HEADER
from repro.serve.http import create_server, serve_forever
from repro.serve.service import CampaignService

INBOUND_TRACE = "c0" * 16
INBOUND_SPAN = "d1" * 8


@pytest.fixture
def traced(monkeypatch, tmp_path):
    """Tracing on here AND in worker subprocesses, with split sinks."""
    sched_file = tmp_path / "sched-trace.jsonl"
    worker_file = tmp_path / "worker-trace.jsonl"
    monkeypatch.setenv(tracing.TRACE_ENV, "1")
    # Workers inherit the env: each appends its exec spans to its own
    # host-side file, the multi-host story `trace merge` folds back in.
    monkeypatch.setenv(tracing.TRACE_PATH_ENV, str(worker_file))
    tracing.TRACER.reset()
    tracing.TRACER.configure(enabled=True, path=str(sched_file))
    yield str(sched_file), str(worker_file)
    tracing.TRACER.configure(enabled=False)
    tracing.TRACER.reset()


def _submit_with_traceparent(base_url, campaign, options):
    body = json.dumps(
        {"schema": SCHEMA, "campaign": campaign, "options": options}
    ).encode("utf-8")
    req = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=body,
        headers={
            "Content-Type": "application/json",
            TENANT_HEADER: "alice",
            "traceparent": f"00-{INBOUND_TRACE}-{INBOUND_SPAN}-01",
        },
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))["job"]


def _wait_until(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(message)
        time.sleep(0.05)


def test_one_trace_id_from_http_to_phase_records(traced, tmp_path):
    sched_file, worker_file = traced
    service = CampaignService(
        str(tmp_path / "store"), jobs=2, snapshot_interval=0.1,
        workers_port=0,
    )
    srv = create_server(service, port=0)
    thread = threading.Thread(target=serve_forever, args=(srv,), daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    base_url = f"http://{host}:{port}"
    client = ServeClient(base_url, tenant="alice")
    pool = service._remote_pool
    procs = []
    try:
        _wait_until(client.healthy, 10.0, "server did not come up")
        procs = spawn_local_workers(pool.address, 2, name_prefix="e2e")
        _wait_until(
            lambda: len(pool.registry.live()) >= 2, 10.0,
            "workers never registered",
        )

        job = _submit_with_traceparent(
            base_url, "demo", {"points": 4, "delay": 0.4}
        )
        # The job adopted the inbound traceparent's trace id.
        assert job["trace_id"] == INBOUND_TRACE

        # Force a requeue: SIGKILL worker e2e-0 while it holds a task.
        def victim_busy():
            rows = {r["name"]: r for r in pool.fleet()}
            row = rows.get("e2e-0")
            return row is not None and row["current"] is not None

        _wait_until(victim_busy, 15.0, "worker e2e-0 never got a task")
        procs[0].kill()

        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        assert pool.stats["requeues"] >= 1, "forced requeue never happened"
        slo = client.slo()
        assert slo["enabled"] and slo["end_to_end"]["count"] >= 1
        outcomes = dict(service.mux._jobs[job["id"]].execution.outcomes)
    finally:
        srv.shutdown()
        thread.join(timeout=10)
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except Exception:
                proc.kill()
                proc.wait()

    # -- one merged trace across both hosts' files --------------------------
    merged = tracing.merge_trace_files([sched_file, worker_file])
    ours = [r for r in merged if r["trace_id"] == INBOUND_TRACE]
    assert ours, "no spans carried the inbound trace id"
    assert len({r["trace_id"] for r in ours}) == 1

    by_kind = {}
    for row in ours:
        by_kind.setdefault(row["kind"], []).append(row)
    assert set(by_kind) >= {"request", "job", "task", "exec"}

    # The tree: request roots under the inbound context, the job under
    # the request, tasks under the job, execs under their tasks.
    (request,) = by_kind["request"]
    assert request["parent_span_id"] == INBOUND_SPAN
    (job_span,) = by_kind["job"]
    assert job_span["parent_span_id"] == request["span_id"]
    task_ids = {t["span_id"] for t in by_kind["task"]}
    assert all(t["parent_span_id"] == job_span["span_id"] for t in by_kind["task"])
    assert all(e["parent_span_id"] in task_ids for e in by_kind["exec"])
    # 4 remote points + the inline summary task.
    assert len(by_kind["task"]) == 5
    # Exec spans really ran elsewhere: a worker subprocess host tag.
    assert any(e["host"] != request["host"] for e in by_kind["exec"])

    # -- phase cost records stamped with the exec context -------------------
    exec_ids = {e["span_id"] for e in by_kind["exec"]}
    phase_lanes = []
    stamped = 0
    for name, outcome in outcomes.items():
        if not isinstance(outcome, dict) or not outcome.get("cost_records"):
            continue
        records = [PhaseCostRecord.from_dict(d) for d in outcome["cost_records"]]
        phase_lanes.append((name, records))
        for rec in records:
            if rec.trace is not None:
                assert rec.trace["trace_id"] == INBOUND_TRACE
                assert rec.trace["span_id"] in exec_ids
                stamped += 1
    assert len(phase_lanes) == 4, "every demo point should carry cost records"
    assert stamped > 0, "no phase record carried a trace stamp"

    # -- one Perfetto file with flow links service lane -> phase lane -------
    out = tmp_path / "merged-trace.json"
    write_combined_trace(str(out), phase_lanes=phase_lanes, trace_spans=ours)
    payload = json.loads(out.read_text())
    events = payload["traceEvents"]
    service_slices = [
        e for e in events if e.get("ph") == "X" and e.get("pid") == SERVICE_PID
    ]
    assert len(service_slices) == len(ours)
    starts = [e for e in events if e.get("ph") == "s"]
    finishes = [e for e in events if e.get("ph") == "f"]
    assert starts and finishes
    flow_ids = {e["id"] for e in starts} & {e["id"] for e in finishes}
    assert flow_ids, "no complete flow arrow in the merged trace"
    # At least one flow leaves the service pid for a phase lane pid.
    start_pids = {e["id"]: e["pid"] for e in starts}
    finish_pids = {e["id"]: e["pid"] for e in finishes}
    assert any(
        start_pids[i] == SERVICE_PID and finish_pids[i] != SERVICE_PID
        for i in flow_ids
    ), "no flow links the span tree to a phase-cost row"
