"""Statistical validation of the w.h.p. claims behind the randomized algorithms.

The paper's randomized upper bounds are with-high-probability statements.
These tests estimate the relevant distributions across many seeds and check
the claims at repository scale:

* LAC dart throwing: the live set decays doubly exponentially, so the round
  count stays O(log log n) across seeds and the deterministic fallback
  essentially never fires; per-round contention stays near the balls-in-
  bins maximum-load scale.
* Padded sort: uniform inputs essentially never overflow the default slack
  (restart rate ~ 0), while adversarially clustered inputs always do.
* Sample sort: with oversampling, the routed h-relation stays within a
  small factor of n/p across seeds.
"""

import math

from repro.algorithms.compaction import lac_dart
from repro.algorithms.padded_sort import padded_sort
from repro.algorithms.sorting import sample_sort_bsp
from repro.core import BSP, QSM, BSPParams, QSMParams
from repro.problems import (
    gen_padded_sort_input,
    gen_sort_input,
    gen_sparse_array,
    verify_lac,
)

TRIALS = 30


class TestDartThrowingStatistics:
    def test_round_count_loglog_scale(self):
        n, h = 4096, 512
        max_rounds_seen = 0
        for seed in range(TRIALS):
            arr = gen_sparse_array(n, h, seed=seed, exact=True)
            r = lac_dart(QSM(QSMParams(g=2)), arr, h=h, seed=seed + 1000)
            assert verify_lac(arr, r.value, h)
            max_rounds_seen = max(max_rounds_seen, r.extra["rounds"])
        # log2 log2 4096 ~ 3.6; doubly exponential decay keeps rounds tiny.
        assert max_rounds_seen <= 8

    def test_fallback_rate_is_negligible(self):
        n, h = 2048, 256
        fallbacks = 0
        for seed in range(TRIALS):
            arr = gen_sparse_array(n, h, seed=seed + 50, exact=True)
            r = lac_dart(QSM(QSMParams(g=2)), arr, h=h, seed=seed)
            fallbacks += 1 if r.extra["fallback_items"] else 0
        assert fallbacks <= 1  # w.h.p. the dart rounds finish on their own

    def test_contention_near_balls_in_bins(self):
        n, h = 4096, 1024
        worst = 0
        for seed in range(TRIALS):
            arr = gen_sparse_array(n, h, seed=seed + 99, exact=True)
            r = lac_dart(QSM(QSMParams(g=2)), arr, h=h, seed=seed + 7)
            worst = max(worst, r.extra["max_contention"])
        # Max load of h balls in 4h bins is Theta(log n / log log n) w.h.p.
        ceiling = 4 * math.log(n) / math.log(math.log(n))
        assert worst <= ceiling

    def test_destination_size_concentrated(self):
        n, h = 2048, 128
        for seed in range(10):
            arr = gen_sparse_array(n, h, seed=seed, exact=True)
            r = lac_dart(QSM(QSMParams(g=2)), arr, h=h, expansion=4, seed=seed)
            assert r.extra["destination_size"] <= 10 * h


class TestPaddedSortStatistics:
    def test_uniform_inputs_rarely_restart(self):
        restarts = 0
        for seed in range(TRIALS):
            vals = gen_padded_sort_input(512, seed=seed)
            r = padded_sort(QSM(QSMParams(g=2)), vals, seed=seed + 1)
            restarts += r.extra["restarts"]
        assert restarts <= 1

    def test_clustered_inputs_always_restart(self):
        hits = 0
        for seed in range(8):
            vals = [0.5 + 1e-9 * k for k in range(64)]
            r = padded_sort(
                QSM(QSMParams(g=2)), vals, seed=seed, bucket_expected=4
            )
            hits += 1 if r.extra["restarts"] >= 1 else 0
        assert hits == 8

    def test_output_size_is_n_plus_little_o(self):
        # The measured padding ratio shrinks as n grows (n + o(n)).
        ratios = []
        for n in (256, 1024, 4096):
            vals = gen_padded_sort_input(n, seed=n)
            r = padded_sort(QSM(QSMParams(g=2)), vals, seed=n + 1)
            ratios.append(r.extra["output_size"] / n)
        assert ratios[-1] < ratios[0]
        # slack/bucket = 4*sqrt(ln n)/log2(n) -> 0, slowly; at n=4096 the
        # measured padding ratio is ~2.0 and still falling.
        assert ratios[-1] < 2.1


class TestSampleSortStatistics:
    def test_h_relation_balanced_whp(self):
        n, p = 1024, 16
        worst_ratio = 0.0
        for seed in range(TRIALS):
            vals = gen_sort_input(n, seed=seed)
            b = BSP(p, BSPParams(g=2, L=8))
            r = sample_sort_bsp(b, vals, oversampling=8)
            assert r.value == sorted(vals)
            worst_ratio = max(worst_ratio, r.extra["max_bucket"] / (n / p))
        assert worst_ratio <= 6.0
