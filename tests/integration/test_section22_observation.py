"""Section 2.2's motivating observation, executable.

"due to the message-passing mode of communication used in the BSP, in
certain situations it is more powerful than the QSM or s-QSM.  For
instance, if several different processors send values to a given processor
to be placed in an array (in any order), the BSP processor can fill in the
array by simply picking out the elements from its input buffer.  On a QSM
this computation involves compaction, since each value needs to be tagged
with an explicit location within the array in which it needs to be placed."

This is *why* the paper defines the GSM (stronger than all three) as the
lower-bound model.  The tests below run the array-assembly task on all
three machines and check the claimed power ordering.
"""

import pytest

from repro.algorithms.compaction import lac_prefix
from repro.core import BSP, GSM, QSM, BSPParams, GSMParams, QSMParams
from repro.lowerbounds.formulas import qsm_parity_det_time


def senders_with_values(n, seed=0):
    """n sender processors, an unpredictable subset holding one value each."""
    import numpy as np

    rng = np.random.default_rng(seed)
    has = rng.random(n) < 0.5
    return [f"v{i}" if h else None for i, h in enumerate(has)]


class TestArrayAssembly:
    N = 64

    def test_bsp_assembles_in_two_supersteps(self):
        """Senders -> component 0's buffer -> dense array: O(1) supersteps."""
        values = senders_with_values(self.N, seed=1)
        b = BSP(self.N, BSPParams(g=1, L=4))
        with b.superstep() as ss:
            for i, v in enumerate(values):
                if v is not None:
                    ss.send(i, 0, v)
        # The receiver picks elements straight out of its input buffer.
        assembled = [payload for _, payload in b.inbox(0)]
        want = [v for v in values if v is not None]
        assert sorted(assembled) == sorted(want)
        assert b.superstep_count == 1
        # Cost: one h-relation; h is the value count, no log factors.
        assert b.time == max(1.0 * sum(v is not None for v in values), 4.0)

    def test_qsm_needs_compaction(self):
        """On the QSM the values must be compacted into explicit slots:
        a prefix-sums rank computation with Omega(g log n)-type cost."""
        values = senders_with_values(self.N, seed=1)
        m = QSM(QSMParams(g=2))
        r = lac_prefix(m, values)
        want = [v for v in values if v is not None]
        assert r.value == want
        # The compaction pays the scan's log factor the BSP avoided.
        assert m.time >= qsm_parity_det_time(self.N, 2.0)

    def test_gsm_strong_queuing_matches_bsp_power(self):
        """The GSM's strong queuing gives the buffer for free: all senders
        write one cell, the cell accumulates every value — one phase, and
        that is exactly why GSM lower bounds transfer to the BSP."""
        values = senders_with_values(self.N, seed=1)
        g = GSM(GSMParams(alpha=1, beta=self.N))
        with g.phase() as ph:
            for i, v in enumerate(values):
                if v is not None:
                    ph.write(i, 0, v)
        cell = g.peek(0)
        want = [v for v in values if v is not None]
        assert sorted(cell) == sorted(want)
        assert g.phase_count == 1
        # With beta = N the whole accumulation is one big-step.
        assert g.big_steps == 1

    def test_power_ordering(self):
        """BSP beats the QSM on this task in time, and the GSM beats both
        structurally (one phase / one big-step vs a logarithmic-depth scan)
        — the ordering that justifies proving lower bounds on the GSM."""
        values = senders_with_values(self.N, seed=2)

        g = GSM(GSMParams(alpha=1, beta=self.N))
        with g.phase() as ph:
            for i, v in enumerate(values):
                if v is not None:
                    ph.write(i, 0, v)

        b = BSP(self.N, BSPParams(g=1, L=4))
        with b.superstep() as ss:
            for i, v in enumerate(values):
                if v is not None:
                    ss.send(i, 0, v)

        m = QSM(QSMParams(g=1))
        lac_prefix(m, values)

        assert b.time < m.time  # message buffers beat shared-memory compaction
        assert g.big_steps == 1 and g.phase_count == 1  # strong queuing: one shot
        assert m.phase_count > 5  # the QSM scan needs logarithmic depth
