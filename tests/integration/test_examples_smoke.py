"""Smoke tests: the shipped examples run end to end.

Each example's ``main()`` both demonstrates the API and asserts its own
verifications internally; running them is a real integration check.  The
two slowest (adversary_demo's exhaustive oracle, compaction_pipeline's
full pipeline) are exercised at reduced scope elsewhere, so only their
imports are checked here.
"""

import importlib

import pytest


class TestExamplesRun:
    def test_quickstart(self, capsys):
        mod = importlib.import_module("examples.quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "Table 1b bound" in out

    def test_rounds_and_work(self, capsys):
        mod = importlib.import_module("examples.rounds_and_work")
        mod.main()
        out = capsys.readouterr().out
        assert "rounds vs work" in out
        assert "latency floor" in out

    def test_model_comparison(self, capsys):
        mod = importlib.import_module("examples.model_comparison")
        mod.main()
        out = capsys.readouterr().out
        assert "four models" in out
        assert "EREW PRAM" in out

    @pytest.mark.parametrize(
        "name", ["examples.compaction_pipeline", "examples.adversary_demo"]
    )
    def test_heavy_examples_import(self, name):
        mod = importlib.import_module(name)
        assert callable(mod.main)
