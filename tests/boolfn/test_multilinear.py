"""The unique multilinear representation (Fact 2.1) and its algebra."""

import pytest

from repro.boolfn.multilinear import BooleanFunction, MultilinearPolynomial, popcount


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3


class TestConstruction:
    def test_xor_coefficients(self):
        # x0 XOR x1 = x0 + x1 - 2 x0 x1, the textbook example.
        p = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        assert p.coeffs == {0b01: 1, 0b10: 1, 0b11: -2}

    def test_and_coefficients(self):
        p = MultilinearPolynomial.from_truth_table([0, 0, 0, 1])
        assert p.coeffs == {0b11: 1}

    def test_or_coefficients(self):
        p = MultilinearPolynomial.from_truth_table([0, 1, 1, 1])
        assert p.coeffs == {0b01: 1, 0b10: 1, 0b11: -1}

    def test_constant_one(self):
        p = MultilinearPolynomial.from_truth_table([1, 1, 1, 1])
        assert p.coeffs == {0: 1}
        assert p.degree == 0

    def test_zero_polynomial(self):
        p = MultilinearPolynomial.from_truth_table([0, 0])
        assert p.coeffs == {}
        assert p.degree == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            MultilinearPolynomial.from_truth_table([0, 1, 0])

    def test_rejects_mismatched_n(self):
        with pytest.raises(ValueError):
            MultilinearPolynomial.from_truth_table([0, 1], n=2)

    def test_from_function(self):
        p = MultilinearPolynomial.from_function(lambda bits: bits[0] & bits[1], 2)
        assert p.coeffs == {0b11: 1}

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MultilinearPolynomial(1, {4: 1})


class TestRoundTrip:
    @pytest.mark.parametrize("table", [
        [0, 1, 1, 0],
        [1, 0, 0, 0, 0, 0, 0, 1],
        [0, 1, 1, 1, 1, 0, 0, 1],
        [3, -1, 2, 0],  # integer-valued functions are fine too
    ])
    def test_truth_table_roundtrip(self, table):
        p = MultilinearPolynomial.from_truth_table(table)
        assert p.truth_table() == [int(v) for v in table]

    def test_evaluate_matches_table(self):
        table = [0, 1, 1, 1, 1, 0, 0, 1]
        p = MultilinearPolynomial.from_truth_table(table)
        assert [p.evaluate(a) for a in range(8)] == table

    def test_evaluate_out_of_range(self):
        p = MultilinearPolynomial.from_truth_table([0, 1])
        with pytest.raises(ValueError):
            p.evaluate(2)


class TestAlgebra:
    def test_addition_pointwise(self):
        a = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        b = MultilinearPolynomial.from_truth_table([1, 1, 0, 0])
        assert (a + b).truth_table() == [1, 2, 1, 0]

    def test_subtraction_and_negation(self):
        a = MultilinearPolynomial.from_truth_table([2, 3, 5, 7])
        assert (a - a).coeffs == {}
        assert (-a).truth_table() == [-2, -3, -5, -7]

    def test_multiplication_pointwise_on_cube(self):
        a = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        b = MultilinearPolynomial.from_truth_table([0, 1, 0, 1])
        prod = a * b
        assert prod.truth_table() == [0, 1, 0, 0]

    def test_multiplication_is_multilinear(self):
        a = MultilinearPolynomial.from_truth_table([0, 1])
        sq = a * a  # x0^2 collapses to x0
        assert sq.coeffs == {0b1: 1}

    def test_scale(self):
        a = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        assert a.scale(3).truth_table() == [0, 3, 3, 0]

    def test_incompatible_sizes_rejected(self):
        a = MultilinearPolynomial.from_truth_table([0, 1])
        b = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        with pytest.raises(ValueError):
            _ = a + b

    def test_equality_and_hash(self):
        a = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        b = MultilinearPolynomial.from_truth_table([0, 1, 1, 0])
        assert a == b and hash(a) == hash(b)


class TestRestriction:
    def test_restrict_to_zero_kills_monomials(self):
        p = MultilinearPolynomial.from_truth_table([0, 0, 0, 1])  # x0 x1
        assert p.restrict({0: 0}).coeffs == {}

    def test_restrict_to_one_drops_variable(self):
        p = MultilinearPolynomial.from_truth_table([0, 0, 0, 1])  # x0 x1
        assert p.restrict({0: 1}).coeffs == {0b10: 1}

    def test_restriction_matches_pointwise(self):
        table = [0, 1, 1, 1, 1, 0, 0, 1]
        p = MultilinearPolynomial.from_truth_table(table)
        r = p.restrict({1: 1})
        for a in range(8):
            if (a >> 1) & 1:
                assert r.evaluate(a & ~0b010) == p.evaluate(a)

    def test_invalid_restriction(self):
        p = MultilinearPolynomial.from_truth_table([0, 1])
        with pytest.raises(ValueError):
            p.restrict({0: 2})
        with pytest.raises(ValueError):
            p.restrict({5: 0})


class TestBooleanFunction:
    def test_call_by_mask(self):
        f = BooleanFunction(2, [0, 1, 1, 0])
        assert [f(a) for a in range(4)] == [0, 1, 1, 0]

    def test_evaluate_bits(self):
        f = BooleanFunction(2, [0, 1, 1, 0])
        assert f.evaluate_bits([1, 0]) == 1
        assert f.evaluate_bits([1, 1]) == 0

    def test_evaluate_bits_length_checked(self):
        f = BooleanFunction(2, [0, 1, 1, 0])
        with pytest.raises(ValueError):
            f.evaluate_bits([1])

    def test_rejects_non_boolean_table(self):
        with pytest.raises(ValueError):
            BooleanFunction(1, [0, 2])

    def test_boolean_ops(self):
        f = BooleanFunction(2, [0, 1, 1, 0])
        g = BooleanFunction(2, [0, 0, 1, 1])
        assert (f & g).table.tolist() == [0, 0, 1, 0]
        assert (f | g).table.tolist() == [0, 1, 1, 1]
        assert (f ^ g).table.tolist() == [0, 1, 0, 1]
        assert (~f).table.tolist() == [1, 0, 0, 1]

    def test_restrict_keeps_arity(self):
        f = BooleanFunction(2, [0, 1, 1, 0])  # XOR
        r = f.restrict({0: 1})  # = NOT x1, as a 2-var function
        assert r.n == 2
        assert r(0b00) == 1 and r(0b10) == 0

    def test_is_constant(self):
        assert BooleanFunction(2, [1, 1, 1, 1]).is_constant()
        assert not BooleanFunction(2, [1, 0, 1, 1]).is_constant()

    def test_polynomial_cached(self):
        f = BooleanFunction(2, [0, 1, 1, 0])
        assert f.polynomial is f.polynomial

    def test_equality_hash(self):
        a = BooleanFunction(1, [0, 1])
        b = BooleanFunction(1, [0, 1])
        assert a == b and hash(a) == hash(b)
