"""The standard function constructors."""

import pytest

from repro.boolfn import AND, MAJORITY, OR, PARITY, THRESHOLD, from_truth_table, random_function


class TestParity:
    def test_small_tables(self):
        assert PARITY(2).table.tolist() == [0, 1, 1, 0]

    def test_counts_ones_mod_two(self):
        f = PARITY(5)
        for mask in range(32):
            assert f(mask) == bin(mask).count("1") % 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PARITY(-1)


class TestOrAnd:
    def test_or_table(self):
        assert OR(2).table.tolist() == [0, 1, 1, 1]

    def test_and_table(self):
        assert AND(2).table.tolist() == [0, 0, 0, 1]

    def test_duality(self):
        n = 4
        f = OR(n)
        g = AND(n)
        for mask in range(1 << n):
            flipped = mask ^ ((1 << n) - 1)
            assert f(mask) == 1 - g(flipped)


class TestThreshold:
    def test_extremes(self):
        assert THRESHOLD(3, 1) == OR(3)
        assert THRESHOLD(3, 3) == AND(3)

    def test_always_true_at_zero(self):
        f = THRESHOLD(3, 0)
        assert f.is_constant() and f(0) == 1

    def test_never_true_above_n(self):
        f = THRESHOLD(3, 4)
        assert f.is_constant() and f(0b111) == 0

    def test_majority(self):
        f = MAJORITY(3)
        assert f(0b011) == 1 and f(0b001) == 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            THRESHOLD(3, 5)


class TestFromTruthTable:
    def test_roundtrip(self):
        f = from_truth_table([0, 1, 1, 0])
        assert f.n == 2 and f(0b01) == 1

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            from_truth_table([0, 1, 0])


class TestRandomFunction:
    def test_reproducible(self):
        assert random_function(4, seed=9) == random_function(4, seed=9)

    def test_bias_extremes(self):
        assert random_function(3, seed=0, bias=0.0).is_constant()
        assert random_function(3, seed=0, bias=1.0).is_constant()

    def test_bias_validated(self):
        with pytest.raises(ValueError):
            random_function(3, bias=1.5)
