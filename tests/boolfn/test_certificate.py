"""Certificate complexity and Fact 2.3 (C(f) <= deg(f)^4)."""

import pytest

from repro.boolfn import AND, MAJORITY, OR, PARITY, random_function
from repro.boolfn.certificate import (
    certificate_complexity,
    certificate_for_input,
    fact_2_3_holds,
)
from repro.boolfn.multilinear import BooleanFunction


class TestCertificateForInput:
    def test_or_on_a_one_input_needs_one_bit(self):
        f = OR(3)
        size, mask = certificate_for_input(f, 0b010)
        assert size == 1
        assert mask == 0b010  # that single 1 certifies OR = 1

    def test_or_on_all_zeros_needs_everything(self):
        f = OR(3)
        size, _ = certificate_for_input(f, 0)
        assert size == 3

    def test_constant_function_needs_nothing(self):
        f = BooleanFunction(2, [1, 1, 1, 1])
        size, mask = certificate_for_input(f, 0b01)
        assert size == 0 and mask == 0

    def test_lexicographically_smallest_tie_break(self):
        # f = x0 OR x1: on input 11 both single bits certify; pick x0.
        f = OR(2)
        size, mask = certificate_for_input(f, 0b11)
        assert size == 1 and mask == 0b01

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            certificate_for_input(OR(2), 4)


class TestCertificateComplexity:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_or_full(self, n):
        assert certificate_complexity(OR(n)) == n

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_parity_full(self, n):
        assert certificate_complexity(PARITY(n)) == n

    def test_constant_zero(self):
        assert certificate_complexity(BooleanFunction(3, [0] * 8)) == 0

    def test_dictator_is_one(self):
        # f = x1
        f = BooleanFunction.from_function(lambda b: b[1], 3)
        assert certificate_complexity(f) == 1


class TestFact23:
    @pytest.mark.parametrize("f_builder", [
        lambda: OR(4), lambda: AND(4), lambda: PARITY(4), lambda: MAJORITY(5),
        lambda: BooleanFunction(3, [0] * 8),
    ])
    def test_named_functions(self, f_builder):
        assert fact_2_3_holds(f_builder())

    def test_random_functions(self):
        for seed in range(15):
            assert fact_2_3_holds(random_function(4, seed=seed))
