"""Fact 2.2's degree composition bounds, verified on concrete functions."""

import pytest

from repro.boolfn import AND, MAJORITY, OR, PARITY, random_function
from repro.boolfn.degree import (
    and_degree_bound,
    degree,
    not_degree,
    or_degree_bound,
    restriction_degree_ok,
)


class TestFundamentalDegrees:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_parity_has_full_degree(self, n):
        # The fact Theorems 3.1/3.2 rest on: deg(PARITY_n) = n.
        assert degree(PARITY(n)) == n

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_or_has_full_degree(self, n):
        # The fact Theorem 7.2 rests on: deg(OR_n) = n.
        assert degree(OR(n)) == n

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_and_has_full_degree(self, n):
        assert degree(AND(n)) == n

    def test_majority_degree_positive(self):
        assert degree(MAJORITY(5)) >= 3


class TestFact22:
    def test_and_bound(self):
        f, g = PARITY(4), OR(4)
        exact, bound = and_degree_bound(f, g)
        assert exact <= bound

    def test_or_bound(self):
        f, g = PARITY(4), AND(4)
        exact, bound = or_degree_bound(f, g)
        assert exact <= bound

    def test_not_preserves_degree(self):
        for f in [PARITY(4), OR(4), MAJORITY(5)]:
            exact, original = not_degree(f)
            assert exact == original

    def test_restriction_never_raises_degree(self):
        f = MAJORITY(5)
        for var in range(5):
            for val in (0, 1):
                assert restriction_degree_ok(f, {var: val})

    def test_random_functions_obey_all_bounds(self):
        for seed in range(10):
            f = random_function(4, seed=seed)
            g = random_function(4, seed=seed + 100)
            e1, b1 = and_degree_bound(f, g)
            e2, b2 = or_degree_bound(f, g)
            assert e1 <= b1 and e2 <= b2
            assert restriction_degree_ok(f, {0: 1, 2: 0})

    def test_bound_is_tight_somewhere(self):
        # AND of two ANDs on disjoint-ish supports: degrees genuinely add.
        f = AND(4).restrict({2: 1, 3: 1})  # effectively x0 AND x1
        g = AND(4).restrict({0: 1, 1: 1})  # effectively x2 AND x3
        exact, bound = and_degree_bound(f, g)
        assert exact == 4 == bound
