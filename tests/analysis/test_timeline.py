"""Phase-history inspection (analysis.timeline)."""

import pytest

from repro.analysis.timeline import dominant_term, explain
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams


class TestDominantTerm:
    def test_request_dominated(self):
        m = QSM(QSMParams(g=4))
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
        assert dominant_term(m, 0) == "g*m_rw (requests)"

    def test_contention_dominated(self):
        m = QSM(QSMParams(g=2))
        m.load([0])
        with m.phase() as ph:
            for i in range(9):
                ph.read(i, 0)
        assert dominant_term(m, 0) == "kappa (contention)"

    def test_local_dominated(self):
        m = QSM(QSMParams(g=2))
        with m.phase() as ph:
            ph.local(0, 500)
            ph.write(0, 0, 1)
        assert dominant_term(m, 0) == "m_op (local)"

    def test_sqsm_contention_charged_with_gap(self):
        m = SQSM(SQSMParams(g=4))
        m.load([0])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(1, 0)
        assert dominant_term(m, 0) == "kappa (contention)"

    def test_bsp_latency_floor(self):
        b = BSP(2, BSPParams(g=2, L=50))
        with b.superstep() as ss:
            ss.local(0, 1)
        assert dominant_term(b, 0) == "L (latency floor)"

    def test_bsp_communication(self):
        b = BSP(4, BSPParams(g=4, L=4))
        with b.superstep() as ss:
            for dst in range(1, 4):
                ss.send(0, dst, "m")
        assert dominant_term(b, 0) == "g*h (communication)"

    def test_gsm_terms(self):
        g = GSM(GSMParams(alpha=1, beta=8))
        with g.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
        assert dominant_term(g, 0) == "m_rw/alpha"


class TestExplain:
    def test_shared_memory_table(self):
        m = QSM(QSMParams(g=2))
        with m.phase() as ph:
            ph.write(0, 0, 1)
        out = explain(m)
        assert "QSM phase history" in out
        assert "dominated by" in out

    def test_bsp_table(self):
        b = BSP(2, BSPParams(g=1, L=4))
        with b.superstep() as ss:
            ss.send(0, 1, "x")
        out = explain(b)
        assert "BSP superstep history" in out

    def test_limit_respected(self):
        m = QSM()
        for _ in range(10):
            with m.phase() as ph:
                ph.write(0, 0, 1)
        out = explain(m, limit=3)
        assert "showing 3 of 10" in out


class TestQSMGDBranch:
    def test_qsm_gd_contention_term(self):
        from repro.core import QSMGD, QSMGDParams

        m = QSMGD(QSMGDParams(g=2, d=4))
        m.load([0])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(1, 0)
            ph.read(2, 0)
        # d*kappa = 12 > g*m_rw = 2.
        assert dominant_term(m, 0) == "kappa (contention)"

    def test_qsm_gd_request_term(self):
        from repro.core import QSMGD, QSMGDParams

        m = QSMGD(QSMGDParams(g=8, d=1))
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)
        assert dominant_term(m, 0) == "g*m_rw (requests)"
