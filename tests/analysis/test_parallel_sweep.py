"""The multiprocessing sweep runner: drop-in equality, caching, seeding,
and fault tolerance (crashes, hangs, torn caches)."""

import json
import math
import os
import time
from functools import partial

import pytest

# Alias: the repo's pytest config also collects ``bench_*`` functions, so a
# bare ``bench_cache_path`` import would be picked up as a benchmark target.
from repro.analysis.parallel_sweep import bench_cache_path as cache_path_for
from repro.analysis.parallel_sweep import (
    JOBS_ENV,
    SweepPointError,
    default_jobs,
    derive_point_seed,
    parallel_sweep,
    point_key,
)
from repro.analysis.sweep import sweep

GRID = {"n": [4, 8], "g": [1.0, 2.0]}


def run_point(n, g):
    return {"measured": n * g, "correct": True, "bound": float(n), "tag": f"{n}:{g}"}


def run_seeded(n, g, seed=None):
    return {"measured": float(n), "correct": True, "seed_used": seed}


def run_forbidden(n, g):
    raise AssertionError("point should have been served from the cache")


CALLS = []


def run_counting(n, g):
    CALLS.append((n, g))
    return {"measured": float(n * g), "correct": True}


class TestDropIn:
    def test_parallel_matches_serial(self):
        serial = sweep(GRID, run_point)
        parallel = parallel_sweep(GRID, run_point, jobs=2)
        assert parallel == serial

    def test_jobs_one_needs_no_pickling(self):
        grid = {"n": [2, 3]}
        closure = lambda n: {"measured": float(n), "correct": True}  # noqa: E731
        points = parallel_sweep(grid, closure, jobs=1)
        assert [p.measured for p in points] == [2.0, 3.0]


class TestCache:
    def test_completed_points_are_skipped(self, tmp_path):
        cache = str(tmp_path / "BENCH_test.json")
        first = parallel_sweep(GRID, run_point, jobs=1, cache_path=cache)
        assert os.path.exists(cache)
        # Every point is cached, so a rerun never calls run at all.
        second = parallel_sweep(GRID, run_forbidden, jobs=1, cache_path=cache)
        assert second == first

    def test_partial_cache_runs_only_missing_points(self, tmp_path):
        cache = str(tmp_path / "BENCH_partial.json")
        parallel_sweep({"n": [4], "g": [1.0]}, run_counting, jobs=1, cache_path=cache)
        CALLS.clear()
        points = parallel_sweep(GRID, run_counting, jobs=1, cache_path=cache)
        assert len(points) == 4
        assert sorted(CALLS) == [(4, 2.0), (8, 1.0), (8, 2.0)]  # (4, 1.0) cached

    def test_cache_file_is_json_keyed_by_point(self, tmp_path):
        cache = str(tmp_path / "BENCH_keys.json")
        parallel_sweep(GRID, run_point, jobs=1, cache_path=cache)
        with open(cache, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert set(data) == {point_key(p) for p in
                             ({"n": n, "g": g} for n in GRID["n"] for g in GRID["g"])}

    def test_bench_cache_path_convention(self, tmp_path):
        path = cache_path_for("t1a parity", root=str(tmp_path))
        assert path == str(tmp_path / "BENCH_t1a_parity.json")


class TestSeeding:
    def test_seed_depends_only_on_point(self):
        a = derive_point_seed(0, {"n": 4, "g": 2.0})
        b = derive_point_seed(0, {"g": 2.0, "n": 4})  # key order is irrelevant
        assert a == b
        assert derive_point_seed(0, {"n": 8, "g": 2.0}) != a
        assert derive_point_seed(1, {"n": 4, "g": 2.0}) != a
        assert 0 <= a < 2**63

    def test_seed_arg_injects_derived_seeds(self):
        points = parallel_sweep(GRID, run_seeded, jobs=1, seed_arg="seed", base_seed=5)
        for p in points:
            assert p.extra["seed_used"] == derive_point_seed(5, p.params)

    def test_parallel_seeding_matches_serial(self):
        serial = parallel_sweep(GRID, run_seeded, jobs=1, seed_arg="seed")
        parallel = parallel_sweep(GRID, run_seeded, jobs=2, seed_arg="seed")
        assert parallel == serial


class TestJobs:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3

    def test_bad_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() >= 1


# --- fault-tolerance helpers (module-level so worker processes can run them)


def flaky_point(n, scratch=""):
    """Crash the whole worker process on the first call for each ``n``."""
    marker = os.path.join(scratch, f"crashed-{n}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(17)
    return {"measured": float(n), "correct": True}


def hanging_point(n, scratch=""):
    """Hang (far past any test timeout) on the first call for each ``n``."""
    marker = os.path.join(scratch, f"hung-{n}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        time.sleep(600.0)
    return {"measured": float(n), "correct": True}


def broken_point(n):
    if n == 3:
        raise ValueError("n=3 is cursed")
    return {"measured": float(n), "correct": True}


def healthy_point(n):
    return {"measured": float(n), "correct": True}


class TestFaultTolerance:
    def test_worker_crash_is_isolated_and_retried(self, tmp_path):
        points = parallel_sweep(
            {"n": [2, 5]}, partial(flaky_point, scratch=str(tmp_path)),
            jobs=2, retries=1,
        )
        assert [p.measured for p in points] == [2.0, 5.0]
        assert all(p.extra["sweep_attempts"] == 2 for p in points)
        assert not any(p.failed for p in points)

    def test_crash_without_retries_is_recorded(self, tmp_path):
        [point] = parallel_sweep(
            {"n": [2]}, partial(flaky_point, scratch=str(tmp_path)),
            jobs=2, on_error="record",
        )
        assert point.failed
        assert "worker crashed" in point.error
        assert math.isnan(point.measured)

    def test_hung_point_is_killed_by_the_watchdog(self, tmp_path):
        points = parallel_sweep(
            {"n": [2, 5]}, partial(hanging_point, scratch=str(tmp_path)),
            jobs=2, timeout=1.0, retries=1,
        )
        assert [p.measured for p in points] == [2.0, 5.0]
        assert all(p.extra["sweep_attempts"] == 2 for p in points)

    def test_timeout_without_retries_is_recorded(self, tmp_path):
        [point] = parallel_sweep(
            {"n": [2]}, partial(hanging_point, scratch=str(tmp_path)),
            jobs=1, timeout=0.5, on_error="record",
        )
        assert point.failed
        assert "timed out" in point.error

    def test_on_error_record_keeps_healthy_points(self):
        points = parallel_sweep({"n": [2, 3, 4]}, broken_point,
                                jobs=2, on_error="record")
        by_n = {p.params["n"]: p for p in points}
        assert not by_n[2].failed and not by_n[4].failed
        assert by_n[3].failed
        assert "cursed" in by_n[3].error
        assert math.isnan(by_n[3].measured)

    def test_on_error_raise_raises_sweep_point_error(self):
        with pytest.raises(SweepPointError, match="cursed") as exc_info:
            parallel_sweep({"n": [2, 3]}, broken_point, jobs=2)
        assert exc_info.value.params == {"n": 3}

    def test_error_points_also_recorded_in_serial_mode(self):
        points = parallel_sweep({"n": [2, 3]}, broken_point,
                                jobs=1, on_error="record")
        assert [p.failed for p in points] == [False, True]

    def test_retry_recovers_in_serial_mode(self, tmp_path):
        calls = tmp_path / "calls"

        def flaky_serial(n):
            if not calls.exists():
                calls.write_text("x")
                raise RuntimeError("transient")
            return {"measured": float(n), "correct": True}

        [point] = parallel_sweep({"n": [2]}, flaky_serial, jobs=1, retries=1)
        assert point.measured == 2.0
        assert point.extra["sweep_attempts"] == 2

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            parallel_sweep({"n": [1]}, healthy_point, jobs=0)
        with pytest.raises(ValueError, match="retries"):
            parallel_sweep({"n": [1]}, healthy_point, jobs=1, retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            parallel_sweep({"n": [1]}, healthy_point, jobs=1, timeout=0)
        with pytest.raises(ValueError, match="backoff"):
            parallel_sweep({"n": [1]}, healthy_point, jobs=1, backoff=-0.5)
        with pytest.raises(ValueError, match="on_error"):
            parallel_sweep({"n": [1]}, healthy_point, jobs=1, on_error="panic")


class TestCacheRobustness:
    def test_unreadable_cache_is_quarantined_not_fatal(self, tmp_path):
        cache = str(tmp_path / "BENCH_torn.json")
        with open(cache, "w", encoding="utf-8") as fh:
            fh.write('{"truncated": ')
        with pytest.warns(RuntimeWarning, match="quarantin"):
            points = parallel_sweep({"n": [2]}, healthy_point, jobs=1,
                                    cache_path=cache)
        assert [p.measured for p in points] == [2.0]
        assert os.path.exists(cache + ".quarantined")
        # The fresh cache written afterwards is valid JSON again.
        with open(cache, "r", encoding="utf-8") as fh:
            assert json.load(fh)

    def test_schema_invalid_entries_are_dropped_and_rerun(self, tmp_path):
        cache = str(tmp_path / "BENCH_badentry.json")
        key = point_key({"n": 2})
        with open(cache, "w", encoding="utf-8") as fh:
            json.dump({key: {"bogus": True}}, fh)
        with pytest.warns(RuntimeWarning, match="schema"):
            [point] = parallel_sweep({"n": [2]}, healthy_point, jobs=1,
                                     cache_path=cache)
        assert point.measured == 2.0  # re-run, not served from the bad entry

    def test_error_outcomes_are_never_cached(self, tmp_path):
        cache = str(tmp_path / "BENCH_err.json")
        parallel_sweep({"n": [2, 3]}, broken_point, jobs=1,
                       cache_path=cache, on_error="record")
        # Resume with a healthy run: the failed point re-executes and heals,
        # the good point is served from the cache.
        points = parallel_sweep({"n": [2, 3]}, healthy_point, jobs=1,
                                cache_path=cache)
        assert [p.failed for p in points] == [False, False]
        assert [p.measured for p in points] == [2.0, 3.0]

    def test_partial_results_cached_even_when_a_point_raises(self, tmp_path):
        cache = str(tmp_path / "BENCH_partial_fail.json")
        with pytest.raises(SweepPointError):
            parallel_sweep({"n": [2, 3]}, broken_point, jobs=1,
                           cache_path=cache)
        with open(cache, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert point_key({"n": 2}) in data  # the completed point survived
