"""The multiprocessing sweep runner: drop-in equality, caching, seeding."""

import json
import os

import pytest

# Alias: the repo's pytest config also collects ``bench_*`` functions, so a
# bare ``bench_cache_path`` import would be picked up as a benchmark target.
from repro.analysis.parallel_sweep import bench_cache_path as cache_path_for
from repro.analysis.parallel_sweep import (
    JOBS_ENV,
    default_jobs,
    derive_point_seed,
    parallel_sweep,
    point_key,
)
from repro.analysis.sweep import sweep

GRID = {"n": [4, 8], "g": [1.0, 2.0]}


def run_point(n, g):
    return {"measured": n * g, "correct": True, "bound": float(n), "tag": f"{n}:{g}"}


def run_seeded(n, g, seed=None):
    return {"measured": float(n), "correct": True, "seed_used": seed}


def run_forbidden(n, g):
    raise AssertionError("point should have been served from the cache")


CALLS = []


def run_counting(n, g):
    CALLS.append((n, g))
    return {"measured": float(n * g), "correct": True}


class TestDropIn:
    def test_parallel_matches_serial(self):
        serial = sweep(GRID, run_point)
        parallel = parallel_sweep(GRID, run_point, jobs=2)
        assert parallel == serial

    def test_jobs_one_needs_no_pickling(self):
        grid = {"n": [2, 3]}
        closure = lambda n: {"measured": float(n), "correct": True}  # noqa: E731
        points = parallel_sweep(grid, closure, jobs=1)
        assert [p.measured for p in points] == [2.0, 3.0]


class TestCache:
    def test_completed_points_are_skipped(self, tmp_path):
        cache = str(tmp_path / "BENCH_test.json")
        first = parallel_sweep(GRID, run_point, jobs=1, cache_path=cache)
        assert os.path.exists(cache)
        # Every point is cached, so a rerun never calls run at all.
        second = parallel_sweep(GRID, run_forbidden, jobs=1, cache_path=cache)
        assert second == first

    def test_partial_cache_runs_only_missing_points(self, tmp_path):
        cache = str(tmp_path / "BENCH_partial.json")
        parallel_sweep({"n": [4], "g": [1.0]}, run_counting, jobs=1, cache_path=cache)
        CALLS.clear()
        points = parallel_sweep(GRID, run_counting, jobs=1, cache_path=cache)
        assert len(points) == 4
        assert sorted(CALLS) == [(4, 2.0), (8, 1.0), (8, 2.0)]  # (4, 1.0) cached

    def test_cache_file_is_json_keyed_by_point(self, tmp_path):
        cache = str(tmp_path / "BENCH_keys.json")
        parallel_sweep(GRID, run_point, jobs=1, cache_path=cache)
        with open(cache, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert set(data) == {point_key(p) for p in
                             ({"n": n, "g": g} for n in GRID["n"] for g in GRID["g"])}

    def test_bench_cache_path_convention(self, tmp_path):
        path = cache_path_for("t1a parity", root=str(tmp_path))
        assert path == str(tmp_path / "BENCH_t1a_parity.json")


class TestSeeding:
    def test_seed_depends_only_on_point(self):
        a = derive_point_seed(0, {"n": 4, "g": 2.0})
        b = derive_point_seed(0, {"g": 2.0, "n": 4})  # key order is irrelevant
        assert a == b
        assert derive_point_seed(0, {"n": 8, "g": 2.0}) != a
        assert derive_point_seed(1, {"n": 4, "g": 2.0}) != a
        assert 0 <= a < 2**63

    def test_seed_arg_injects_derived_seeds(self):
        points = parallel_sweep(GRID, run_seeded, jobs=1, seed_arg="seed", base_seed=5)
        for p in points:
            assert p.extra["seed_used"] == derive_point_seed(5, p.params)

    def test_parallel_seeding_matches_serial(self):
        serial = parallel_sweep(GRID, run_seeded, jobs=1, seed_arg="seed")
        parallel = parallel_sweep(GRID, run_seeded, jobs=2, seed_arg="seed")
        assert parallel == serial


class TestJobs:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3

    def test_bad_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() >= 1
