"""Sweep engine, shape fitting, and table rendering."""

import math

import pytest

from repro.analysis import (
    SweepPoint,
    bounded_ratio,
    dominance_constant,
    ratio_trend,
    render_table,
    sweep,
)
from repro.analysis.fit import loglog_slope


class TestSweep:
    def test_grid_cartesian(self):
        pts = sweep(
            {"n": [1, 2], "g": [3, 4]},
            lambda n, g: {"measured": n * g, "correct": True, "bound": n},
        )
        assert len(pts) == 4
        assert {(p.params["n"], p.params["g"]) for p in pts} == {(1, 3), (1, 4), (2, 3), (2, 4)}

    def test_ratio(self):
        pts = sweep({"n": [4]}, lambda n: {"measured": 8.0, "correct": True, "bound": 2.0})
        assert pts[0].ratio == 4.0

    def test_no_bound_means_no_ratio(self):
        pts = sweep({"n": [4]}, lambda n: {"measured": 8.0, "correct": True})
        assert pts[0].ratio is None

    def test_extra_captured(self):
        pts = sweep({"n": [1]}, lambda n: {"measured": 1, "correct": True, "note": "hi"})
        assert pts[0].extra == {"note": "hi"}

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            sweep({"n": [1]}, lambda n: {"measured": 1})


class TestDominance:
    def test_constant(self):
        assert dominance_constant([10, 12], [5, 4]) == 2.0

    def test_violation_shows_below_one(self):
        assert dominance_constant([3, 10], [5, 5]) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            dominance_constant([], [])
        with pytest.raises(ValueError):
            dominance_constant([1], [0])


class TestBoundedRatio:
    def test_tight_family(self):
        ok, spread = bounded_ratio([10, 20, 40], [5, 10, 20])
        assert ok and spread == 1.0

    def test_growing_ratio_detected(self):
        ok, spread = bounded_ratio([1, 10, 100], [1, 1, 1], band=4.0)
        assert not ok and spread == 100.0

    def test_band_validated(self):
        with pytest.raises(ValueError):
            bounded_ratio([1], [1], band=0.5)


class TestTrend:
    def test_loglog_slope_of_power_law(self):
        xs = [2, 4, 8, 16]
        ys = [x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_ratio_trend_zero_for_matching_growth(self):
        ns = [16, 64, 256]
        measured = [4 * math.log2(n) for n in ns]
        reference = [math.log2(n) for n in ns]
        assert ratio_trend(ns, measured, reference) == pytest.approx(0.0, abs=1e-9)

    def test_ratio_trend_positive_when_measured_grows_faster(self):
        ns = [16, 64, 256]
        measured = [n * 1.0 for n in ns]
        reference = [math.log2(n) for n in ns]
        assert ratio_trend(ns, measured, reference) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 2])


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["col", "x"], [[1, 2.0], [333, None]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "-" in lines[1]
        assert lines[3].startswith("333")
        assert lines[3].rstrip().endswith("-")

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 1a")
        assert out.splitlines()[0] == "Table 1a"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = render_table(["v"], [[12345.678]])
        assert "1.23e+04" in out
