"""The MPC cost machine: params, round charges, observability, chaos hooks."""

import pytest

from repro.core import BSP, MPCParams
from repro.faults.plan import random_fault_plan
from repro.models import MPC


class TestMPCParams:
    def test_defaults(self):
        assert MPCParams().s == 4.0

    def test_fractional_s_allowed(self):
        # s = n^epsilon is a real in the literature; 1 is the floor.
        assert MPCParams(s=1.5).s == 1.5
        assert MPCParams(s=1.0).s == 1.0

    @pytest.mark.parametrize("bad", [0.5, 0, -2, True, "4"])
    def test_rejects_invalid_s(self, bad):
        with pytest.raises((ValueError, TypeError)):
            MPCParams(s=bad)

    def test_frozen(self):
        prm = MPCParams()
        with pytest.raises(Exception):
            prm.s = 8.0


class TestRoundCharge:
    def test_is_a_bsp(self):
        # MPC rides the superstep substrate: one round == one superstep.
        assert issubclass(MPC, BSP)
        assert MPC(2).model_label == "MPC"

    def test_round_within_capacity_costs_one(self):
        machine = MPC(4, MPCParams(s=4.0))
        with machine.superstep() as ss:
            for dst in range(1, 4):
                ss.send(0, dst, "x")  # h = 3 <= s
        assert machine.time == 1.0

    def test_round_beyond_capacity_charges_h_over_s(self):
        machine = MPC(2, MPCParams(s=2.0))
        with machine.superstep() as ss:
            for i in range(6):
                ss.send(0, 1, i)  # h = 6, s = 2
        assert machine.time == 3.0

    def test_local_work_is_free(self):
        # MPC is communication-bounded: local ops never raise the charge.
        machine = MPC(2, MPCParams(s=4.0))
        with machine.superstep() as ss:
            ss.local(0, 1000)
        assert machine.time == 1.0

    def test_cost_record_terms_and_model_tag(self):
        machine = MPC(2, MPCParams(s=2.0), record_costs=True)
        with machine.superstep() as ss:
            for i in range(4):
                ss.send(0, 1, i)
        (rec,) = machine.cost_records
        assert rec.model == "MPC"
        assert rec.terms == {"round": 1.0, "h/s": 2.0}
        assert rec.dominant == "h/s"
        assert rec.cost == max(rec.terms.values())

    def test_round_floor_dominates_on_tie(self):
        machine = MPC(2, MPCParams(s=4.0), record_costs=True)
        with machine.superstep() as ss:
            for i in range(4):
                ss.send(0, 1, i)  # h/s == 1.0 exactly
        (rec,) = machine.cost_records
        assert rec.dominant == "round"


class TestObservability:
    def test_rounds_counts_supersteps(self):
        machine = MPC(2)
        for _ in range(3):
            with machine.superstep() as ss:
                ss.send(0, 1, "m")
        assert machine.rounds == 3

    def test_max_message_volume_tracks_largest_h(self):
        machine = MPC(2, MPCParams(s=16.0))
        with machine.superstep() as ss:
            ss.send(0, 1, "a")
        with machine.superstep() as ss:
            for i in range(5):
                ss.send(0, 1, i)
        assert machine.max_message_volume == 5

    def test_empty_machine_volume_zero(self):
        assert MPC(2).max_message_volume == 0


class TestChaosHooks:
    def test_fault_plan_attaches_and_fires(self):
        plan = random_fault_plan("bsp", seed=13, max_faults=2, procs=4)
        machine = MPC(4, MPCParams(s=4.0), fault_plan=plan)
        for _ in range(4):
            with machine.superstep() as ss:
                for dst in range(1, 4):
                    ss.send(0, dst, "payload")
        # The plan attached; any fired events carry the BSP event schema.
        for event in machine.fault_events:
            assert set(event.to_dict()) >= {"step", "kind"}

    def test_engine_selection(self):
        pytest.importorskip("numpy")
        assert MPC(2, engine="vector").engine == "vector"
        assert MPC(2, engine="reference").engine == "reference"
