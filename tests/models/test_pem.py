"""The PEM cost machine: params, I/O charges, winner policies, chaos hooks."""

import pytest

from repro.core import PEMParams, SharedMemoryMachine
from repro.core.ir import WriteOp, run_phase
from repro.faults.winners import LastWriterWins
from repro.models import PEM


class TestPEMParams:
    def test_defaults(self):
        prm = PEMParams()
        assert prm.M == 64 and prm.B == 8

    def test_cache_must_hold_a_block(self):
        with pytest.raises(ValueError, match="M >= B"):
            PEMParams(M=4, B=8)
        assert PEMParams(M=8, B=8).B == 8

    @pytest.mark.parametrize("bad", [0, -1, 2.0, True, "8"])
    def test_rejects_invalid_counts(self, bad):
        with pytest.raises((ValueError, TypeError)):
            PEMParams(M=bad, B=1)
        with pytest.raises((ValueError, TypeError)):
            PEMParams(M=64, B=bad)

    def test_frozen(self):
        prm = PEMParams()
        with pytest.raises(Exception):
            prm.B = 16


class TestIOCharge:
    def test_is_shared_memory(self):
        assert issubclass(PEM, SharedMemoryMachine)
        assert PEM().model_label == "PEM"

    def test_block_of_writes_costs_one_io(self):
        machine = PEM(PEMParams(M=64, B=8))
        with machine.phase() as ph:
            for addr in range(8):
                ph.write(0, addr, addr)  # m_rw = 8 = B
        assert machine.time == 1.0

    def test_partial_block_rounds_up(self):
        machine = PEM(PEMParams(M=64, B=8))
        with machine.phase() as ph:
            for addr in range(9):
                ph.write(0, addr, addr)  # ceil(9/8) = 2
        assert machine.time == 2.0

    def test_contention_serializes_at_block_level(self):
        # kappa = 4 writers on one cell beats ceil(4/8) = 1.
        machine = PEM(PEMParams(M=64, B=8), num_processors=4)
        run_phase(machine, [WriteOp(i, 0, i) for i in range(4)])
        assert machine.time == 4.0

    def test_local_ops_never_exceed_the_unit_floor(self):
        # Computation inside the cache is free: 500 local ops charge the
        # same one-I/O phase floor the substrate gives an empty phase.
        machine = PEM(PEMParams(M=64, B=8))
        with machine.phase() as ph:
            ph.local(0, 500)
        assert machine.time == 1.0

    def test_cost_record_terms_and_model_tag(self):
        machine = PEM(PEMParams(M=64, B=4), record_costs=True)
        with machine.phase() as ph:
            for addr in range(8):
                ph.write(0, addr, 1)
        (rec,) = machine.cost_records
        assert rec.model == "PEM"
        assert rec.terms == {"ceil(m_rw/B)": 2.0, "kappa": 1.0}
        assert rec.dominant == "ceil(m_rw/B)"
        assert rec.cost == max(rec.terms.values())


class TestWriteSemantics:
    def test_arbitrary_winner_via_policy(self):
        machine = PEM(winner_policy=LastWriterWins())
        run_phase(machine, [WriteOp(0, 5, "first"), WriteOp(1, 5, "second")])
        assert machine._memory[5] == "second"

    def test_seeded_winner_is_deterministic(self):
        def run():
            machine = PEM(seed=21)
            run_phase(
                machine, [WriteOp(i, 3, f"v{i}") for i in range(4)]
            )
            return machine._memory[3]

        assert run() == run()

    def test_concurrent_reads_see_pre_phase_value(self):
        machine = PEM()
        machine.poke(2, 7)
        with machine.phase() as ph:
            handles = [ph.read(i, 2) for i in range(3)]
        assert [h.value for h in handles] == [7, 7, 7]

    def test_read_write_same_cell_conflicts(self):
        from repro.core.machine import MemoryConflictError

        machine = PEM()
        machine.poke(0, 1)
        with pytest.raises(MemoryConflictError):
            with machine.phase() as ph:
                ph.read(0, 0)
                ph.write(1, 0, 2)


class TestEngines:
    def test_engine_selection(self):
        pytest.importorskip("numpy")
        assert PEM(engine="vector").engine == "vector"
        assert PEM(engine="reference").engine == "reference"

    def test_engines_agree_on_a_small_program(self):
        pytest.importorskip("numpy")

        def run(eng):
            machine = PEM(PEMParams(M=16, B=4), seed=9, engine=eng)
            with machine.phase() as ph:
                ph.write_block(0, [(a, a * a) for a in range(6)])
            with machine.phase() as ph:
                handle = ph.read_block(1, range(6))
            return machine.time, handle.values

        assert run("reference") == run("vector")
