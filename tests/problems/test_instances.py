"""Sparse arrays, loads, sort inputs, lists — generators and verifiers."""

import pytest

from repro.problems import (
    gen_list,
    gen_loads,
    gen_padded_sort_input,
    gen_sort_input,
    gen_sparse_array,
    verify_lac,
    verify_list_ranks,
    verify_load_balance,
    verify_padded_sort,
    verify_sorted,
)


class TestSparseArray:
    def test_item_count_bounded(self):
        arr = gen_sparse_array(50, 10, seed=1)
        assert sum(1 for v in arr if v is not None) <= 10

    def test_exact_count(self):
        arr = gen_sparse_array(50, 10, seed=2, exact=True)
        assert sum(1 for v in arr if v is not None) == 10

    def test_items_tagged_with_position(self):
        arr = gen_sparse_array(20, 5, seed=3, exact=True)
        for i, v in enumerate(arr):
            if v is not None:
                assert v == f"item@{i}"

    def test_h_validated(self):
        with pytest.raises(ValueError):
            gen_sparse_array(5, 6)


class TestVerifyLac:
    def test_accepts_valid(self):
        arr = [None, "a", "b", None]
        assert verify_lac(arr, ["b", "a", None], 2)

    def test_rejects_missing_item(self):
        arr = [None, "a", "b", None]
        assert not verify_lac(arr, ["a", None], 2)

    def test_rejects_duplicate(self):
        arr = [None, "a", None, None]
        assert not verify_lac(arr, ["a", "a"], 1)

    def test_rejects_blowup(self):
        arr = ["a"]
        assert not verify_lac(arr, ["a"] + [None] * 1000, 1)


class TestLoads:
    def test_total_objects(self):
        loads = gen_loads(5, 12, seed=1)
        assert sum(len(l) for l in loads) == 12

    def test_skew_concentrates(self):
        flat = gen_loads(10, 200, skew=4.0, seed=2)
        heavy = max(len(l) for l in flat)
        assert heavy > 200 // 10  # far from uniform

    def test_verify_rejects_content_change(self):
        before = [["a"], ["b"]]
        assert not verify_load_balance(before, [["a"], ["c"]])

    def test_verify_rejects_overload(self):
        before = [["a", "b", "c", "d"], []]
        after = [["a", "b", "c", "d"], []]
        assert not verify_load_balance(before, after, max_per_proc_constant=1.0)

    def test_skew_validated(self):
        with pytest.raises(ValueError):
            gen_loads(2, 2, skew=0.5)


class TestSortInputs:
    def test_sort_input_range(self):
        vals = gen_sort_input(100, universe=10, seed=1)
        assert all(0 <= v < 10 for v in vals)

    def test_padded_input_range(self):
        vals = gen_padded_sort_input(100, seed=2)
        assert all(0.0 <= v <= 1.0 for v in vals)

    def test_verify_sorted(self):
        assert verify_sorted([3, 1, 2], [1, 2, 3])
        assert not verify_sorted([3, 1, 2], [1, 3, 2])
        assert not verify_sorted([3, 1], [1, 2])

    def test_verify_padded_sort(self):
        assert verify_padded_sort([0.3, 0.1], [None, 0.1, None, 0.3])
        assert not verify_padded_sort([0.3, 0.1], [0.3, None, 0.1])
        assert not verify_padded_sort([0.3], [0.3] + [None] * 10_000)


class TestLists:
    def test_gen_list_is_valid(self):
        nxt, order = gen_list(20, seed=1)
        assert len(order) == 20
        # order's consecutive pairs match next pointers.
        for a, b in zip(order, order[1:]):
            assert nxt[a] == b
        assert nxt[order[-1]] is None

    def test_verify_accepts_truth(self):
        nxt, order = gen_list(10, seed=2)
        ranks = [0] * 10
        for pos, node in enumerate(order):
            ranks[node] = 10 - pos
        assert verify_list_ranks(nxt, ranks)

    def test_verify_rejects_wrong_rank(self):
        nxt, order = gen_list(5, seed=3)
        ranks = [1] * 5
        assert not verify_list_ranks(nxt, ranks)

    def test_verify_rejects_cycle(self):
        assert not verify_list_ranks([1, 2, 0], [1, 2, 3])

    def test_verify_rejects_two_heads(self):
        assert not verify_list_ranks([None, None], [1, 1])

    def test_empty_list(self):
        assert verify_list_ranks([], [])
