"""Bit-problem generators and verifiers."""

import pytest

from repro.problems import gen_bits, verify_or, verify_parity


class TestGenBits:
    def test_length(self):
        assert len(gen_bits(37, seed=0)) == 37

    def test_reproducible(self):
        assert gen_bits(20, seed=5) == gen_bits(20, seed=5)

    def test_density_extremes(self):
        assert gen_bits(30, density=0.0, seed=1) == [0] * 30
        assert gen_bits(30, density=1.0, seed=1) == [1] * 30

    def test_density_validated(self):
        with pytest.raises(ValueError):
            gen_bits(4, density=-0.1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            gen_bits(-1)


class TestVerifiers:
    def test_parity(self):
        assert verify_parity([1, 0, 1, 1], 1)
        assert not verify_parity([1, 0, 1, 1], 0)
        assert not verify_parity([1], 2)

    def test_or(self):
        assert verify_or([0, 0, 1], 1)
        assert verify_or([0, 0], 0)
        assert not verify_or([0, 0], 1)
        assert not verify_or([1], 7)
