"""JSONL and Chrome trace-event exporters."""

import io
import json

import pytest

from repro.core import QSM, QSMParams
from repro.obs import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.records import PhaseCostRecord


def sample_records():
    m = QSM(QSMParams(g=2.0), record_costs=True)
    m.load([0] * 8)
    for i in range(4):
        with m.phase() as ph:
            for proc in range(i + 1):
                ph.write(proc, 7, proc)
            ph.local(0, 3)
    return m.cost_records


class TestJsonl:
    def test_round_trip_equality_via_path(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(records, path) == len(records)
        assert read_jsonl(path) == records

    def test_round_trip_via_file_object(self):
        records = sample_records()
        buf = io.StringIO()
        write_jsonl(records, buf)
        buf.seek(0)
        assert read_jsonl(buf) == records

    def test_one_json_object_per_line(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(records, path)
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == len(records)
        for line in lines:
            json.loads(line)

    def test_bad_line_reports_line_number(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(sample_records()[0].to_dict()) + "\n")
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)

    def test_blank_lines_skipped(self):
        records = sample_records()
        buf = io.StringIO()
        write_jsonl(records, buf)
        buf.write("\n\n")
        buf.seek(0)
        assert read_jsonl(buf) == records


def faulted_records():
    from repro.faults.plan import Fault, FaultPlan

    plan = FaultPlan([Fault("corrupt", 1, addr=7, value=-1)])
    m = QSM(QSMParams(g=2.0), record_costs=True, fault_plan=plan)
    for _ in range(3):
        with m.phase() as ph:
            ph.write(0, 7, 5)
    return m.cost_records


class TestFaultEventsInRecords:
    def test_faults_survive_jsonl_round_trip(self, tmp_path):
        records = faulted_records()
        assert [f["kind"] for rec in records for f in rec.faults] == ["corrupt"]
        path = str(tmp_path / "faulted.jsonl")
        write_jsonl(records, path)
        back = read_jsonl(path)
        assert back == records
        assert back[1].faults == records[1].faults

    def test_faults_survive_dict_round_trip(self):
        rec = faulted_records()[1]
        assert rec.faults
        assert PhaseCostRecord.from_dict(rec.to_dict()) == rec

    def test_chrome_trace_emits_instant_fault_events(self):
        events = chrome_trace_events(faulted_records())
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        [instant] = instants
        assert instant["name"] == "fault: corrupt"
        assert instant["cat"] == "fault"
        assert instant["args"]["step"] == 1
        # The instant sits at its phase's start timestamp.
        phase1 = [e for e in events if e["ph"] == "X"][1]
        assert instant["ts"] == phase1["ts"]

    def test_no_fault_no_instant_events(self):
        assert all(e["ph"] != "i" for e in chrome_trace_events(sample_records()))


class TestChromeTrace:
    def test_events_have_required_schema(self):
        events = chrome_trace_events(sample_records(), pid=2, tid=7)
        assert events
        for ev in events:
            assert ev["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(ev)
            assert ev["pid"] == 2 and ev["tid"] == 7
            assert ev["dur"] >= 0

    def test_ts_monotone_and_end_to_end(self):
        records = sample_records()
        events = chrome_trace_events(records)
        ts = [ev["ts"] for ev in events]
        assert ts == sorted(ts)
        # events tile the simulated timeline with no gaps
        for prev, cur in zip(events, events[1:]):
            assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])
        assert events[-1]["ts"] + events[-1]["dur"] == pytest.approx(
            sum(r.cost for r in records)
        )

    def test_args_carry_provenance(self):
        records = sample_records()
        ev = chrome_trace_events(records)[0]
        assert ev["args"]["terms"] == dict(records[0].terms)
        assert ev["args"]["dominant"] == records[0].dominant
        assert ev["name"].endswith(records[0].dominant)

    def test_write_chrome_trace_object_form(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(records, path) == len(records)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert isinstance(payload["traceEvents"], list)
        assert len(payload["traceEvents"]) == len(records)
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_records(self, tmp_path):
        path = str(tmp_path / "empty.json")
        assert write_chrome_trace([], path) == 0
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh)["traceEvents"] == []
