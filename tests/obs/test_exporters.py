"""JSONL and Chrome trace-event exporters."""

import io
import json

import pytest

from repro.core import QSM, QSMParams
from repro.obs import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.records import PhaseCostRecord


def sample_records():
    m = QSM(QSMParams(g=2.0), record_costs=True)
    m.load([0] * 8)
    for i in range(4):
        with m.phase() as ph:
            for proc in range(i + 1):
                ph.write(proc, 7, proc)
            ph.local(0, 3)
    return m.cost_records


class TestJsonl:
    def test_round_trip_equality_via_path(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(records, path) == len(records)
        assert read_jsonl(path) == records

    def test_round_trip_via_file_object(self):
        records = sample_records()
        buf = io.StringIO()
        write_jsonl(records, buf)
        buf.seek(0)
        assert read_jsonl(buf) == records

    def test_one_json_object_per_line(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(records, path)
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == len(records)
        for line in lines:
            json.loads(line)

    def test_bad_line_reports_line_number(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(sample_records()[0].to_dict()) + "\n")
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)

    def test_blank_lines_skipped(self):
        records = sample_records()
        buf = io.StringIO()
        write_jsonl(records, buf)
        buf.write("\n\n")
        buf.seek(0)
        assert read_jsonl(buf) == records


def faulted_records():
    from repro.faults.plan import Fault, FaultPlan

    plan = FaultPlan([Fault("corrupt", 1, addr=7, value=-1)])
    m = QSM(QSMParams(g=2.0), record_costs=True, fault_plan=plan)
    for _ in range(3):
        with m.phase() as ph:
            ph.write(0, 7, 5)
    return m.cost_records


class TestFaultEventsInRecords:
    def test_faults_survive_jsonl_round_trip(self, tmp_path):
        records = faulted_records()
        assert [f["kind"] for rec in records for f in rec.faults] == ["corrupt"]
        path = str(tmp_path / "faulted.jsonl")
        write_jsonl(records, path)
        back = read_jsonl(path)
        assert back == records
        assert back[1].faults == records[1].faults

    def test_faults_survive_dict_round_trip(self):
        rec = faulted_records()[1]
        assert rec.faults
        assert PhaseCostRecord.from_dict(rec.to_dict()) == rec

    def test_chrome_trace_emits_instant_fault_events(self):
        events = chrome_trace_events(faulted_records())
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        [instant] = instants
        assert instant["name"] == "fault: corrupt"
        assert instant["cat"] == "fault"
        assert instant["args"]["step"] == 1
        # The instant sits at its phase's start timestamp.
        phase1 = [e for e in events if e["ph"] == "X"][1]
        assert instant["ts"] == phase1["ts"]

    def test_no_fault_no_instant_events(self):
        assert all(e["ph"] != "i" for e in chrome_trace_events(sample_records()))


class TestChromeTrace:
    def test_events_have_required_schema(self):
        events = chrome_trace_events(sample_records(), pid=2, tid=7)
        assert events
        for ev in events:
            assert ev["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(ev)
            assert ev["pid"] == 2 and ev["tid"] == 7
            assert ev["dur"] >= 0

    def test_ts_monotone_and_end_to_end(self):
        records = sample_records()
        events = chrome_trace_events(records)
        ts = [ev["ts"] for ev in events]
        assert ts == sorted(ts)
        # events tile the simulated timeline with no gaps
        for prev, cur in zip(events, events[1:]):
            assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])
        assert events[-1]["ts"] + events[-1]["dur"] == pytest.approx(
            sum(r.cost for r in records)
        )

    def test_args_carry_provenance(self):
        records = sample_records()
        ev = chrome_trace_events(records)[0]
        assert ev["args"]["terms"] == dict(records[0].terms)
        assert ev["args"]["dominant"] == records[0].dominant
        assert ev["name"].endswith(records[0].dominant)

    def test_write_chrome_trace_object_form(self, tmp_path):
        records = sample_records()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(records, path) == len(records)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert isinstance(payload["traceEvents"], list)
        assert len(payload["traceEvents"]) == len(records)
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_records(self, tmp_path):
        path = str(tmp_path / "empty.json")
        assert write_chrome_trace([], path) == 0
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh)["traceEvents"] == []


class TestTraceLanes:
    def test_lane_pids_are_distinct(self):
        from repro.obs.exporters import (
            METRICS_PID,
            PHASE_PID,
            SCHEDULER_PID,
            TRACE_LANES,
            lane_pid,
        )

        pids = [lane_pid(lane) for lane in TRACE_LANES]
        assert len(set(pids)) == len(pids)
        assert (PHASE_PID, SCHEDULER_PID, METRICS_PID) == (0, 1, 2)

    def test_unknown_lane_raises(self):
        from repro.obs.exporters import lane_pid

        with pytest.raises(ValueError):
            lane_pid("nope")

    def test_lane_metadata_event_names_process(self):
        from repro.obs.exporters import lane_metadata_event, lane_pid

        ev = lane_metadata_event("metrics")
        assert ev["ph"] == "M" and ev["name"] == "process_name"
        assert ev["pid"] == lane_pid("metrics")
        assert "metrics" in ev["args"]["name"]


class TestMetricsCounterEvents:
    def sample_snapshots(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.snapshot import MetricsSnapshot

        r = MetricsRegistry()
        r.counter("repro_x_total", "").inc(2, status="ok")
        r.histogram("repro_y_seconds", "").observe(4.0)
        return [
            MetricsSnapshot(seq=0, t_wall=0.0, t_rel=0.5, metrics=r.collect())
        ]

    def test_counter_and_histogram_tracks(self):
        from repro.obs.exporters import METRICS_PID, metrics_counter_events

        events = metrics_counter_events(self.sample_snapshots())
        assert events[0]["ph"] == "M"  # process_name metadata leads
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "repro_x_total{status=ok}" in names
        assert "repro_y_seconds.count" in names
        assert "repro_y_seconds.mean" in names
        for ev in counters:
            assert ev["pid"] == METRICS_PID
            assert ev["ts"] == pytest.approx(0.5e6)

    def test_accepts_dict_form(self):
        from repro.obs.exporters import metrics_counter_events

        dicts = [s.to_dict() for s in self.sample_snapshots()]
        assert metrics_counter_events(dicts) == metrics_counter_events(
            self.sample_snapshots()
        )


class TestCombinedTrace:
    def test_all_three_lanes_present_and_disjoint(self, tmp_path):
        from repro.obs.exporters import TRACE_LANES, write_combined_trace

        spans = [
            {"name": "t", "status": "done", "worker": 1,
             "start": 0.0, "end": 0.5, "key": "k", "attempts": 1},
        ]
        r_snaps = TestMetricsCounterEvents().sample_snapshots()
        path = str(tmp_path / "combined.json")
        count = write_combined_trace(
            path, spans=spans, snapshots=r_snaps,
            phase_lanes=[("task-a", sample_records())],
        )
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        events = payload["traceEvents"]
        assert count == len(events)
        # The "service" lane only materialises on traced runs; an
        # untraced export populates exactly the other three.
        expected = {
            (pid, name) for key, (pid, name) in TRACE_LANES.items()
            if key != "service"
        }
        assert {e["pid"] for e in events} == {pid for pid, _ in expected}
        process_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {name for _, name in expected}

    def test_phase_rows_get_distinct_tids_with_names(self):
        from repro.obs.exporters import PHASE_PID, combined_trace_events

        events = combined_trace_events(
            phase_lanes=[("a", sample_records()), ("b", sample_records())]
        )
        rows = {
            e["tid"]: e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == PHASE_PID
        }
        assert rows == {0: "a", 1: "b"}

    def test_empty_inputs_yield_empty_trace(self):
        from repro.obs.exporters import combined_trace_events

        assert combined_trace_events() == []


class TestTraceSpanEvents:
    def _spans(self):
        from repro.obs.tracing import Span

        root = Span("job:demo", kind="job", start=100.0)
        root.end = 100.5
        child = Span(
            "p0", kind="task",
            trace_id=root.trace_id, parent_span_id=root.span_id, start=100.1,
        )
        child.end = 100.3
        return [root.to_dict(), child.to_dict()]

    def test_spans_become_service_lane_slices(self):
        from repro.obs.exporters import SERVICE_PID, trace_span_events

        events = trace_span_events(self._spans())
        slices = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in slices] == ["job:demo", "p0"]
        assert all(e["pid"] == SERVICE_PID for e in events)
        # Kinds land on distinct thread rows; durations are in us.
        assert len({e["tid"] for e in slices}) == 2
        assert slices[0]["dur"] == pytest.approx(500_000)
        assert slices[0]["args"]["kind"] == "job"

    def test_parent_edges_emit_flow_pairs(self):
        from repro.obs.exporters import trace_span_events

        events = trace_span_events(self._spans())
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        # The arrow starts inside the parent slice and binds enclosing.
        assert finishes[0]["bp"] == "e"

    def test_orphan_parent_edge_draws_no_flow(self):
        from repro.obs.exporters import trace_span_events
        from repro.obs.tracing import Span

        orphan = Span("lost", kind="exec", parent_span_id="ab" * 8, start=1.0)
        orphan.end = 2.0
        events = trace_span_events([orphan.to_dict()])
        assert not [e for e in events if e["ph"] in ("s", "f")]

    def test_combined_trace_links_exec_span_to_phase_rows(self):
        from repro.obs.exporters import SERVICE_PID, combined_trace_events
        from repro.obs.tracing import Span

        span = Span("p0", kind="exec", start=10.0)
        span.end = 10.2
        stamp = {"trace_id": span.trace_id, "span_id": span.span_id}
        records = [
            PhaseCostRecord.from_dict(dict(rec.to_dict(), trace=stamp))
            for rec in sample_records()
        ]
        events = combined_trace_events(
            phase_lanes=[("p0", records)], trace_spans=[span.to_dict()]
        )
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert starts and len(starts) == len(finishes)
        assert any(e["pid"] == SERVICE_PID for e in starts)
        assert all(e["pid"] != SERVICE_PID for e in finishes)
