"""Snapshot JSONL stream: exact round trips, final flags, live status.

The writer truncates on first emit (a run owns its stream), always
appends a ``final`` snapshot on close, and the reader tolerates a torn
last line so a live follower can tail a file mid-write.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import (
    DEFAULT_INTERVAL,
    MetricsSnapshot,
    SnapshotWriter,
    default_interval,
    live_status_line,
    read_snapshots,
)


def scratch_registry():
    r = MetricsRegistry()
    r.counter("repro_campaign_tasks_total", "").inc(3, status="done")
    r.gauge("repro_campaign_tasks", "").set(8)
    r.histogram("repro_campaign_task_seconds", "").observe(0.5)
    return r


class TestRoundTrip:
    def test_jsonl_read_write_identity(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        registry = scratch_registry()
        writer = SnapshotWriter(path, registry=registry, interval=0.001)
        writer.emit()
        registry.counter("repro_campaign_tasks_total", "").inc(status="done")
        writer.close()
        back = read_snapshots(path)
        assert back == writer.snapshots
        assert [s.seq for s in back] == [0, 1]
        assert [s.final for s in back] == [False, True]

    def test_to_from_dict_exact(self):
        snap = MetricsSnapshot(
            seq=2, t_wall=100.5, t_rel=3.25,
            metrics=scratch_registry().collect(), final=True,
        )
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap

    def test_from_dict_rejects_unknown_schema(self):
        snap = MetricsSnapshot(seq=0, t_wall=0.0, t_rel=0.0, metrics=[])
        data = snap.to_dict()
        data["schema"] = "something/else"
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict(data)

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        writer = SnapshotWriter(path, registry=scratch_registry(), interval=0.001)
        writer.emit()
        writer.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.metrics/1", "seq": 99, "trunc')
        back = read_snapshots(path)
        assert [s.seq for s in back] == [0, 1]


class TestSnapshotAccessors:
    def test_value_sums_series_when_labels_none(self):
        r = MetricsRegistry()
        c = r.counter("x", "")
        c.inc(1, status="ok")
        c.inc(2, status="fail")
        snap = MetricsSnapshot(seq=0, t_wall=0, t_rel=0, metrics=r.collect())
        assert snap.value("x") == 3
        assert snap.value("x", {"status": "ok"}) == 1
        assert snap.value("missing") == 0.0

    def test_histogram_stats(self):
        r = MetricsRegistry()
        h = r.histogram("h", "")
        h.observe(1.0)
        h.observe(3.0)
        snap = MetricsSnapshot(seq=0, t_wall=0, t_rel=0, metrics=r.collect())
        count, total = snap.histogram_stats("h")
        assert count == 2
        assert total == 4.0


class TestWriter:
    def test_truncates_previous_stream(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        first = SnapshotWriter(path, registry=scratch_registry(), interval=0.001)
        first.emit()
        first.close()
        second = SnapshotWriter(path, registry=scratch_registry(), interval=0.001)
        second.close()
        back = read_snapshots(path)
        assert [s.seq for s in back] == [0]
        assert back[0].final

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        writer = SnapshotWriter(path, registry=scratch_registry(), interval=0.001)
        writer.close()
        writer.close()
        assert len(read_snapshots(path)) == 1

    def test_maybe_emit_respects_interval(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        writer = SnapshotWriter(path, registry=scratch_registry(), interval=3600)
        assert writer.maybe_emit() is not None  # first emit is unconditional
        assert writer.maybe_emit() is None
        writer.close()

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "metrics.jsonl")
        writer = SnapshotWriter(path, registry=scratch_registry(), interval=0.001)
        writer.close()
        assert len(read_snapshots(path)) == 1

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotWriter(str(tmp_path / "m.jsonl"), interval=0.0 - 1.0)


class TestDefaultInterval:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_INTERVAL", raising=False)
        assert default_interval() == DEFAULT_INTERVAL

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "0.25")
        assert default_interval() == 0.25

    def test_malformed_env_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "soon")
        assert default_interval() == DEFAULT_INTERVAL

    def test_non_positive_env_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "-2")
        assert default_interval() == DEFAULT_INTERVAL


class TestLiveStatusLine:
    def sample_snapshot(self, done=3, total=8, final=False):
        r = MetricsRegistry()
        r.gauge("repro_campaign_tasks", "").set(total)
        r.gauge("repro_campaign_jobs", "").set(2)
        r.gauge("repro_campaign_frontier_size", "").set(2)
        r.gauge("repro_campaign_in_flight", "").set(1)
        c = r.counter("repro_campaign_tasks_total", "")
        c.inc(done, status="done")
        c.inc(1, status="cached")
        r.counter("repro_store_hits_total", "").inc(1)
        r.counter("repro_store_misses_total", "").inc(3)
        h = r.histogram("repro_campaign_task_seconds", "")
        h.observe(0.5)
        h.observe(1.5)
        return MetricsSnapshot(
            seq=0, t_wall=10.0, t_rel=2.5, metrics=r.collect(), final=final
        )

    def test_renders_progress_fields(self):
        line = live_status_line(self.sample_snapshot())
        assert "4/8 done" in line  # done + cached
        assert "(1 cached)" in line
        assert "frontier 2" in line
        assert "in-flight 1" in line
        assert "hit-rate 25%" in line
        assert "ETA" in line

    def test_final_flag_rendered(self):
        line = live_status_line(self.sample_snapshot(final=True))
        assert "(final)" in line
