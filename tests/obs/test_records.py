"""Cost-provenance records: construction, aggregation, machine integration."""

import pytest

from repro.core import (
    BSP,
    GSM,
    QSM,
    SQSM,
    BSPParams,
    GSMParams,
    QSMParams,
    SQSMParams,
)
from repro.obs import (
    PhaseCostRecord,
    RunCostSummary,
    dominant_fractions,
    machine_cost_records,
    summarize,
)
from repro.obs.records import dominant_of


def run_contended_phases(machine, phases=3):
    """A small program with distinct contention per phase."""
    machine.load([0] * 8)
    for i in range(phases):
        with machine.phase() as ph:
            # i+1 distinct writers pile onto cell 7; one spread write each.
            for proc in range(i + 1):
                ph.write(proc, 7, proc)
            ph.local(0, 2)
    return machine


class TestDominantOf:
    def test_picks_max(self):
        assert dominant_of({"a": 1.0, "b": 3.0, "c": 2.0}) == "b"

    def test_ties_break_to_first_key(self):
        assert dominant_of({"m_op": 4.0, "g*m_rw": 4.0}) == "m_op"
        assert dominant_of({"L": 8.0, "g*h": 8.0, "w": 2.0}) == "L"

    def test_empty_terms(self):
        assert dominant_of({}) == ""


class TestPhaseCostRecord:
    def test_dict_round_trip_exact(self):
        rec = PhaseCostRecord(
            index=3,
            model="QSM",
            terms={"m_op": 2.0, "g*m_rw": 8.0, "kappa": 5.0},
            dominant="g*m_rw",
            cost=8.0,
            contention={5: 1, 1: 3},
            ops_per_proc={0: 4, 7: 1},
            wall_time=0.25,
        )
        assert PhaseCostRecord.from_dict(rec.to_dict()) == rec

    def test_dict_round_trip_coerces_json_string_keys(self):
        # json.dumps turns int keys into strings; from_dict must undo that.
        import json

        rec = PhaseCostRecord(
            index=0, model="BSP", terms={"L": 4.0}, dominant="L", cost=4.0,
            contention={2: 1}, ops_per_proc={1: 3},
        )
        rebuilt = PhaseCostRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert rebuilt == rec
        assert list(rebuilt.contention) == [2]


class TestMachineIntegration:
    def test_flag_off_records_nothing(self):
        m = run_contended_phases(QSM(QSMParams(g=2.0)))
        assert m.cost_records == []

    def test_one_record_per_phase(self):
        m = run_contended_phases(QSM(QSMParams(g=2.0), record_costs=True))
        assert len(m.cost_records) == m.phase_count
        assert [r.index for r in m.cost_records] == list(range(m.phase_count))

    @pytest.mark.parametrize(
        "factory,label,term_keys",
        [
            (lambda: QSM(QSMParams(g=2.0), record_costs=True), "QSM",
             {"m_op", "g*m_rw", "kappa"}),
            (lambda: SQSM(SQSMParams(g=2.0), record_costs=True), "s-QSM",
             {"m_op", "g*m_rw", "g*kappa"}),
            (lambda: GSM(GSMParams(alpha=2, beta=2), record_costs=True), "GSM",
             {"mu*ceil(m_rw/alpha)", "mu*ceil(kappa/beta)"}),
        ],
    )
    def test_model_labels_and_term_keys(self, factory, label, term_keys):
        m = run_contended_phases(factory())
        rec = m.cost_records[-1]
        assert rec.model == label
        assert set(rec.terms) == term_keys

    def test_cost_equals_max_term_and_matches_machine(self):
        m = run_contended_phases(SQSM(SQSMParams(g=3.0), record_costs=True))
        for rec, cost in zip(m.cost_records, m.phase_costs):
            assert rec.cost == max(rec.terms.values()) == cost

    def test_contention_histogram_counts_cells(self):
        m = QSM(QSMParams(g=1.0), record_costs=True)
        m.load([0] * 8)
        with m.phase() as ph:
            for proc in range(4):   # queue of 4 at cell 0
                ph.write(proc, 0, proc)
            ph.write(5, 1, 9)       # queue of 1 at cell 1
        hist = m.cost_records[0].contention
        assert hist[4] == 1 and hist[1] == 1

    def test_ops_per_proc_merges_reads_writes_locals(self):
        m = QSM(QSMParams(g=1.0), record_costs=True)
        m.load([0] * 8)
        with m.phase() as ph:
            handle = ph.read(0, 1)
            ph.write(0, 2, 1)
            ph.local(0, 3)
            ph.write(4, 3, 1)
        assert m.cost_records[0].ops_per_proc == {0: 5, 4: 1}

    def test_wall_time_positive_when_live(self):
        m = run_contended_phases(QSM(QSMParams(g=1.0), record_costs=True))
        assert all(rec.wall_time >= 0.0 for rec in m.cost_records)

    def test_rebuild_matches_live_modulo_wall_time(self):
        from dataclasses import replace

        live = run_contended_phases(SQSM(SQSMParams(g=2.0), record_costs=True))
        cold = run_contended_phases(SQSM(SQSMParams(g=2.0)))
        rebuilt = machine_cost_records(cold)
        assert rebuilt == [replace(r, wall_time=0.0) for r in live.cost_records]


class TestBSPRecords:
    def run_bsp(self, record_costs):
        b = BSP(4, BSPParams(g=2.0, L=8.0), record_costs=record_costs)
        with b.superstep() as ss:
            ss.send(0, 3, "x")
            ss.send(1, 3, "y")
            ss.local(2, 5)
        return b

    def test_flag_off(self):
        assert self.run_bsp(False).cost_records == []

    def test_superstep_record(self):
        b = self.run_bsp(True)
        (rec,) = b.cost_records
        assert rec.model == "BSP"
        assert set(rec.terms) == {"L", "g*h", "w"}
        assert rec.cost == max(rec.terms.values()) == b.step_costs[0]
        # component 3 received 2 messages -> one component at depth 2
        assert rec.contention[2] == 1

    def test_rebuild_matches_live(self):
        live = self.run_bsp(True)
        cold = self.run_bsp(False)
        rebuilt = machine_cost_records(cold)
        assert len(rebuilt) == 1
        assert rebuilt[0].terms == live.cost_records[0].terms
        assert rebuilt[0].dominant == live.cost_records[0].dominant
        assert rebuilt[0].wall_time == 0.0


class TestSummaries:
    def records(self):
        return [
            PhaseCostRecord(0, "QSM", {"m_op": 1.0, "kappa": 6.0}, "kappa", 6.0),
            PhaseCostRecord(1, "QSM", {"m_op": 3.0, "kappa": 1.0}, "m_op", 3.0),
            PhaseCostRecord(2, "QSM", {"m_op": 1.0, "kappa": 1.0}, "m_op", 1.0),
        ]

    def test_summarize(self):
        s = summarize(self.records())
        assert isinstance(s, RunCostSummary)
        assert s.phases == 3
        assert s.total_cost == 10.0
        assert s.dominant_phases == {"kappa": 1, "m_op": 2}
        assert s.dominant_cost == {"kappa": 6.0, "m_op": 4.0}
        assert s.dominant == "kappa"

    def test_fractions_sum_to_one(self):
        fractions = summarize(self.records()).fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["kappa"] == pytest.approx(0.6)

    def test_empty_run(self):
        s = summarize([])
        assert s.phases == 0 and s.fractions == {}

    def test_zero_total_cost_yields_all_zero_fractions(self):
        # Regression: a degenerate run whose phases all charged zero used
        # to divide by zero; it must return an all-zero dict instead (same
        # keys as dominant_cost, empty only for an empty record list).
        records = [
            PhaseCostRecord(0, "QSM", {"m_op": 0.0, "kappa": 0.0}, "m_op", 0.0),
            PhaseCostRecord(1, "QSM", {"m_op": 0.0, "kappa": 0.0}, "m_op", 0.0),
        ]
        s = summarize(records)
        assert s.total_cost == 0.0
        assert s.fractions == {"m_op": 0.0}
        assert dominant_fractions(records) == {"m_op": 0.0}

    def test_dominant_fractions_accepts_machine_and_rounds(self):
        m = run_contended_phases(QSM(QSMParams(g=2.0), record_costs=True))
        fractions = dominant_fractions(m)
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-3)
        assert all(v == round(v, 4) for v in fractions.values())

    def test_dominant_fractions_accepts_record_list(self):
        assert dominant_fractions(self.records()) == {"kappa": 0.6, "m_op": 0.4}
