"""The tracing layer's contract: ids, propagation, no-op cost, SLO math.

These are the unit-level guarantees the distributed e2e test
(`tests/integration/test_tracing_e2e.py`) builds on: traceparent
round-trips, thread-local nesting, explicit cross-thread handoff,
strict no-op behaviour when disabled, torn-tail tolerance on the JSONL
sink, multi-file merge dedup, and exact nearest-rank percentiles.
"""

import json
import threading

import pytest

from repro.obs.tracing import (
    SCHEMA,
    Span,
    SpanContext,
    Tracer,
    format_traceparent,
    merge_trace_files,
    parse_traceparent,
    percentile,
    read_trace_file,
    slo_summary,
)


def make_tracer(**kwargs):
    kwargs.setdefault("enabled", True)
    return Tracer(**kwargs)


# -- traceparent --------------------------------------------------------------


def test_traceparent_round_trip():
    ctx = SpanContext("ab" * 16, "cd" * 8)
    header = format_traceparent(ctx)
    assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
    assert parse_traceparent(header) == ctx


def test_traceparent_unsampled_flag():
    ctx = SpanContext("ab" * 16, "cd" * 8)
    assert format_traceparent(ctx, sampled=False).endswith("-00")


@pytest.mark.parametrize(
    "header",
    [
        None,
        "",
        "garbage",
        "00-short-traceid-01",
        "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",  # non-hex
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
    ],
)
def test_traceparent_malformed_rejected(header):
    assert parse_traceparent(header) is None


def test_traceparent_future_version_tolerated():
    header = "cc-" + "ab" * 16 + "-" + "cd" * 8 + "-01-extrafield"
    ctx = parse_traceparent(header)
    assert ctx is not None and ctx.trace_id == "ab" * 16


def test_span_context_immutable():
    ctx = SpanContext("ab" * 16, "cd" * 8)
    with pytest.raises(AttributeError):
        ctx.trace_id = "ff" * 16
    assert ctx.to_dict() == {"trace_id": "ab" * 16, "span_id": "cd" * 8}
    assert SpanContext.from_dict(ctx.to_dict()) == ctx
    assert SpanContext.from_dict(None) is None
    assert SpanContext.from_dict({"trace_id": "ab"}) is None


# -- span lifecycle and nesting ----------------------------------------------


def test_root_span_mints_fresh_trace():
    tracer = make_tracer()
    span = tracer.start_span("root", kind="request")
    assert len(span.trace_id) == 32 and len(span.span_id) == 16
    assert span.parent_span_id is None
    tracer.finish(span)
    assert list(tracer.finished) == [span]
    assert span.end is not None and span.duration >= 0.0


def test_nested_spans_parent_automatically():
    tracer = make_tracer()
    with tracer.span("outer", kind="job") as outer:
        with tracer.span("inner", kind="task") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_span_id == outer.span_id
        # inner popped: the thread's current context is outer again
        assert tracer.current() == outer.context
    assert tracer.current() is None
    assert [s.name for s in tracer.finished] == ["inner", "outer"]


def test_exception_marks_span_error():
    tracer = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (span,) = tracer.finished
    assert span.status == "error"
    assert "ValueError" in span.attrs["error"]


def test_explicit_parent_beats_ambient():
    tracer = make_tracer()
    remote = SpanContext("ef" * 16, "ab" * 8)
    with tracer.span("local"):
        span = tracer.start_span("child", parent=remote)
    assert span.trace_id == remote.trace_id
    assert span.parent_span_id == remote.span_id


def test_activate_hands_context_across_threads():
    """The queue/pickle handoff: a worker thread adopts a shipped context."""
    tracer = make_tracer()
    root = tracer.start_span("root", kind="job")
    shipped = SpanContext.from_dict(root.context.to_dict())  # the wire form
    seen = {}

    def worker():
        prev = tracer.activate(shipped)
        try:
            span = tracer.start_span("exec", kind="exec")
            tracer.finish(span)
            seen["span"] = span
        finally:
            tracer.activate(prev)
        seen["restored"] = tracer.current()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert seen["span"].trace_id == root.trace_id
    assert seen["span"].parent_span_id == root.span_id
    assert seen["restored"] is None


def test_thread_stacks_are_isolated():
    tracer = make_tracer()
    with tracer.span("main-root"):
        contexts = []

        def other():
            contexts.append(tracer.current())

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
    assert contexts == [None]  # the other thread saw no ambient parent


# -- disabled: strict no-op ---------------------------------------------------


def test_disabled_tracer_is_a_no_op():
    tracer = Tracer(enabled=False)
    assert tracer.start_span("x") is None
    with tracer.span("y") as span:
        assert span is None
    assert tracer.current() is None
    tracer.finish(None)
    assert tracer.ingest([{"trace_id": "a", "span_id": "b"}]) == 0
    assert len(tracer.finished) == 0
    slo = tracer.slo()
    assert slo["enabled"] is False and slo["window"] == 0


# -- sink, ingest, merge ------------------------------------------------------


def test_sink_writes_schema_lines_and_survives_torn_tail(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tracer = make_tracer()
    tracer.configure(path=path)
    tracer.finish(tracer.start_span("a", kind="task"))
    tracer.finish(tracer.start_span("b", kind="task"))
    tracer.close()
    with open(path, "a") as fh:
        fh.write('{"schema": "repro.trace/1", "name": "torn')  # SIGKILL mid-line
    rows = read_trace_file(path)
    assert [r["name"] for r in rows] == ["a", "b"]
    assert all(r["schema"] == SCHEMA for r in rows)


def test_ingest_adopts_remote_spans():
    tracer = make_tracer()
    remote = Span("exec", kind="exec", trace_id="ab" * 16)
    remote.end = remote.start + 0.25
    assert tracer.ingest([remote.to_dict(), {"bogus": True}]) == 1
    (adopted,) = tracer.finished
    assert adopted.trace_id == "ab" * 16
    assert adopted.duration == pytest.approx(0.25)


def test_merge_trace_files_dedups_and_sorts(tmp_path):
    def write(name, spans):
        path = tmp_path / name
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return str(path)

    late = Span("late", kind="exec", trace_id="aa" * 16, span_id="11" * 8, start=10.0)
    early = Span("early", kind="task", trace_id="aa" * 16, span_id="22" * 8, start=1.0)
    dup = Span.from_dict(late.to_dict())  # same ids: a worker-side copy
    dup.name = "late-worker-copy"
    scheduler = write("scheduler.jsonl", [late, early])
    worker = write("worker.jsonl", [dup])
    merged = merge_trace_files([scheduler, worker])
    assert [r["name"] for r in merged] == ["early", "late"]  # dedup, first wins
    assert merge_trace_files([str(tmp_path / "missing.jsonl")]) == []


# -- percentiles and SLO summary ----------------------------------------------


def test_percentile_nearest_rank_exact():
    xs = [float(i) for i in range(1, 101)]  # 1..100
    assert percentile(xs, 50) == 50.0
    assert percentile(xs, 95) == 95.0
    assert percentile(xs, 99) == 99.0
    assert percentile(xs, 100) == 100.0
    assert percentile([7.0], 99) == 7.0  # always an observed sample
    assert percentile([], 50) == 0.0


def test_slo_summary_buckets_by_kind():
    spans = []
    for i, duration in enumerate([0.1, 0.2, 0.3, 0.4]):
        span = Span(f"t{i}", kind="task", start=0.0)
        span.end = duration
        spans.append(span)
    job = Span("job", kind="job", start=0.0)
    job.end = 1.0
    open_span = Span("open", kind="task")  # never finished: excluded
    summary = slo_summary(spans + [job, open_span])
    assert summary["enabled"] is True
    assert summary["window"] == 5
    assert summary["task"]["count"] == 4
    assert summary["task"]["p50"] == pytest.approx(0.2)
    assert summary["task"]["max"] == pytest.approx(0.4)
    assert summary["end_to_end"] == {
        "count": 1, "p50": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0,
    }


def test_slo_summary_accepts_raw_dicts():
    rows = [{"kind": "task", "start": 0.0, "end": 0.5}]
    summary = slo_summary(rows)
    assert summary["task"]["count"] == 1
    assert summary["task"]["p99"] == pytest.approx(0.5)
