"""The process-wide metrics registry: counters, gauges, histograms.

These are the tentpole invariants: log2 bucketing is exact at powers of
two, labelled series are independent, kind collisions raise, reset keeps
registrations valid, and the machine hooks (record_phase /
record_superstep) produce the documented series from real phase records.
"""

import threading

import pytest

from repro.core import BSP, BSPParams, SQSM, SQSMParams
from repro.obs.metrics import (
    MAX_EXP,
    MIN_EXP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_exponent,
    record_phase,
    record_superstep,
    render_metrics_table,
)


class TestBucketExponent:
    def test_exact_powers_of_two_land_in_own_bucket(self):
        assert bucket_exponent(1.0) == 0
        assert bucket_exponent(2.0) == 1
        assert bucket_exponent(1024.0) == 10

    def test_between_powers_rounds_up(self):
        assert bucket_exponent(3.0) == 2
        assert bucket_exponent(1.5) == 1

    def test_non_positive_clamps_to_min(self):
        assert bucket_exponent(0.0) == MIN_EXP
        assert bucket_exponent(-5.0) == MIN_EXP

    def test_huge_clamps_to_max(self):
        assert bucket_exponent(2.0 ** 200) == MAX_EXP

    def test_tiny_clamps_to_min(self):
        assert bucket_exponent(2.0 ** -200) == MIN_EXP


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_inc_raises(self):
        c = Counter("c", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("c", "help")
        c.inc(1, status="ok")
        c.inc(2, status="fail")
        assert c.value(status="ok") == 1
        assert c.value(status="fail") == 2
        assert c.total() == 3

    def test_label_order_is_canonical(self):
        c = Counter("c", "help")
        c.inc(1, a=1, b=2)
        c.inc(1, b=2, a=1)
        assert c.value(a=1, b=2) == 2
        assert len(c.samples()) == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g", "help")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4

    def test_gauge_may_go_negative(self):
        g = Gauge("g", "help")
        g.dec(2)
        assert g.value() == -2


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("h", "help")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == 7.0
        assert h.mean() == pytest.approx(7.0 / 3)

    def test_nan_raises(self):
        h = Histogram("h", "help")
        with pytest.raises(ValueError):
            h.observe(float("nan"))

    def test_quantile_bounds_value(self):
        h = Histogram("h", "help")
        for v in range(1, 101):
            h.observe(float(v))
        q50 = h.quantile(0.5)
        # Bucket upper bounds over-estimate by at most 2x.
        assert 50 <= q50 <= 128

    def test_empty_mean_and_quantile(self):
        h = Histogram("h", "help")
        assert h.mean() == 0.0
        assert h.quantile(0.5) == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        a = r.counter("x", "help")
        b = r.counter("x", "other help ignored")
        assert a is b

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x", "help")
        with pytest.raises(ValueError):
            r.gauge("x", "help")

    def test_reset_clears_values_but_keeps_registrations(self):
        r = MetricsRegistry()
        c = r.counter("x", "help")
        c.inc(5)
        r.reset()
        assert c.value() == 0
        # The cached reference is still the registered object.
        assert r.counter("x", "help") is c

    def test_enable_disable(self):
        r = MetricsRegistry()
        assert not r.enabled
        r.enable()
        assert r.enabled
        r.disable()
        assert not r.enabled

    def test_collect_sorted_and_typed(self):
        r = MetricsRegistry()
        r.gauge("b", "h").set(1)
        r.counter("a", "h").inc()
        out = r.collect()
        assert [m["name"] for m in out] == ["a", "b"]
        assert [m["type"] for m in out] == ["counter", "gauge"]

    def test_thread_safety_of_counter(self):
        r = MetricsRegistry()
        c = r.counter("x", "help")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestRenderTable:
    def test_empty(self):
        assert "no metrics recorded" in render_metrics_table([])

    def test_rows_present(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "h").inc(3, model="QSM")
        text = render_metrics_table(r.collect())
        assert "repro_x_total" in text
        assert "model=QSM" in text


class TestMachineHooks:
    def test_record_phase_from_real_machine(self):
        from repro.obs import metrics as m

        registry = MetricsRegistry()
        machine = SQSM(SQSMParams(g=2.0))
        machine.load([0] * 8)
        with machine.phase() as ph:
            ph.write(0, 1, 0)
            ph.write(1, 1, 1)
            ph.local(0, 2)
        record = machine.history[-1]
        cost = machine.phase_costs[-1]
        # Route record_phase through a scratch registry.
        saved = m.REGISTRY
        m.REGISTRY = registry
        try:
            record_phase(machine.model_label, record, cost, faults=1)
        finally:
            m.REGISTRY = saved
        assert registry.counter("repro_phases_total", "").value(
            model="s-QSM") == 1
        assert registry.counter("repro_phase_cost_total", "").value(
            model="s-QSM") == cost
        # 2 writes + 2 local ops
        assert registry.counter("repro_ops_total", "").value(model="s-QSM") == 4
        assert registry.histogram("repro_contention_kappa", "").count(
            model="s-QSM") == 1
        assert registry.counter("repro_fault_events_total", "").value(
            model="s-QSM") == 1

    def test_record_superstep_observes_h_relation(self):
        from repro.obs import metrics as m

        registry = MetricsRegistry()
        machine = BSP(4, BSPParams(g=2.0, L=4.0))
        with machine.superstep() as step:
            step.send(0, 1, "x")
            step.send(0, 2, "y")
            step.local(1, 3)
        record = machine.history[-1]
        cost = machine.step_costs[-1]
        saved = m.REGISTRY
        m.REGISTRY = registry
        try:
            record_superstep(record, cost)
        finally:
            m.REGISTRY = saved
        assert registry.counter("repro_phases_total", "").value(model="BSP") == 1
        # h = max over procs of max(sent, received) = 2 (proc 0 sent 2).
        h = registry.histogram("repro_bsp_h_relation", "")
        assert h.count() == 1
        assert h.sum() == 2

    def test_machine_records_when_registry_enabled(self):
        from repro.obs import metrics as m

        saved = m.REGISTRY
        m.REGISTRY = MetricsRegistry()
        m.REGISTRY.enable()
        try:
            machine = SQSM(SQSMParams(g=2.0))
            machine.load([0] * 4)
            with machine.phase() as ph:
                ph.local(0, 1)
            assert m.REGISTRY.counter("repro_phases_total", "").value(
                model="s-QSM") == 1
        finally:
            m.REGISTRY = saved

    def test_machine_records_nothing_when_disabled(self):
        from repro.obs import metrics as m

        saved = m.REGISTRY
        m.REGISTRY = MetricsRegistry()
        try:
            machine = SQSM(SQSMParams(g=2.0))
            machine.load([0] * 4)
            with machine.phase() as ph:
                ph.local(0, 1)
            assert m.REGISTRY.names() == []
        finally:
            m.REGISTRY = saved
