"""The bench-regression watchdog: flattening, tolerances, verdicts.

The acceptance-critical pair: a baseline compared against itself passes,
and a point perturbed beyond tolerance regresses (and makes ``python -m
repro bench check`` exit nonzero).
"""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_TOLERANCE,
    BenchDelta,
    RegressionReport,
    compare_bench,
    flatten_metrics,
    load_bench,
    metric_direction,
    store_outcome_metrics,
)


SWEEP_CACHE = {
    # Sweep-cache schema: point key -> outcome dict with config echo.
    "x=1/k=2": {"measured": 10.0, "correct": True, "bound": 12.0,
                "n": 64, "detail": {"ignored": 1}},
    "x=2/k=2": {"measured": 40.0, "correct": True, "bound": 48.0,
                "n": 128, "detail": {"ignored": 2}},
}

SCHED_SUMMARY = {
    # BENCH_sched.json-style summary schema.
    "schema": "bench.sched/1",
    "jobs": 4,
    "correct": True,
    "timings": {"serial": 0.05, "pool": 0.08},
    "throughput": {"serial": 600.0, "pool": 440.0},
    "speedup_pool_vs_process": 2.9,
}


class TestFlatten:
    def test_sweep_cache_keeps_only_measurements(self):
        flat = flatten_metrics(SWEEP_CACHE)
        assert flat["x=1/k=2.measured"] == 10.0
        assert flat["x=1/k=2.correct"] is True
        assert flat["x=1/k=2.bound"] == 12.0
        assert not any("detail" in k or ".n" in k for k in flat)

    def test_summary_schema_keeps_nested_numbers(self):
        flat = flatten_metrics(SCHED_SUMMARY)
        assert flat["timings.serial"] == 0.05
        assert flat["throughput.pool"] == 440.0
        assert flat["correct"] is True
        assert "jobs" not in flat and "schema" not in flat

    def test_numeric_list_collapses_to_median(self):
        flat = flatten_metrics({"timings": {"pool": [3.0, 1.0, 2.0]}})
        assert flat["timings.pool"] == 2.0

    def test_booleans_preserved_not_coerced(self):
        flat = flatten_metrics({"correct": False})
        assert flat["correct"] is False


class TestDirection:
    def test_throughput_and_speedup_higher(self):
        assert metric_direction("throughput.pool") == "higher"
        assert metric_direction("speedup_pool_vs_process") == "higher"

    def test_costs_and_timings_lower(self):
        assert metric_direction("x=1.measured") == "lower"
        assert metric_direction("timings.serial") == "lower"
        assert metric_direction("x=1.bound") == "lower"

    def test_unknown_exact(self):
        assert metric_direction("trend") == "exact"


class TestCompare:
    def test_baseline_vs_itself_passes(self):
        report = compare_bench(SWEEP_CACHE, SWEEP_CACHE)
        assert report.ok
        assert all(d.status in ("ok", "info") for d in report.deltas)

    def test_perturbed_point_regresses(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=2/k=2"]["measured"] = 80.0  # doubled simulated cost
        report = compare_bench(SWEEP_CACHE, current)
        assert not report.ok
        bad = {d.metric for d in report.regressions}
        assert bad == {"x=2/k=2.measured"}

    def test_within_tolerance_passes(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=2/k=2"]["measured"] *= 1 + DEFAULT_TOLERANCE / 2
        assert compare_bench(SWEEP_CACHE, current).ok

    def test_improvement_is_not_a_regression(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=2/k=2"]["measured"] = 20.0
        report = compare_bench(SWEEP_CACHE, current)
        assert report.ok
        statuses = {d.metric: d.status for d in report.deltas}
        assert statuses["x=2/k=2.measured"] == "improved"

    def test_correctness_flip_true_to_false_fails(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=1/k=2"]["correct"] = False
        report = compare_bench(SWEEP_CACHE, current)
        assert [d.metric for d in report.regressions] == ["x=1/k=2.correct"]

    def test_correctness_false_to_true_passes(self):
        base = {"p": {"measured": 1.0, "correct": False}}
        cur = {"p": {"measured": 1.0, "correct": True}}
        assert compare_bench(base, cur).ok

    def test_missing_baseline_point_fails(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        del current["x=2/k=2"]
        report = compare_bench(SWEEP_CACHE, current)
        assert not report.ok
        assert all(d.status == "missing" for d in report.regressions)

    def test_new_current_point_is_informational(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=3/k=2"] = {"measured": 5.0, "correct": True}
        report = compare_bench(SWEEP_CACHE, current)
        assert report.ok
        assert report.counts.get("new") == 2  # measured + correct

    def test_wall_metrics_never_gate_by_default(self):
        current = json.loads(json.dumps(SCHED_SUMMARY))
        current["timings"]["pool"] = 100.0  # absurd wall time
        current["throughput"]["pool"] = 0.1
        report = compare_bench(SCHED_SUMMARY, current)
        assert report.ok
        statuses = {d.metric: d.status for d in report.deltas}
        assert statuses["timings.pool"] == "info"
        assert statuses["throughput.pool"] == "info"

    def test_strict_wall_gates_them(self):
        current = json.loads(json.dumps(SCHED_SUMMARY))
        current["timings"]["pool"] = 100.0
        report = compare_bench(SCHED_SUMMARY, current, strict_wall=True)
        assert not report.ok

    def test_speedup_gates_with_loose_tolerance(self):
        current = json.loads(json.dumps(SCHED_SUMMARY))
        current["speedup_pool_vs_process"] = 0.5  # below the 0.6 rel floor
        report = compare_bench(SCHED_SUMMARY, current)
        assert not report.ok
        assert [d.metric for d in report.regressions] == [
            "speedup_pool_vs_process"
        ]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_bench({}, {}, tolerance=-1)


CROSS_MODEL = {
    # BENCH_cross_model.json-style payload: one cells block per problem,
    # a cell per (model, n), plus engine bit-equality booleans.
    "schema": "cross_model/1",
    "models": ["QSM", "MPC", "PEM"],
    "cells": {
        "Parity": {
            "model=QSM,n=64": {"measured": 24.0, "bound": 12.0, "correct": True},
            "model=MPC,n=64": {"measured": 3.0, "bound": 3.0, "correct": True},
        },
        "OR": {
            "model=PEM,n=64": {"measured": 9.0, "bound": 1.0, "correct": True},
        },
    },
    "engines_agree_mpc": True,
    "engines_agree_pem": True,
}


class TestCrossModelSchema:
    def test_flatten_keeps_cells_drops_config(self):
        flat = flatten_metrics(CROSS_MODEL)
        assert flat["cells.Parity.model=MPC,n=64.measured"] == 3.0
        assert flat["cells.OR.model=PEM,n=64.bound"] == 1.0
        assert flat["engines_agree_mpc"] is True
        # The schema marker and the model-name list are config, not metrics.
        assert "schema" not in flat
        assert not any(k.startswith("models") for k in flat)

    def test_baseline_vs_itself_passes(self):
        assert compare_bench(CROSS_MODEL, CROSS_MODEL).ok

    def test_perturbed_cell_gates_at_tight_tolerance(self):
        # Simulated costs are deterministic: a >1% drift is a real change.
        current = json.loads(json.dumps(CROSS_MODEL))
        current["cells"]["Parity"]["model=MPC,n=64"]["measured"] = 4.0
        report = compare_bench(CROSS_MODEL, current)
        assert not report.ok
        assert {d.metric for d in report.regressions} == {
            "cells.Parity.model=MPC,n=64.measured"
        }

    def test_engine_agreement_flip_fails(self):
        current = json.loads(json.dumps(CROSS_MODEL))
        current["engines_agree_pem"] = False
        report = compare_bench(CROSS_MODEL, current)
        assert [d.metric for d in report.regressions] == ["engines_agree_pem"]

    def test_collector_rejects_zero_samples(self):
        from repro.obs.regress import collect_cross_model_current

        with pytest.raises(ValueError):
            collect_cross_model_current(samples=0)


class TestReport:
    def test_markdown_has_verdict_and_rows(self):
        current = json.loads(json.dumps(SWEEP_CACHE))
        current["x=2/k=2"]["measured"] = 80.0
        text = compare_bench(SWEEP_CACHE, current).render_markdown()
        assert text.startswith("# Bench check: REGRESSION")
        assert "| `x=2/k=2.measured` |" in text
        # Regressions sort first.
        rows = [l for l in text.splitlines() if l.startswith("| `")]
        assert "regression" in rows[0]

    def test_markdown_pass_verdict(self):
        text = compare_bench(SWEEP_CACHE, SWEEP_CACHE).render_markdown()
        assert text.startswith("# Bench check: PASS")

    def test_rel_change(self):
        d = BenchDelta("m", 10.0, 12.0, "lower", 0.01, "regression")
        assert d.rel_change == pytest.approx(0.2)
        assert BenchDelta("m", None, 1.0, "-", 0.0, "new").rel_change is None


class TestSources:
    def test_load_bench_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(SWEEP_CACHE))
        assert load_bench(str(path)) == SWEEP_CACHE

    def test_load_bench_rejects_non_object(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_bench(str(path))

    def test_store_outcome_metrics(self, tmp_path):
        from repro.sched.store import ResultStore

        store = ResultStore(str(tmp_path / "store"))
        key_a = store.key_for("demo:a", {"n": 1})
        key_b = store.key_for("demo:b", {"n": 2})
        store.put(key_a, {"measured": 1.0, "correct": True})
        store.put(key_b, {"measured": 2.0, "correct": True})
        payload = store_outcome_metrics(store)
        flat = flatten_metrics(payload)
        assert flat[f"{key_a}.measured"] == 1.0
        assert flat[f"{key_b}.correct"] is True
