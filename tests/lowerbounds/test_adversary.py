"""Section 4 framework: partial maps, RANDOMSET distribution, GENERATE, oracle."""

import collections

import numpy as np
import pytest

from repro.algorithms.parity import parity_tree
from repro.lowerbounds.adversary import (
    UNSET,
    GSMOracle,
    IIDBernoulli,
    PartialInputMap,
    generate,
    random_set,
)


class TestPartialInputMap:
    def test_blank(self):
        f = PartialInputMap.blank(3)
        assert all(f[i] == UNSET for i in range(3))
        assert not f.is_complete()

    def test_refine_and_lookup(self):
        f = PartialInputMap(4, {1: 1})
        g = f.refine({2: 0})
        assert g[1] == 1 and g[2] == 0 and g[0] == UNSET

    def test_refine_cannot_flip(self):
        f = PartialInputMap(2, {0: 1})
        with pytest.raises(ValueError):
            f.refine({0: 0})

    def test_refinement_order(self):
        f = PartialInputMap(3, {0: 1})
        g = f.refine({1: 0})
        assert g.refines(f)
        assert not f.refines(g)

    def test_consistent_masks(self):
        f = PartialInputMap(3, {0: 1})
        assert sorted(f.consistent_masks()) == [0b001, 0b011, 0b101, 0b111]

    def test_complete_and_mask(self):
        f = PartialInputMap.from_mask(3, 0b101)
        assert f.is_complete()
        assert f.as_mask() == 0b101

    def test_as_mask_requires_complete(self):
        with pytest.raises(ValueError):
            PartialInputMap(2, {0: 1}).as_mask()

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialInputMap(2, {5: 1})
        with pytest.raises(ValueError):
            PartialInputMap(2, {0: 2})

    def test_hash_eq(self):
        a = PartialInputMap(3, {1: 0})
        b = PartialInputMap(3, {1: 0})
        assert a == b and hash(a) == hash(b)


class TestRandomSet:
    def test_skips_already_set(self):
        dist = IIDBernoulli(3, 0.5)
        f = PartialInputMap(3, {0: 1})
        g = random_set(dist, f, [0, 1, 2], rng=0)
        assert g[0] == 1 and g.is_complete()

    def test_fact_4_1_distribution(self):
        # Outputs of RANDOMSET follow D: chi-square sanity at 3 bits.
        dist = IIDBernoulli(3, 0.5)
        rng = np.random.default_rng(1)
        counts = collections.Counter(
            random_set(dist, PartialInputMap.blank(3), [0, 1, 2], rng).as_mask()
            for _ in range(8000)
        )
        assert len(counts) == 8
        expected = 1000
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi2 < 30  # df=7; 30 is far beyond any reasonable quantile

    def test_biased_distribution_respected(self):
        dist = IIDBernoulli(1, 0.9)
        rng = np.random.default_rng(2)
        ones = sum(
            random_set(dist, PartialInputMap.blank(1), [0], rng).as_mask()
            for _ in range(3000)
        )
        assert 2500 < ones < 2950


class TestGenerate:
    def test_completes_and_tracks_trajectory(self):
        dist = IIDBernoulli(4, 0.5)

        def refine(t, f, rng):
            unset = f.unset_indices()
            if unset:
                f = random_set(dist, f, [unset[0]], rng)
            return f, 1.0

        res = generate(refine, dist, 4, T=2.0, rng=3)
        assert res.final_map.is_complete()
        assert res.trajectory[0][1] == PartialInputMap.blank(4)
        assert res.total_steps >= 2.0

    def test_lemma_4_1_distribution(self):
        # GENERATE's final maps follow D even though REFINE fixes inputs.
        dist = IIDBernoulli(2, 0.5)

        def refine(t, f, rng):
            return random_set(dist, f, f.unset_indices()[:1], rng), 1.0

        rng = np.random.default_rng(4)
        counts = collections.Counter(
            generate(refine, dist, 2, T=1.0, rng=rng).final_map.as_mask()
            for _ in range(4000)
        )
        expected = 1000
        chi2 = sum((counts.get(m, 0) - expected) ** 2 / expected for m in range(4))
        assert chi2 < 25

    def test_negative_step_rejected(self):
        dist = IIDBernoulli(2, 0.5)
        with pytest.raises(ValueError):
            generate(lambda t, f, r: (f, -1.0), dist, 2, T=1.0, rng=0)


class TestIIDBernoulli:
    def test_probabilities_sum_to_one(self):
        dist = IIDBernoulli(4, 0.3)
        assert sum(dist.probability(m) for m in range(16)) == pytest.approx(1.0)

    def test_conditional_is_q(self):
        dist = IIDBernoulli(3, 0.7)
        f = PartialInputMap(3, {0: 1})
        assert dist.conditional_bit(f, 1) == 0.7

    def test_q_validated(self):
        with pytest.raises(ValueError):
            IIDBernoulli(2, 0.0)


class TestGSMOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        def alg(machine, bits):
            parity_tree(machine, bits, fan_in=2)

        return GSMOracle(alg, 4)

    def test_output_cell_knows_everything(self, oracle):
        f = PartialInputMap.blank(4)
        out_cell = max(oracle.cells)
        assert oracle.know(("cell", out_cell), oracle.n_phases, f) == frozenset(range(4))

    def test_input_cell_knows_itself(self, oracle):
        f = PartialInputMap.blank(4)
        assert oracle.know(("cell", 0), oracle.n_phases, f) == frozenset({0})

    def test_states_of_output_cell_is_two(self, oracle):
        f = PartialInputMap.blank(4)
        out_cell = max(oracle.cells)
        assert len(oracle.states(("cell", out_cell), oracle.n_phases, f)) == 2

    def test_know_shrinks_under_refinement(self, oracle):
        out_cell = max(oracle.cells)
        blank = PartialInputMap.blank(4)
        fixed = PartialInputMap(4, {0: 1, 1: 0})
        k_blank = oracle.know(("cell", out_cell), oracle.n_phases, blank)
        k_fixed = oracle.know(("cell", out_cell), oracle.n_phases, fixed)
        assert k_fixed <= k_blank

    def test_parity_cert_is_everything(self, oracle):
        # Parity's certificate at the output is always the full input set.
        out_cell = max(oracle.cells)
        full = PartialInputMap.from_mask(4, 0b0110)
        assert oracle.cert(("cell", out_cell), oracle.n_phases, full) == frozenset(range(4))

    def test_aff_sets_cover_the_combining_path(self, oracle):
        f = PartialInputMap.blank(4)
        affected = oracle.aff_cell(0, oracle.n_phases, f)
        assert 0 in affected  # its own input cell
        assert max(oracle.cells) in affected  # the output

    def test_cert_requires_complete_map(self, oracle):
        with pytest.raises(ValueError):
            oracle.cert(("cell", 0), 1, PartialInputMap.blank(4))

    def test_n_validated(self):
        with pytest.raises(ValueError):
            GSMOracle(lambda m, b: None, 0)
