"""Broadcasting bounds (the [1] baseline the paper cites) vs the algorithms."""

import pytest

from repro.algorithms.broadcast import broadcast_bsp, broadcast_shared
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.lowerbounds.formulas import (
    bsp_broadcast_time,
    qsm_broadcast_time,
    sqsm_broadcast_time,
)


class TestFormulas:
    def test_qsm_value(self):
        # g log n / log g at n=2^12, g=8: 8*12/3 = 32.
        assert qsm_broadcast_time(2**12, 8.0) == pytest.approx(32.0)

    def test_sqsm_is_g_log_n(self):
        assert sqsm_broadcast_time(2**12, 8.0) == pytest.approx(96.0)

    def test_bsp_uses_q(self):
        assert bsp_broadcast_time(2**20, 2.0, 16.0, 64) == pytest.approx(
            bsp_broadcast_time(64, 2.0, 16.0, 2**20)
        )

    def test_qsm_below_sqsm_for_g_above_2(self):
        for n in (2**8, 2**16):
            assert qsm_broadcast_time(n, 8.0) < sqsm_broadcast_time(n, 8.0)


class TestAlgorithmsMeetBounds:
    @pytest.mark.parametrize("n", [64, 512, 4096])
    def test_qsm_broadcast_tight(self, n):
        g = 8.0
        r = broadcast_shared(QSM(QSMParams(g=g)), "x", n)
        bound = qsm_broadcast_time(n, g)
        assert bound <= r.time <= 6 * bound  # Theta per [1]

    @pytest.mark.parametrize("n", [64, 512])
    def test_sqsm_broadcast_tight(self, n):
        g = 4.0
        r = broadcast_shared(SQSM(SQSMParams(g=g)), "x", n)
        bound = sqsm_broadcast_time(n, g)
        assert bound <= r.time <= 6 * bound

    @pytest.mark.parametrize("p", [16, 64, 256])
    def test_bsp_broadcast_tight(self, p):
        g, L = 2.0, 16.0
        r = broadcast_bsp(BSP(p, BSPParams(g=g, L=L)), "x")
        bound = bsp_broadcast_time(p, g, L, p)
        assert 0.5 * bound <= r.time <= 6 * bound
