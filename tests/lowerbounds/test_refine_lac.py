"""Section 5 engine: thresholds, goodness reports, REFINE trajectory."""

import pytest

from repro.algorithms.parity import parity_tree
from repro.lowerbounds.adversary import GSMOracle, IIDBernoulli, PartialInputMap
from repro.lowerbounds.refine_lac import (
    GoodnessReport,
    goodness_report,
    refine_step,
    run_adversary,
    section5_thresholds,
)


class TestThresholds:
    def test_d_sequence_growth(self):
        d0, _, _ = section5_thresholds(0, 64, mu=2.0, nu=1.0)
        d3, _, _ = section5_thresholds(3, 64, mu=2.0, nu=1.0)
        assert d0 == 1.0
        assert d3 == pytest.approx((2 + 1) ** 6)

    def test_k_saturates_to_inf(self):
        _, k, _ = section5_thresholds(10, 64, mu=4.0, nu=2.0)
        assert k == float("inf")

    def test_r_linear_in_t(self):
        _, _, r1 = section5_thresholds(1, 64, 1.0, 1.0)
        _, _, r3 = section5_thresholds(3, 64, 1.0, 1.0)
        assert r3 == pytest.approx(3 * r1)

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            section5_thresholds(-1, 8, 1.0, 1.0)


@pytest.fixture(scope="module")
def oracle():
    def alg(machine, bits):
        parity_tree(machine, bits, fan_in=2)

    return GSMOracle(alg, 6)


class TestGoodnessReport:
    def test_initial_map_is_0_good(self, oracle):
        rep = goodness_report(oracle, PartialInputMap.blank(6), 0)
        assert rep.is_t_good
        assert rep.inputs_set == 0

    def test_quantities_grow_along_phases(self, oracle):
        f = PartialInputMap.blank(6)
        knows = [
            goodness_report(oracle, f, t).max_know
            for t in range(oracle.n_phases + 1)
        ]
        assert knows[-1] >= knows[0]
        assert knows[-1] == 6  # output knows everything

    def test_aff_growth_is_bounded_per_phase(self, oracle):
        # Lemma 5.1's structural content: Aff sets grow multiplicatively,
        # bounded by the algorithm's fan-in per phase (here 2) plus carry.
        f = PartialInputMap.blank(6)
        prev = 1
        for t in range(1, oracle.n_phases + 1):
            rep = goodness_report(oracle, f, t)
            cur = max(rep.max_aff_cell, 1)
            assert cur <= 3 * prev + 3
            prev = cur


class TestRefineStep:
    def test_returns_refinement_and_cost(self, oracle):
        dist = IIDBernoulli(6, 0.5)
        f = PartialInputMap.blank(6)
        f2, x = refine_step(oracle, 0, f, dist, rng=0)
        assert x >= 1.0
        assert f2.refines(f)

    def test_certified_steps_match_fanin(self, oracle):
        # parity_tree reads 2 cells per leader: with alpha=1 that is 2 big-steps.
        dist = IIDBernoulli(6, 0.5)
        f = PartialInputMap.blank(6)
        _, x = refine_step(oracle, 0, f, dist, rng=1)
        assert x == 2.0


class TestRunAdversary:
    def test_goodness_maintained(self, oracle):
        f, reports = run_adversary(oracle, T=4, rng=0)
        assert all(rep.is_t_good for rep in reports)

    def test_inputs_fixed_monotonically(self, oracle):
        f, reports = run_adversary(oracle, T=6, rng=1)
        sets = [rep.inputs_set for rep in reports]
        assert sets == sorted(sets)

    def test_reproducible(self, oracle):
        f1, _ = run_adversary(oracle, T=4, rng=7)
        f2, _ = run_adversary(oracle, T=4, rng=7)
        assert f1 == f2
