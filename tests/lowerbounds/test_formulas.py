"""The Table 1 formula library: values, monotonicity, registry coverage."""

import math

import pytest

from repro.lowerbounds.formulas import (
    ALL_BOUNDS,
    bounds_for,
    bsp_or_rounds,
    bsp_parity_det_time,
    gsm_or_rand_time,
    gsm_parity_det_time,
    qsm_lac_rand_time,
    qsm_or_rand_time,
    qsm_or_rounds,
    qsm_parity_det_time,
    qsm_parity_rand_time,
    sqsm_lac_rand_time,
    sqsm_or_rounds,
    sqsm_parity_det_time,
)


class TestRegistry:
    def test_27_table_cells(self):
        # The 1998 paper's Table 1 is 27 cells; the post-1998 extension
        # tables (mpc/pem, see repro.models) and the classical PRAM
        # baselines add 3 + 4 + 3 more.
        table1 = [b for b in ALL_BOUNDS if b.table in ("1a", "1b", "1c", "1d")]
        assert len(table1) == 27
        assert len(bounds_for(table="mpc")) == 3
        assert len(bounds_for(table="pem")) == 4
        assert len(bounds_for(table="pram")) == 3
        assert len(ALL_BOUNDS) == 37

    def test_tables_covered(self):
        assert {b.table for b in ALL_BOUNDS} == {
            "1a", "1b", "1c", "1d", "mpc", "pem", "pram"
        }

    def test_each_time_table_has_six_cells(self):
        # 3 problems x {deterministic, randomized}.
        for table in ("1a", "1b", "1c"):
            assert len(bounds_for(table=table)) == 6

    def test_rounds_table_has_nine_cells(self):
        assert len(bounds_for(table="1d")) == 9

    def test_tight_entries_match_paper(self):
        tight = {(b.table, b.model, b.problem) for b in ALL_BOUNDS if b.tight}
        assert ("1b", "s-QSM", "Parity") in tight
        assert ("1c", "BSP", "Parity") in tight
        assert ("1d", "QSM", "OR") in tight
        assert ("1d", "s-QSM", "Parity") in tight
        # LAC has no tight entries anywhere.
        assert not any(b.tight for b in bounds_for(problem="LAC"))

    def test_filter_composition(self):
        subset = bounds_for(model="QSM", problem="Parity", variant="deterministic")
        assert len(subset) == 1 and subset[0].table == "1a"

    def test_every_bound_has_formula_text(self):
        assert all(b.text for b in ALL_BOUNDS)


class TestValues:
    def test_qsm_parity_det(self):
        # g log n / log g at n=2^16, g=16: 16*16/4 = 64.
        assert qsm_parity_det_time(2**16, 16.0) == pytest.approx(64.0)

    def test_sqsm_parity_det(self):
        assert sqsm_parity_det_time(2**16, 4.0) == pytest.approx(64.0)

    def test_bsp_parity_det_uses_q_min_n_p(self):
        small_p = bsp_parity_det_time(2**20, 2.0, 8.0, 2**6)
        small_n = bsp_parity_det_time(2**6, 2.0, 8.0, 2**20)
        assert small_p == pytest.approx(small_n)

    def test_or_rand_log_star(self):
        # log* 2^16 = 4, log* 4 = 2 -> g * 2.
        assert qsm_or_rand_time(2**16, 4.0) == pytest.approx(8.0)

    def test_lac_rand(self):
        # g loglog n / log g at n=2^16, g=4: 4*4/2 = 8.
        assert qsm_lac_rand_time(2**16, 4.0) == pytest.approx(8.0)

    def test_qsm_or_rounds_tight_form(self):
        # log n / log(ng/p) at n=2^12, g=4, p=2^8: 12/log2(2^6) = 2.
        assert qsm_or_rounds(2**12, 4.0, 2**8) == pytest.approx(2.0)

    def test_sqsm_vs_bsp_rounds_equal(self):
        assert sqsm_or_rounds(2**12, 2.0, 2**8) == pytest.approx(
            bsp_or_rounds(2**12, 2.0, 8.0, 2**8)
        )


class TestPost98Values:
    def test_mpc_parity_rounds(self):
        from repro.lowerbounds.formulas import mpc_parity_rounds

        # log n / log s at n=2^16, s=16: 16/4 = 4.
        assert mpc_parity_rounds(2**16, 16.0) == pytest.approx(4.0)

    def test_mpc_listrank_conditional_log_n(self):
        from repro.lowerbounds.formulas import mpc_listrank_rounds, mpc_parity_rounds

        # The conditional bound ignores s and dominates the fan-in bound.
        assert mpc_listrank_rounds(2**16, 16.0) == pytest.approx(16.0)
        assert mpc_listrank_rounds(2**16, 16.0) >= mpc_parity_rounds(2**16, 16.0)

    def test_pem_scan_io(self):
        from repro.lowerbounds.formulas import pem_scan_io

        # n/(pB) at n=2^12, p=4, B=8: 4096/32 = 128; floor at 1.
        assert pem_scan_io(2**12, 4.0, 64.0, 8.0) == pytest.approx(128.0)
        assert pem_scan_io(4, 4.0, 64.0, 8.0) == pytest.approx(1.0)

    def test_pem_sort_io_equals_listrank_io(self):
        from repro.lowerbounds.formulas import pem_listrank_io, pem_sort_io

        # n=2^12, p=4, M=64, B=8: (n/(pB)) * log_{8}(512) = 128 * 3 = 384,
        # and JLS reduce list ranking to sorting, so the bounds coincide.
        assert pem_sort_io(2**12, 4.0, 64.0, 8.0) == pytest.approx(384.0)
        assert pem_listrank_io(2**12, 4.0, 64.0, 8.0) == pytest.approx(
            pem_sort_io(2**12, 4.0, 64.0, 8.0)
        )


class TestMonotonicity:
    def test_all_time_bounds_nondecreasing_in_n(self):
        for b in bounds_for(table="1a") + bounds_for(table="1b"):
            vals = [b.fn(n, 4.0) for n in [2**8, 2**12, 2**16, 2**20]]
            assert vals == sorted(vals), (b.problem, b.variant, vals)

    def test_bsp_time_bounds_nondecreasing_in_n(self):
        for b in bounds_for(table="1c"):
            vals = [b.fn(n, 2.0, 16.0, n) for n in [2**8, 2**12, 2**16]]
            assert vals == sorted(vals), (b.problem, b.variant)

    def test_sqsm_bounds_linear_in_g(self):
        for b in bounds_for(table="1b"):
            v2 = b.fn(2**16, 2.0)
            v8 = b.fn(2**16, 8.0)
            assert v8 == pytest.approx(4 * v2), (b.problem, b.variant)

    def test_rounds_decrease_with_larger_blocks(self):
        n = 2**16
        for b in bounds_for(table="1d", model="s-QSM"):
            r_small = b.fn(n, 2.0, n // 4)
            r_large = b.fn(n, 2.0, n // 256)
            assert r_large <= r_small, (b.problem,)

    def test_bsp_time_bounds_linear_in_L_at_fixed_ratio(self):
        for b in bounds_for(table="1c"):
            v1 = b.fn(2**16, 2.0, 16.0, 2**8)
            v2 = b.fn(2**16, 4.0, 32.0, 2**8)
            assert v2 == pytest.approx(2 * v1), (b.problem, b.variant)


class TestGSMTheorems:
    def test_parity_det_reduces_with_gamma(self):
        # Packing more inputs per cell weakens the bound (r = n/gamma).
        full = gsm_parity_det_time(2**16, 1, 1, 1)
        packed = gsm_parity_det_time(2**16, 1, 1, 2**8)
        assert packed < full

    def test_or_rand_log_star_difference(self):
        # mu * (log* r - log* mu); log*(2^16) = 4, log*(1) = 0.
        assert gsm_or_rand_time(2**16, 1, 1, 1) == pytest.approx(4.0)

    def test_problem_ordering_on_sqsm(self):
        # Parity >= OR >= LAC in lower-bound strength (deterministic, s-QSM).
        from repro.lowerbounds.formulas import (
            sqsm_lac_det_time,
            sqsm_or_det_time,
        )

        for n in [2**10, 2**16, 2**20]:
            g = 4.0
            assert sqsm_parity_det_time(n, g) >= sqsm_or_det_time(n, g)
            assert sqsm_or_det_time(n, g) >= sqsm_lac_det_time(n, g)

    def test_parity_rand_p_term(self):
        # Supplying a small p can only weaken (reduce) the denominator term.
        with_p = qsm_parity_rand_time(2**16, 256.0, p=2**4)
        without = qsm_parity_rand_time(2**16, 256.0)
        assert with_p >= without
