"""Section 6: CLB instances, ECLB construction, Theorem 6.1 reductions."""

import pytest

from repro.core import GSM, QSM, GSMParams, QSMParams
from repro.lowerbounds.clb import (
    CLBInstance,
    clb_via_lac,
    clb_via_load_balance,
    clb_via_padded_sort,
    eclb_from_clb,
    gen_clb,
    verify_clb,
)


class TestInstance:
    def test_palette_is_8m(self):
        assert gen_clb(8, 3, seed=0).palette == 24

    def test_objects_of_color(self):
        inst = CLBInstance(n=3, m=1, colors=(2, 5, 2))
        objs = inst.objects_of_color(2)
        assert len(objs) == 2 * 4  # two groups x 4m objects
        assert (0, 0) in objs and (2, 3) in objs

    def test_gen_validates(self):
        with pytest.raises(ValueError):
            gen_clb(0, 1)


class TestVerify:
    def test_accepts_valid(self):
        inst = CLBInstance(n=4, m=1, colors=(0, 1, 2, 3))
        groups = [[(0, 0)], [(0, 1)], [(0, 2)], [(0, 3)]]
        assert verify_clb(inst, 0, groups)

    def test_rejects_overfull_group(self):
        inst = CLBInstance(n=4, m=1, colors=(0, 1, 2, 3))
        groups = [[(0, 0), (0, 1)], [(0, 2)], [(0, 3)], []]
        assert not verify_clb(inst, 0, groups)

    def test_rejects_missing_object(self):
        inst = CLBInstance(n=4, m=1, colors=(0, 1, 2, 3))
        groups = [[(0, 0)], [(0, 1)], [(0, 2)], []]
        assert not verify_clb(inst, 0, groups)

    def test_rejects_bad_color(self):
        inst = CLBInstance(n=2, m=1, colors=(0, 0))
        assert not verify_clb(inst, 99, [[], []])


class TestECLB:
    def test_pointers_complete_and_cheap(self):
        inst = CLBInstance(n=4, m=2, colors=(1, 0, 2, 3))
        # Solve trivially for color 1: one group, 4m = 8 objects — exactly
        # the n*m = 8 output capacity.
        objs = inst.objects_of_color(1)
        groups = [objs[i * 2 : (i + 1) * 2] for i in range(4)]
        g = GSM(GSMParams())
        r = eclb_from_clb(g, inst, 1, groups)
        assert len(r.value) == len(objs)
        # Claim 6.1: m additional steps (phases).
        assert r.phases == inst.m
        for (grp, rank), row in r.value.items():
            assert (grp, rank) in groups[row]


class TestReductions:
    @pytest.mark.parametrize("seed", range(4))
    def test_load_balance_arm(self, seed):
        inst = gen_clb(n=32, m=2, seed=seed)
        color = inst.colors[0]
        r = clb_via_load_balance(QSM(QSMParams(g=2)), inst, chosen_color=color)
        assert not r.extra.get("failed"), r.extra
        assert verify_clb(inst, color, r.value)

    @pytest.mark.parametrize("seed", range(4))
    def test_lac_arm(self, seed):
        inst = gen_clb(n=64, m=2, seed=seed + 10)
        color = inst.colors[0]
        r = clb_via_lac(QSM(QSMParams(g=2)), inst, chosen_color=color, seed=seed)
        assert not r.extra.get("failed"), r.extra
        assert verify_clb(inst, color, r.value)

    @pytest.mark.parametrize("seed", range(4))
    def test_padded_sort_arm(self, seed):
        inst = gen_clb(n=48, m=2, seed=seed + 20)
        r = clb_via_padded_sort(QSM(QSMParams(g=2)), inst, seed=seed)
        assert not r.extra.get("failed"), r.extra
        color, groups = r.value
        assert verify_clb(inst, color, groups)

    def test_lac_arm_detects_overfull_color(self):
        # Every group the same color: far more items than h = n/4m.
        inst = CLBInstance(n=16, m=1, colors=(0,) * 16)
        r = clb_via_lac(QSM(QSMParams(g=2)), inst, chosen_color=0, seed=0)
        assert r.extra.get("failed")
