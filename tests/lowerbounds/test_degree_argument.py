"""The Theorem 3.1/7.2 degree machinery, run over live algorithm traces."""

import math

import pytest

from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.core import GSM, GSMParams
from repro.lowerbounds.degree_argument import (
    certified_time_bound,
    check_run,
    degree_envelope,
    measure_cell_degrees,
)


class TestEnvelope:
    def test_recurrence_values(self):
        m = GSM(GSMParams())
        m.load([0, 0])
        with m.phase() as ph:
            ph.read(0, 0)
            ph.read(0, 1)  # tau = 2, tau' = 1
        env = degree_envelope(m.history)
        # b_1 = (3 + 2 + 2*1) * 1 = 7.
        assert env == [1.0, 7.0]

    def test_gamma_initial_degree(self):
        env = degree_envelope([], initial_degree=4)
        assert env == [4.0]

    def test_rejects_degree_below_one(self):
        with pytest.raises(ValueError):
            degree_envelope([], initial_degree=0.5)

    def test_envelope_monotone(self):
        m = GSM(GSMParams())
        parity_tree(m, [1, 0, 1, 1, 0, 1, 0, 0])
        env = degree_envelope(m.history)
        assert all(a <= b for a, b in zip(env, env[1:]))


class TestCertifiedBound:
    def test_formula(self):
        prm = GSMParams(alpha=2, beta=4)  # mu = 4
        r = 256
        expected = 4 * math.log(256) / math.log(24)
        assert certified_time_bound(r, prm) == pytest.approx(expected)

    def test_trivial_degree(self):
        assert certified_time_bound(1.0, GSMParams()) == 0.0

    def test_grows_with_r(self):
        prm = GSMParams()
        assert certified_time_bound(2**10, prm) < certified_time_bound(2**20, prm)


class TestCheckRun:
    @pytest.mark.parametrize("n", [8, 32, 64])
    def test_correct_parity_run_certifies(self, n):
        m = GSM(GSMParams(alpha=2, beta=2))
        bits = [(i * 5) % 2 for i in range(n)]
        parity_tree(m, bits)
        cert = check_run(m, target_degree=n)
        assert cert.reached  # envelope admits full-degree output
        assert cert.satisfies_bound  # measured time >= proof's bound
        assert cert.slack >= 1.0

    def test_correct_or_run_certifies(self):
        m = GSM(GSMParams(alpha=1, beta=4))
        or_tree_writes(m, [0] * 64, fan_in=4)
        cert = check_run(m, target_degree=64)
        assert cert.reached and cert.satisfies_bound

    def test_too_short_run_cannot_reach_degree(self):
        # One phase of bounded fan-out cannot reach degree 2^20: the
        # contrapositive that drives the lower bound.
        m = GSM(GSMParams())
        with m.phase() as ph:
            ph.read(0, 0)
        cert = check_run(m, target_degree=2**20)
        assert not cert.reached

    def test_gamma_weakens_requirement(self):
        m = GSM(GSMParams(gamma=4))
        with m.phase() as ph:
            ph.read(0, 0)
        env_start = check_run(m, target_degree=1).envelope[0]
        assert env_start == 4.0


class TestMeasuredDegrees:
    def test_parity_tree_degrees_below_envelope(self):
        def alg(machine, bits):
            parity_tree(machine, bits, fan_in=2)

        r = 4
        degs = measure_cell_degrees(alg, r=r)
        reference = GSM(GSMParams(), record_snapshots=True)
        parity_tree(reference, [0] * r, fan_in=2)
        env = degree_envelope(reference.history)
        for t, dlist in degs.items():
            if dlist:
                assert max(dlist) <= env[t + 1]

    def test_parity_output_reaches_full_degree(self):
        def alg(machine, bits):
            parity_tree(machine, bits, fan_in=2)

        r = 4
        degs = measure_cell_degrees(alg, r=r)
        final = degs[max(degs)]
        assert max(final) == r  # deg(PARITY_r) = r appears in memory

    def test_or_output_reaches_full_degree(self):
        def alg(machine, bits):
            or_tree_writes(machine, bits, fan_in=2)

        r = 4
        degs = measure_cell_degrees(alg, r=r)
        assert max(max(d) for d in degs.values() if d) == r

    def test_rejects_large_r(self):
        with pytest.raises(ValueError):
            measure_cell_degrees(lambda m, b: None, r=20)

    def test_rejects_input_dependent_phases(self):
        def cheat(machine, bits):
            with machine.phase() as ph:
                ph.write(0, 0, 1)
            if bits[0]:  # phase count depends on input
                with machine.phase() as ph:
                    ph.write(0, 1, 1)

        with pytest.raises(ValueError):
            measure_cell_degrees(cheat, r=2)
