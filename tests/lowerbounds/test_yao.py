"""Theorem 2.1 (Yao) as an exact game over depth-d decision strategies."""

import pytest

from repro.lowerbounds.adversary import IIDBernoulli
from repro.lowerbounds.yao import (
    RandomizedStrategy,
    optimal_deterministic_success,
    randomized_worst_success,
    yao_gap,
)


def OR(mask):
    return 1 if mask else 0


def PARITY(mask):
    return bin(mask).count("1") & 1


class TestOptimalDeterministic:
    def test_zero_depth_guesses_majority(self):
        dist = IIDBernoulli(3, 0.5)
        # OR is 1 on 7 of 8 inputs: guessing 1 scores 7/8.
        assert optimal_deterministic_success(OR, 3, 0, dist) == pytest.approx(7 / 8)

    def test_full_depth_is_perfect(self):
        dist = IIDBernoulli(3, 0.5)
        assert optimal_deterministic_success(OR, 3, 3, dist) == pytest.approx(1.0)

    def test_parity_needs_all_bits(self):
        # Any strategy missing one bit scores exactly 1/2 on uniform parity.
        dist = IIDBernoulli(4, 0.5)
        for d in range(4):
            assert optimal_deterministic_success(PARITY, 4, d, dist) == pytest.approx(0.5)
        assert optimal_deterministic_success(PARITY, 4, 4, dist) == pytest.approx(1.0)

    def test_monotone_in_depth(self):
        dist = IIDBernoulli(4, 0.3)
        vals = [optimal_deterministic_success(OR, 4, d, dist) for d in range(5)]
        assert vals == sorted(vals)

    def test_biased_distribution_changes_value(self):
        # Under heavy 0-bias, OR's zero-depth guess gets much harder.
        nearly_zero = IIDBernoulli(3, 0.1)
        v = optimal_deterministic_success(OR, 3, 0, nearly_zero)
        assert v == pytest.approx(max(0.9**3, 1 - 0.9**3))

    def test_validation(self):
        dist = IIDBernoulli(2, 0.5)
        with pytest.raises(ValueError):
            optimal_deterministic_success(OR, 2, -1, dist)
        with pytest.raises(ValueError):
            optimal_deterministic_success(OR, 17, 1, IIDBernoulli(2, 0.5))


def _always_answer(bit):
    return (lambda known: None), (lambda known, b=bit: b)


class TestRandomizedStrategies:
    def test_worst_case_of_constant_answers(self):
        rs = RandomizedStrategy([_always_answer(1)], depth=0)
        assert randomized_worst_success(rs, OR, 3) == 0.0  # fails on all-zeros

    def test_mixture_of_constants(self):
        rs = RandomizedStrategy([_always_answer(0), _always_answer(1)], depth=0)
        assert randomized_worst_success(rs, OR, 3) == pytest.approx(0.5)

    def test_weights_normalised(self):
        rs = RandomizedStrategy(
            [_always_answer(0), _always_answer(1)], weights=[3.0, 1.0], depth=0
        )
        # On all-zeros input, answer 0 w.p. 3/4.
        assert rs.success_on(OR, 3, 0) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomizedStrategy([])
        with pytest.raises(ValueError):
            RandomizedStrategy([_always_answer(0)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            RandomizedStrategy([_always_answer(0)], weights=[-1.0])


class TestYaoInequality:
    def test_gap_nonnegative_for_constant_mixtures(self):
        dist = IIDBernoulli(3, 0.5)
        rs = RandomizedStrategy([_always_answer(0), _always_answer(1)], depth=0)
        assert yao_gap(rs, OR, 3, dist) >= 0

    def test_gap_nonnegative_for_query_strategies(self):
        # A family querying one random bit and answering it (for OR).
        n = 4
        strats = []
        for i in range(n):
            def qf(known, i=i):
                return i if not known else None

            def af(known):
                return 1 if any(v == 1 for v in known.values()) else 0

            strats.append((qf, af))
        rs = RandomizedStrategy(strats, depth=1)
        for q in (0.2, 0.5, 0.8):
            assert yao_gap(rs, OR, n, IIDBernoulli(n, q)) >= 0

    def test_gap_nonnegative_for_parity(self):
        dist = IIDBernoulli(3, 0.5)
        rs = RandomizedStrategy([_always_answer(0), _always_answer(1)], depth=2)
        assert yao_gap(rs, PARITY, 3, dist) >= 0
