"""Section 7 modified adversary: the mixture, RANDOMRESTRICT/FIX, Theorem 7.1 game."""

import pytest

from repro.algorithms.or_ import or_tree_writes
from repro.lowerbounds.adversary import GSMOracle
from repro.lowerbounds.refine_or import (
    ORAdversary,
    ORMixture,
    default_d_sequence,
    or_success_probability,
)

OUT = 900


def or_alg(machine, bits):
    r = or_tree_writes(machine, bits, fan_in=2)
    with machine.phase() as ph:
        ph.write(0, OUT, r.value)


def const_zero(machine, bits):
    with machine.phase() as ph:
        ph.write(0, OUT, 0)


def const_one(machine, bits):
    with machine.phase() as ph:
        ph.write(0, OUT, 1)


@pytest.fixture(scope="module")
def oracle():
    return GSMOracle(or_alg, 8)


@pytest.fixture(scope="module")
def mixture():
    return ORMixture(groups=8, gamma=1, mu=1.0, levels=2, d_sequence=[4.0, 16.0])


class TestMixture:
    def test_probabilities_sum_to_one(self, mixture):
        total = sum(mixture.mask_prob(m) for m in range(1 << 8))
        assert total == pytest.approx(1.0)

    def test_zero_component_mass(self, mixture):
        # P(all zeros) >= 1/2 (the zero component) plus H-level zero mass.
        assert mixture.mask_prob(0) > 0.5

    def test_group_atomicity(self):
        mix = ORMixture(groups=2, gamma=2, mu=1.0, levels=1, d_sequence=[4.0])
        # A half-set group has probability zero.
        assert mix.mask_prob(0b0001) == 0.0
        assert mix.mask_prob(0b0011) > 0.0

    def test_sample_in_support(self, mixture):
        for seed in range(10):
            mask = mixture.sample(mixture.components, rng=seed)
            assert mixture.mask_prob(mask) > 0.0

    def test_default_d_sequence_increasing(self):
        ds = default_d_sequence(256, 1, 1.0, 3)
        assert all(a <= b for a, b in zip(ds, ds[1:]))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            ORMixture(groups=20, gamma=1)

    def test_d_sequence_length_checked(self):
        with pytest.raises(ValueError):
            ORMixture(groups=4, gamma=1, levels=2, d_sequence=[4.0])


class TestAdversaryRun:
    def test_run_produces_supported_mask(self, oracle, mixture):
        adv = ORAdversary(oracle, mixture)
        mask, outcomes = adv.run(T=3, rng=0)
        assert mask is not None
        assert mixture.mask_prob(mask) > 0.0

    def test_honest_algorithm_never_trips_thresholds(self, oracle, mixture):
        # Binary-fan-in OR keeps fan-out and contention tiny; REFINE should
        # only ever 'continue' or peel an H level.
        adv = ORAdversary(oracle, mixture)
        _, outcomes = adv.run(T=3, rng=1)
        assert all(o.reason in ("continue", "restricted-to-H") for o in outcomes)

    def test_mismatched_sizes_rejected(self, oracle):
        small = ORMixture(groups=4, gamma=1, levels=1, d_sequence=[4.0])
        with pytest.raises(ValueError):
            ORAdversary(oracle, small)

    def test_reproducible(self, oracle, mixture):
        adv = ORAdversary(oracle, mixture)
        m1, _ = adv.run(T=3, rng=5)
        m2, _ = adv.run(T=3, rng=5)
        assert m1 == m2


class TestTheorem71Game:
    def test_correct_algorithm_scores_one(self, oracle, mixture):
        assert or_success_probability(oracle, OUT, mixture) == pytest.approx(1.0)

    def test_constant_zero_scores_mass_of_zero(self, mixture):
        orc = GSMOracle(const_zero, 8)
        p = or_success_probability(orc, OUT, mixture)
        assert p == pytest.approx(mixture.mask_prob(0))

    def test_constant_one_scores_complement(self, mixture):
        orc = GSMOracle(const_one, 8)
        p = or_success_probability(orc, OUT, mixture)
        assert p == pytest.approx(1.0 - mixture.mask_prob(0))

    def test_theorem_bound_shape(self, mixture):
        # Both constant answers stay below 1/2(1+eps) for eps ~ 0.75 here:
        # the distribution is engineered so no fast answer is very good.
        for alg in (const_zero, const_one):
            orc = GSMOracle(alg, 8)
            assert or_success_probability(orc, OUT, mixture) < 0.875
