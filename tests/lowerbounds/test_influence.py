"""Influence cones: correctness vs the oracle, growth ceilings on big runs."""

import pytest

from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.core import GSM, GSMParams, QSM, QSMParams
from repro.lowerbounds.adversary import GSMOracle, PartialInputMap
from repro.lowerbounds.influence import InfluenceCone, influence_cone, spread_ceiling_ok


def traced_parity(n, fan_in=2):
    m = QSM(QSMParams(g=2), record_trace=True)
    bits = [(i * 3) % 2 for i in range(n)]
    parity_tree(m, bits, fan_in=fan_in)
    return m


class TestConeMechanics:
    def test_input_cell_starts_alone(self):
        m = traced_parity(8)
        cone = influence_cone(m.traces, [0])
        assert cone.cells[0] == frozenset({0})
        assert cone.procs[0] == frozenset()

    def test_monotone_growth(self):
        m = traced_parity(16)
        cone = influence_cone(m.traces, [3])
        for a, b in zip(cone.cells, cone.cells[1:]):
            assert a <= b
        for a, b in zip(cone.procs, cone.procs[1:]):
            assert a <= b

    def test_parity_output_in_every_input_cone(self):
        """Every input influences the root cell of the combining tree."""
        n = 16
        m = traced_parity(n)
        out_cell = max(
            addr for t in m.traces for p, pairs in t.writes.items() for addr, _ in pairs
        )
        for i in range(n):
            cone = influence_cone(m.traces, [i])
            assert out_cell in cone.cells[-1]

    def test_untouched_cell_spreads_nowhere(self):
        m = traced_parity(8)
        cone = influence_cone(m.traces, [99999])
        assert cone.procs[-1] == frozenset()
        assert cone.cells[-1] == frozenset({99999})

    def test_growth_factors_shape(self):
        m = traced_parity(32)
        cone = influence_cone(m.traces, [0])
        factors = cone.growth_factors()
        assert len(factors) == cone.phases
        assert all(f >= 1.0 for f in factors)


class TestOverApproximatesOracle:
    def test_oblivious_algorithm_single_run_suffices(self):
        """parity_tree's access pattern is input-independent: one run's cone
        contains the oracle's semantic Aff sets."""
        n = 5

        def run(machine, bits):
            parity_tree(machine, bits, fan_in=2)

        oracle = GSMOracle(run, n)
        m = GSM(GSMParams(), record_trace=True)
        run(m, [0] * n)
        blank = PartialInputMap.blank(n)
        for i in range(n):
            cone = influence_cone(m.traces, [i])
            t = oracle.n_phases
            assert oracle.aff_cell(i, t, blank) <= cone.cells[-1]
            assert oracle.aff_proc(i, t, blank) <= cone.procs[-1]

    def test_input_dependent_algorithm_needs_superposition(self):
        """or_tree_writes only writes on 1-bits: the cone over the merged
        (all-inputs) trace contains the oracle's Aff sets; a single run's
        cone need not (absence of a write carries information too)."""
        from repro.lowerbounds.influence import merge_traces

        n = 5

        def run(machine, bits):
            or_tree_writes(machine, bits, fan_in=2)

        oracle = GSMOracle(run, n)
        blank = PartialInputMap.blank(n)
        runs = []
        for mask in range(1 << n):
            m = GSM(GSMParams(), record_trace=True)
            run(m, [(mask >> j) & 1 for j in range(n)])
            runs.append(m.traces)
        merged = merge_traces(runs)
        t = oracle.n_phases
        for i in range(n):
            # Position i's processor knows bit i without a read.
            cone = influence_cone(merged, [i], initial_procs=[i])
            assert oracle.aff_cell(i, t, blank) <= cone.cells[-1]
            assert oracle.aff_proc(i, t, blank) <= cone.procs[-1]


class TestSpreadCeilings:
    def test_binary_tree_respects_factor_two(self):
        """Fan-in 2 combining: influence at most doubles-ish per phase pair."""
        m = traced_parity(256, fan_in=2)
        cone = influence_cone(m.traces, [0])
        assert spread_ceiling_ok(cone, per_phase_factor=2.0, slack=2.0)

    def test_tight_factor_rejected_for_wide_tree(self):
        """Fan-in-8 trees spread faster than a factor-1 ceiling allows...
        eventually; the checker detects genuine over-spread."""
        m = traced_parity(4096, fan_in=8)
        cone = influence_cone(m.traces, [0])
        # The cone reaches several nodes per level; factor 0 (no growth
        # allowed) must fail, generous factor must pass.
        assert not spread_ceiling_ok(cone, per_phase_factor=0.0)
        assert spread_ceiling_ok(cone, per_phase_factor=8.0, slack=2.0)

    def test_theorem_3_3_style_bound_at_scale(self):
        """|affected| <= (1+k)^T where k is the per-phase budget — checked
        on a 4096-bit run, far beyond the exhaustive oracle's reach."""
        m = traced_parity(4096, fan_in=2)
        for i in (0, 1000, 4095):
            cone = influence_cone(m.traces, [i])
            assert spread_ceiling_ok(cone, per_phase_factor=2.0, slack=2.0)

    def test_factor_validated(self):
        cone = InfluenceCone(cells=(frozenset(),), procs=(frozenset(),))
        with pytest.raises(ValueError):
            spread_ceiling_ok(cone, per_phase_factor=-1.0)
