"""The Section 5 engine driven by OR algorithms (not just parity).

The REFINE machinery is algorithm-agnostic; these tests pin that down by
running the oracle and the adversary against the write-tournament OR and a
deliberately high-fan-out 'cheating' algorithm, checking the measured
Section 5.1 quantities track each algorithm's actual structure.
"""

import pytest

from repro.algorithms.or_ import or_tree_writes
from repro.lowerbounds.adversary import GSMOracle, IIDBernoulli, PartialInputMap
from repro.lowerbounds.refine_lac import goodness_report, refine_step, run_adversary


def or_alg(machine, bits):
    or_tree_writes(machine, bits, fan_in=2)


def wide_reader(machine, bits):
    """One processor reads every input cell at once (fan-out n)."""
    n = len(bits)
    machine.load_packed(bits)
    with machine.phase() as ph:
        handles = [ph.read(0, i) for i in range(n)]
    with machine.phase() as ph:
        total = sum(h.value[0] if isinstance(h.value, tuple) else h.value for h in handles)
        ph.write(0, 100, 1 if total else 0)


@pytest.fixture(scope="module")
def or_oracle():
    return GSMOracle(or_alg, 6)


@pytest.fixture(scope="module")
def wide_oracle():
    return GSMOracle(wide_reader, 6)


class TestORAdversary:
    def test_goodness_holds_throughout(self, or_oracle):
        _, reports = run_adversary(or_oracle, T=4, rng=2)
        assert all(rep.is_t_good for rep in reports)

    def test_output_knows_everything(self, or_oracle):
        f = PartialInputMap.blank(6)
        # OR's value depends on every input on the all-zeros refinement side.
        out_cell = max(or_oracle.cells)
        know = or_oracle.know(("cell", out_cell), or_oracle.n_phases, f)
        assert know == frozenset(range(6))

    def test_fixing_a_one_shrinks_know(self, or_oracle):
        """Once some input is fixed to 1, OR's output is forced: the output
        cell's Know set over the remaining refinements collapses."""
        out_cell = max(or_oracle.cells)
        blank_know = or_oracle.know(("cell", out_cell), or_oracle.n_phases, PartialInputMap.blank(6))
        # Note: the *trace* (which cells held what) can still vary with other
        # inputs, but never by more than before.
        fixed = PartialInputMap(6, {0: 1})
        fixed_know = or_oracle.know(("cell", out_cell), or_oracle.n_phases, fixed)
        assert fixed_know <= blank_know


class TestWideReaderDetected:
    def test_max_fanout_reflected_in_refine_cost(self, wide_oracle):
        """REFINE certifies the cheater's fan-out as phase big-steps."""
        dist = IIDBernoulli(6, 0.5)
        f = PartialInputMap.blank(6)
        _, x = refine_step(wide_oracle, 0, f, dist, rng=0)
        assert x == 6.0  # alpha = 1: six reads cost six big-steps

    def test_honest_or_certifies_small_steps(self, or_oracle):
        dist = IIDBernoulli(6, 0.5)
        f = PartialInputMap.blank(6)
        _, x = refine_step(or_oracle, 0, f, dist, rng=0)
        assert x <= 2.0

    def test_wide_reader_know_jumps_in_one_phase(self, wide_oracle):
        f = PartialInputMap.blank(6)
        rep0 = goodness_report(wide_oracle, f, 0)
        rep1 = goodness_report(wide_oracle, f, wide_oracle.n_phases)
        assert rep0.max_know <= 1
        assert rep1.max_know == 6  # the single processor learned everything
