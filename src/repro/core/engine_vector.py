"""The numpy-backed vector phase engine (``engine="vector"``).

The reference engine executes one simulated processor operation at a time
in pure Python; this engine executes a whole phase as array operations:

* block reads and writes are issued as *spans* (a step-1 ``range`` or an
  ``int64`` address array) and applied to memory as slice assignments /
  fancy-index gathers against :class:`DenseMemory`;
* per-cell contention comes from interval disjointness when every span is
  a range (O(#blocks log #blocks) — no per-cell work at all), falling back
  to ``np.unique`` over distinct ``(cell, proc)`` pairs plus a bincount
  when spans overlap;
* per-processor ``m_rw`` / ``m_op`` counts are maintained at issue with
  one dict update per *block*, not per cell;
* queue mappings are materialized lazily: a :class:`CountQueue` compares
  equal to the plain dict the reference engine builds, but costs O(1) to
  aggregate (``max_value`` / ``value_counts``) on collision-free phases.

Selection: pass ``engine="vector"`` to any machine constructor, or set
``REPRO_ENGINE=vector`` in the environment (:func:`resolve_engine`).  The
engine is a *bit-equal* drop-in — identical ``PhaseRecord`` streams, costs,
memory contents, traces and winner-policy RNG draws — property-pinned by
``tests/property/test_engine_equivalence.py``.  Whenever a phase needs
semantics the arrays cannot express directly (write collisions feeding the
winner RNG, GSM strong-queuing merges, trace recording), the pending
vector ops are *materialized* into the reference engine's write dict in
issue order and the reference resolution code runs unchanged — so the
fallback is by construction exact, just slower.

If numpy is unavailable, :func:`resolve_engine` resolves ``"vector"`` to
``"reference"`` — with a one-time ``RuntimeWarning`` — so environment-driven
selection degrades instead of crashing a minimal install, while the
downgrade still leaves a visible trace (the warning, the ``engine``
attribute on every machine, and ``python -m repro version``).
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Mapping, MutableMapping
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # numpy is an optional dependency of the core package
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None  # type: ignore[assignment]

from repro.core.bsp import Superstep
from repro.core.machine import (
    MemoryConflictError,
    Phase,
    PhaseClosedError,
    ReadHandle,
    SharedMemoryMachine,
    _is_read_handle,
)

__all__ = [
    "ENGINE_ENV",
    "ENGINES",
    "resolve_engine",
    "have_numpy",
    "CountQueue",
    "DenseMemory",
    "VectorBlockReadHandle",
    "VectorPhase",
    "VectorSuperstep",
]

#: Environment variable consulted when a machine is built without an
#: explicit ``engine=`` argument.
ENGINE_ENV = "REPRO_ENGINE"

#: The recognised engine names.
ENGINES = ("reference", "vector")


def have_numpy() -> bool:
    """Whether the vector engine's numpy backend is importable."""
    return np is not None


#: Set once the first vector->reference numpy fallback has been warned
#: about, so a sweep constructing thousands of machines warns exactly once.
_numpy_fallback_warned = False


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``None`` consults ``$REPRO_ENGINE`` (empty/unset means
    ``"reference"``).  An unrecognised name raises ``ValueError``;
    ``"vector"`` without numpy resolves to ``"reference"`` with a one-time
    ``RuntimeWarning`` (the documented fallback) so env-driven selection
    degrades visibly instead of crashing.
    """
    global _numpy_fallback_warned
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "reference"
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r} "
            f"(set via the engine= argument or ${ENGINE_ENV})"
        )
    if engine == "vector" and np is None:
        if not _numpy_fallback_warned:
            _numpy_fallback_warned = True
            warnings.warn(
                "engine='vector' requested but numpy is not importable; "
                "falling back to the bit-equal (but slower) reference "
                "engine for this process",
                RuntimeWarning,
                stacklevel=2,
            )
        return "reference"
    return engine


# -- compact queue mappings ---------------------------------------------------

class CountQueue(Mapping):
    """Compact per-cell queue mapping ``{addr: distinct-processor count}``.

    The reference engine builds these as plain dicts — O(cells) even when
    every queue has depth one.  The vector engine instead records the
    *structure*: a tuple of disjoint ``range`` spans (each cell depth 1),
    an optional small ``extra`` dict for scalar contributions, and/or a
    sorted unique key array with per-key counts.  Aggregates the cost
    formulas need (``max_value``, ``value_counts``, ``len``) come straight
    from that structure; full Mapping behaviour (iteration, lookup,
    equality against the reference dict) materializes a real dict lazily
    and caches it.
    """

    __slots__ = ("_ranges", "_extra", "_keys", "_counts", "_n", "_dict")

    def __init__(
        self,
        ranges: Sequence[range] = (),
        extra: Optional[Mapping[int, int]] = None,
        keys: Optional[Any] = None,
        counts: Optional[Any] = None,
    ) -> None:
        self._ranges = tuple(ranges)
        self._extra = dict(extra) if extra else None
        self._keys = keys
        self._counts = counts
        n = sum(len(r) for r in self._ranges)
        if self._extra:
            n += len(self._extra)
        if keys is not None:
            n += len(keys)
        self._n = n
        self._dict: Optional[Dict[int, int]] = None

    # -- fast aggregates (no materialization) --

    def max_value(self) -> int:
        """Deepest queue, 0 when empty — ``max(self.values(), default=0)``."""
        best = 1 if (self._ranges and self._n) or (
            self._keys is not None and len(self._keys) and self._counts is None
        ) else 0
        if self._extra:
            best = max(best, max(self._extra.values()))
        if self._counts is not None and len(self._counts):
            best = max(best, int(self._counts.max()))
        return best

    def value_counts(self) -> Dict[int, int]:
        """Histogram ``{queue depth: number of cells}`` without iteration."""
        out: Dict[int, int] = {}
        ones = sum(len(r) for r in self._ranges)
        if self._keys is not None:
            if self._counts is None:
                ones += len(self._keys)
            else:
                depths, cells = np.unique(self._counts, return_counts=True)
                for depth, cells_at in zip(depths.tolist(), cells.tolist()):
                    out[depth] = out.get(depth, 0) + cells_at
        if self._extra:
            for depth in self._extra.values():
                out[depth] = out.get(depth, 0) + 1
        if ones:
            out[1] = out.get(1, 0) + ones
        return out

    # -- Mapping protocol (materializes lazily) --

    def _as_dict(self) -> Dict[int, int]:
        d = self._dict
        if d is None:
            d = {}
            for r in self._ranges:
                d.update(dict.fromkeys(r, 1))
            if self._keys is not None:
                keys = self._keys.tolist()
                if self._counts is None:
                    d.update(dict.fromkeys(keys, 1))
                else:
                    d.update(zip(keys, self._counts.tolist()))
            if self._extra:
                d.update(self._extra)
            self._dict = d
        return d

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(self._as_dict())

    def __getitem__(self, key: int) -> int:
        return self._as_dict()[key]

    def __contains__(self, key: object) -> bool:
        return key in self._as_dict()

    def __eq__(self, other: object) -> Any:
        if isinstance(other, CountQueue):
            return self._n == other._n and self._as_dict() == other._as_dict()
        if isinstance(other, Mapping):
            return self._as_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountQueue({self._as_dict()!r})"


# -- dense memory -------------------------------------------------------------

class DenseMemory(MutableMapping):
    """Array-backed shared memory, dict-compatible, with an ``int64`` lane.

    The reference engine's memory is ``Dict[int, Any]``.  This drop-in
    keeps three stores:

    * ``_ints``/``_tags`` — a dense ``int64`` value array plus a per-cell
      tag (0 unset, 1 int lane, 2 object lane).  Block writes of Python
      ints (or integer ndarrays) land here as slice assignments; block
      reads gather from here and deliver Python ints on ``.values``.
    * ``_objs`` — addr -> value for anything that is not a machine-word
      int (tuples on the GSM, bools, big ints, arbitrary objects).
    * ``_over`` — addr -> value beyond the dense growth limit, so sparse
      huge addresses cost a dict entry instead of gigabytes of backing.

    Compares equal to a plain dict with the same items, so existing
    ``machine._memory == other._memory`` assertions hold across engines.
    """

    __slots__ = ("_ints", "_tags", "_objs", "_over", "_count", "_limit")

    #: Dense backing never grows past this many cells; higher addresses
    #: spill to the overflow dict.  16M cells ~= 144MB of backing.
    GROW_LIMIT = 1 << 24

    def __init__(self, size_hint: Optional[int] = None) -> None:
        if np is None:  # pragma: no cover - constructor gated by resolve_engine
            raise RuntimeError("DenseMemory requires numpy")
        self._limit = self.GROW_LIMIT if size_hint is None else min(
            size_hint, self.GROW_LIMIT
        )
        cap = min(1024, self._limit) or 1
        self._ints = np.zeros(cap, dtype=np.int64)
        self._tags = np.zeros(cap, dtype=np.uint8)
        self._objs: Dict[int, Any] = {}
        self._over: Dict[int, Any] = {}
        self._count = 0

    def _ensure(self, hi: int) -> None:
        """Grow the dense backing to cover address ``hi`` (< limit)."""
        tags = self._tags
        if hi < len(tags):
            return
        cap = max(len(tags) * 2, hi + 1)
        if cap > self._limit:
            cap = max(self._limit, hi + 1)
        new_ints = np.zeros(cap, dtype=np.int64)
        new_tags = np.zeros(cap, dtype=np.uint8)
        new_ints[: len(tags)] = self._ints
        new_tags[: len(tags)] = tags
        self._ints = new_ints
        self._tags = new_tags

    # -- scalar protocol --

    def __setitem__(self, addr: int, value: Any) -> None:
        # Negative (or otherwise non-dense) addresses must not reach the
        # numpy lanes: ``self._tags[-3]`` would silently wrap around.
        if addr < 0 or addr >= self._limit:
            if addr not in self._over:
                self._count += 1
            self._over[addr] = value
            return
        self._ensure(addr)
        old = self._tags[addr]
        if type(value) is int and -9223372036854775808 <= value <= 9223372036854775807:
            self._ints[addr] = value
            self._tags[addr] = 1
            if old == 2:
                del self._objs[addr]
        else:
            self._objs[addr] = value
            self._tags[addr] = 2
        if old == 0:
            self._count += 1

    def __getitem__(self, addr: int) -> Any:
        tags = self._tags
        if 0 <= addr < len(tags):
            tag = tags[addr]
            if tag == 1:
                return int(self._ints[addr])
            if tag == 2:
                return self._objs[addr]
            raise KeyError(addr)
        if addr in self._over:
            return self._over[addr]
        raise KeyError(addr)

    def get(self, addr: int, default: Any = None) -> Any:
        tags = self._tags
        if 0 <= addr < len(tags):
            tag = tags[addr]
            if tag == 1:
                return int(self._ints[addr])
            if tag == 2:
                return self._objs[addr]
            return default
        return self._over.get(addr, default)

    def __delitem__(self, addr: int) -> None:
        tags = self._tags
        if 0 <= addr < len(tags) and tags[addr]:
            if tags[addr] == 2:
                del self._objs[addr]
            tags[addr] = 0
            self._count -= 1
            return
        del self._over[addr]
        self._count -= 1

    def __contains__(self, addr: object) -> bool:
        if type(addr) is not int:
            return False
        tags = self._tags
        if 0 <= addr < len(tags):
            return bool(tags[addr])
        return addr in self._over

    def __iter__(self) -> Iterator[int]:
        yield from np.nonzero(self._tags)[0].tolist()
        yield from self._over

    def __len__(self) -> int:
        return self._count

    def __eq__(self, other: object) -> Any:
        if isinstance(other, DenseMemory):
            return len(self) == len(other) and dict(self.items()) == dict(other.items())
        if isinstance(other, Mapping):
            if len(self) != len(other):
                return False
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DenseMemory({dict(self.items())!r})"

    # -- bulk protocol (the vector engine's fast lane) --

    def gather(self, span: Any) -> Any:
        """Values of every cell in ``span`` (range or int64 array), in order.

        Returns an ``int64`` ndarray when every cell is on the int lane
        (the common case for numeric algorithms), else a Python list with
        ``None`` for unset cells — exactly what per-cell ``get`` would
        deliver.
        """
        tags = self._tags
        if type(span) is range:
            lo, hi = span.start, span.stop
            if hi <= len(tags):
                seg = tags[lo:hi]
                if (seg == 1).all():
                    return self._ints[lo:hi].copy()
            return [self.get(a) for a in span]
        if len(span) and int(span.max()) < len(tags) and int(span.min()) >= 0:
            if (tags[span] == 1).all():
                return self._ints[span]
        return [self.get(a) for a in span.tolist()]

    def scatter(self, span: Any, values: Any) -> None:
        """Store ``values[i]`` into the ``i``-th cell of ``span``.

        ``span`` cells must be distinct (the vector engine only scatters
        collision-free phases).  Integer values take the dense lane as one
        slice/fancy assignment; anything else falls back to per-cell
        stores.
        """
        varr = self._int_lane(values)
        if type(span) is range:
            lo, hi = span.start, span.stop
            if varr is not None and hi <= self._limit:
                self._ensure(hi - 1)
                seg = self._tags[lo:hi]
                spilled = np.nonzero(seg == 2)[0]
                if len(spilled):
                    objs = self._objs
                    for off in spilled.tolist():
                        del objs[lo + off]
                self._count += int((seg == 0).sum())
                self._ints[lo:hi] = varr
                self._tags[lo:hi] = 1
                return
            items: Any = zip(span, self._as_value_list(values))
        else:
            if (
                varr is not None
                and len(span)
                and int(span.max()) < self._limit
                and int(span.min()) >= 0
            ):
                self._ensure(int(span.max()))
                seg = self._tags[span]
                spilled = np.nonzero(seg == 2)[0]
                if len(spilled):
                    objs = self._objs
                    addrs = span[spilled].tolist()
                    for a in addrs:
                        del objs[a]
                self._count += int((seg == 0).sum())
                self._ints[span] = varr
                self._tags[span] = 1
                return
            items = zip(span.tolist(), self._as_value_list(values))
        for addr, value in items:
            self[addr] = value

    @staticmethod
    def _int_lane(values: Any) -> Optional[Any]:
        """``values`` as an int64 array when they are machine-word ints."""
        if isinstance(values, np.ndarray):
            if values.dtype.kind in "iu" and values.dtype != np.bool_:
                return values.astype(np.int64, copy=False)
            return None
        if set(map(type, values)) == {int}:
            try:
                return np.array(values, dtype=np.int64)
            except OverflowError:
                return None
        return None

    @staticmethod
    def _as_value_list(values: Any) -> List[Any]:
        return values.tolist() if isinstance(values, np.ndarray) else list(values)


# -- block read handle --------------------------------------------------------

class VectorBlockReadHandle:
    """Block read handle backed by an address span (range or int64 array).

    Protocol-compatible with :class:`~repro.core.machine.BlockReadHandle`:
    ``.proc`` / ``.addrs`` / ``.resolved`` / ``.values`` / ``len()`` all
    behave identically (``.addrs`` materializes its tuple of Python ints
    lazily).  Additionally exposes ``.array`` — the resolved values as an
    ndarray, without the per-element Python-int conversion ``.values``
    pays — for numeric callers that stay in numpy.
    """

    __slots__ = ("proc", "_span", "_addrs", "_payload", "_resolved")

    def __init__(self, proc: int, span: Any) -> None:
        self.proc = proc
        self._span = span
        self._addrs: Optional[Tuple[int, ...]] = None
        self._payload: Any = None
        self._resolved = False

    @property
    def addrs(self) -> Tuple[int, ...]:
        addrs = self._addrs
        if addrs is None:
            span = self._span
            addrs = tuple(span) if type(span) is range else tuple(span.tolist())
            self._addrs = addrs
        return addrs

    def _resolve(self, payload: Any) -> None:
        self._payload = payload
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def values(self) -> List[Any]:
        if not self._resolved:
            raise PhaseClosedError(
                "block read values used before their phase committed: the "
                "QSM/GSM read rule only makes values available in a "
                "subsequent phase"
            )
        payload = self._payload
        return payload.tolist() if isinstance(payload, np.ndarray) else list(payload)

    @property
    def array(self) -> Any:
        """Resolved values as an ndarray (int64 lane when possible)."""
        if not self._resolved:
            raise PhaseClosedError(
                "block read values used before their phase committed: the "
                "QSM/GSM read rule only makes values available in a "
                "subsequent phase"
            )
        payload = self._payload
        if isinstance(payload, np.ndarray):
            return payload
        arr = np.empty(len(payload), dtype=object)
        arr[:] = payload
        return arr

    def __len__(self) -> int:
        span = self._span
        return len(span)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "<sealed>" if not self._resolved else repr(self._payload)
        return f"VectorBlockReadHandle(proc={self.proc}, n={len(self)}, values={state})"


# -- the vector phase ---------------------------------------------------------

def _disjoint(intervals: List[Tuple[int, int]]) -> bool:
    """Whether sorted ``(start, stop)`` half-open intervals are disjoint."""
    for i in range(len(intervals) - 1):
        if intervals[i][1] > intervals[i + 1][0]:
            return False
    return True


def _covers(intervals: List[Tuple[int, int]], addr: int) -> bool:
    """Whether ``addr`` lies inside any of the sorted intervals."""
    from bisect import bisect_right

    i = bisect_right(intervals, (addr, float("inf"))) - 1
    return i >= 0 and intervals[i][0] <= addr < intervals[i][1]


class VectorPhase(Phase):
    """A phase whose block operations stay as arrays until commit.

    Subclasses :class:`~repro.core.machine.Phase` so scalar bookkeeping,
    the commit protocol and the materialized fallback are shared; block
    reads land in ``_rblocks`` as spans and *all* writes land in ``_wops``
    in issue order (``('b', proc, span, values)`` for blocks,
    ``('s', proc, addr, value)`` for scalars), with the parent's
    ``_writes`` dict left empty until :meth:`_materialize_writes` replays
    the log — which preserves the reference engine's first-write dict
    order, and with it the winner-policy RNG draw sequence.
    """

    def __init__(self, machine: "SharedMemoryMachine") -> None:
        super().__init__(machine)
        # (proc, span) per block read, issue order.
        self._rblocks: List[Tuple[int, Any]] = []
        # The unified write log (see class docstring), issue order.
        self._wops: List[Tuple[Any, ...]] = []
        # Interval hull of the vector block reads (scalar reads use the
        # parent's _readers dict); used to skip conflict probes.
        self._vr_lo: Any = float("inf")
        self._vr_hi: int = -1
        # Lazy membership sets for the hull-overlap (conflict) paths.
        self._wset: Optional[set] = None
        self._wset_upto = 0
        self._rset: Optional[set] = None
        self._rset_upto = 0
        self._materialized = False

    # -- span normalization ----------------------------------------------

    def _addr_span(self, addrs: Any) -> Any:
        """Validate an address sequence; return a step-1 range, an int64
        array, or ``None`` when the addresses exceed int64 (the caller
        then falls back to per-item scalar ops, which handle big ints)."""
        machine = self._machine
        mem_size = machine.memory_size
        if type(addrs) is range:
            if addrs.step != 1:
                span = np.arange(addrs.start, addrs.stop, addrs.step, dtype=np.int64)
                lo = int(span.min())
                hi = int(span.max())
            else:
                span = addrs
                lo = addrs.start
                hi = addrs.stop - 1
            if lo < 0:
                raise ValueError(f"address must be non-negative, got {lo}")
            if mem_size is not None and hi >= mem_size:
                raise ValueError(
                    f"address {hi} out of range for memory of size {mem_size}"
                )
            return span
        if isinstance(addrs, np.ndarray):
            if addrs.dtype.kind not in "iu" or addrs.dtype == np.bool_:
                raise TypeError(
                    f"address array must have an integer dtype, got {addrs.dtype}"
                )
            span = addrs.astype(np.int64, copy=False)
        else:
            seq = addrs if type(addrs) in (tuple, list) else tuple(addrs)
            if not set(map(type, seq)) <= {int}:
                for a in seq:
                    if type(a) is not int:
                        raise TypeError(f"address must be an int, got {a!r}")
            try:
                span = np.fromiter(seq, dtype=np.int64, count=len(seq))
            except OverflowError:
                return None
        lo = int(span.min())
        hi = int(span.max())
        if lo < 0:
            raise ValueError(f"address must be non-negative, got {lo}")
        if mem_size is not None and hi >= mem_size:
            raise ValueError(
                f"address {hi} out of range for memory of size {mem_size}"
            )
        return span

    @staticmethod
    def _span_bounds(span: Any) -> Tuple[int, int]:
        if type(span) is range:
            return span.start, span.stop - 1
        return int(span.min()), int(span.max())

    @staticmethod
    def _span_iter(span: Any) -> Any:
        return span if type(span) is range else span.tolist()

    # -- conflict membership sets -----------------------------------------

    def _written_set(self) -> Any:
        if self._materialized:
            # Every write lives in the parent dict once materialized; its
            # key view is the authoritative membership set.
            return self._writes.keys()
        s = self._wset
        if s is None:
            s = self._wset = set(self._writes)
        ops = self._wops
        for op in ops[self._wset_upto:]:
            if op[0] == "b":
                span = op[2]
                s.update(span if type(span) is range else span.tolist())
            else:
                s.add(op[2])
        self._wset_upto = len(ops)
        return s

    def _read_set(self) -> set:
        s = self._rset
        if s is None:
            s = self._rset = set()
        blocks = self._rblocks
        for _, span in blocks[self._rset_upto:]:
            s.update(span if type(span) is range else span.tolist())
        self._rset_upto = len(blocks)
        return s

    # -- operations --------------------------------------------------------

    def read(self, proc: int, addr: int) -> ReadHandle:
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if (
            self._wops
            and self._write_lo <= addr <= self._write_hi
            and addr in self._written_set()
        ):
            raise MemoryConflictError(
                f"cell {addr} is being written this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        return super().read(proc, addr)

    def read_block(self, proc: int, addrs: Sequence[int]) -> Any:
        self._check_open()
        self._machine._check_proc(proc)
        if type(addrs) not in (range, tuple, list) and not isinstance(
            addrs, np.ndarray
        ):
            addrs = tuple(addrs)
        if not len(addrs):
            handle = VectorBlockReadHandle(proc, range(0))
            handle._resolve([])
            return handle
        span = self._addr_span(addrs)
        if span is None:
            # Addresses beyond int64: fall back to scalar reads (which
            # handle arbitrary Python ints); the wrapper keeps the block
            # handle protocol for the caller.
            handles = [self.read(proc, a) for a in addrs]
            return _ScalarFallbackBlockHandle(proc, tuple(addrs), handles)
        lo, hi = self._span_bounds(span)
        if (self._wops or self._writes) and not (
            self._write_hi < lo or self._write_lo > hi
        ):
            wset = self._written_set()
            if not wset.isdisjoint(self._span_iter(span)):
                for a in self._span_iter(span):
                    if a in wset:
                        raise MemoryConflictError(
                            f"cell {a} is being written this phase; concurrent "
                            f"read and write to one location in a phase is "
                            f"forbidden"
                        )
        handle = VectorBlockReadHandle(proc, span)
        self._rblocks.append((proc, span))
        self._reads.append(handle)
        self._reads_per_proc[proc] = self._reads_per_proc.get(proc, 0) + len(span)
        if lo < self._vr_lo:
            self._vr_lo = lo
        if hi > self._vr_hi:
            self._vr_hi = hi
        if self._rset is not None:
            self._rset.update(self._span_iter(span))
            self._rset_upto = len(self._rblocks)
        return handle

    def write(self, proc: int, addr: int, value: Any) -> None:
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if isinstance(value, ReadHandle):
            if not value.resolved:
                raise PhaseClosedError(
                    "attempted to write a value read in the same phase; reads "
                    "only deliver in a subsequent phase"
                )
            value = value.value
        if addr in self._readers or (
            self._rblocks
            and self._vr_lo <= addr <= self._vr_hi
            and addr in self._read_set()
        ):
            raise MemoryConflictError(
                f"cell {addr} is being read this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        if self._materialized:
            self._insert_writes(proc, (addr,), (value,))
        else:
            self._wops.append(("s", proc, addr, value))
            if self._wset is not None:
                self._wset.add(addr)
                self._wset_upto = len(self._wops)
        if addr > self._write_hi:
            self._write_hi = addr
        if addr < self._write_lo:
            self._write_lo = addr
        self._writes_per_proc[proc] = self._writes_per_proc.get(proc, 0) + 1

    def write_block(self, proc: int, items: Sequence[Tuple[int, Any]]) -> None:
        self._check_open()
        self._machine._check_proc(proc)
        pairs = items if type(items) is list else list(items)
        if not pairs:
            return
        try:
            addrs, values = zip(*pairs, strict=True)
        except (TypeError, ValueError):
            addrs = values = ()
        if len(addrs) != len(pairs):
            # Malformed rows (wrong arity); the scalar path reports them.
            for addr, value in pairs:
                self.write(proc, addr, value)
            return
        self._write_cols(proc, addrs, list(values))

    def write_cols(self, proc: int, addrs: Sequence[int], values: Sequence[Any]) -> None:
        self._check_open()
        self._machine._check_proc(proc)
        if len(addrs) != len(values):
            raise ValueError(
                f"write_cols needs parallel columns of equal length, got "
                f"{len(addrs)} addresses and {len(values)} values"
            )
        if not len(addrs):
            return
        self._write_cols(proc, addrs, values)

    def _write_cols(self, proc: int, addrs: Any, values: Any) -> None:
        span = self._addr_span(addrs)
        if span is None:
            for a, v in zip(addrs, values):
                self.write(proc, a, v)
            return
        lo, hi = self._span_bounds(span)
        readers = self._readers
        if readers and not readers.keys().isdisjoint(self._span_iter(span)):
            for a in self._span_iter(span):
                if a in readers:
                    raise MemoryConflictError(
                        f"cell {a} is being read this phase; concurrent read "
                        f"and write to one location in a phase is forbidden"
                    )
        if self._rblocks and not (hi < self._vr_lo or lo > self._vr_hi):
            rset = self._read_set()
            if not rset.isdisjoint(self._span_iter(span)):
                for a in self._span_iter(span):
                    if a in rset:
                        raise MemoryConflictError(
                            f"cell {a} is being read this phase; concurrent "
                            f"read and write to one location in a phase is "
                            f"forbidden"
                        )
        if not isinstance(values, np.ndarray):
            vals = values if type(values) is list else list(values)
            if any(map(_is_read_handle, vals)):
                unwrapped: List[Any] = []
                for value in vals:
                    if isinstance(value, ReadHandle):
                        if not value.resolved:
                            raise PhaseClosedError(
                                "attempted to write a value read in the same "
                                "phase; reads only deliver in a subsequent phase"
                            )
                        value = value.value
                    unwrapped.append(value)
                vals = unwrapped
        else:
            vals = values
        if self._materialized:
            self._insert_writes(
                proc,
                list(self._span_iter(span)),
                vals.tolist() if isinstance(vals, np.ndarray) else vals,
            )
        else:
            self._wops.append(("b", proc, span, vals))
            if self._wset is not None:
                self._wset.update(self._span_iter(span))
                self._wset_upto = len(self._wops)
        if hi > self._write_hi:
            self._write_hi = hi
        if lo < self._write_lo:
            self._write_lo = lo
        self._writes_per_proc[proc] = (
            self._writes_per_proc.get(proc, 0) + len(span)
        )

    # -- commit machinery --------------------------------------------------

    def _materialize_writes(self) -> None:
        """Replay the vector write log into the reference write dict.

        Issue order is preserved exactly, so the dict's first-write key
        order — and with it the winner-policy RNG draw sequence, GSM merge
        order and trace content — matches the reference engine's.
        """
        if self._materialized:
            return
        self._materialized = True
        ops, self._wops = self._wops, []
        for op in ops:
            if op[0] == "s":
                self._insert_writes(op[1], (op[2],), (op[3],))
            else:
                _, proc, span, vals = op
                addr_list = (
                    list(span) if type(span) is range else span.tolist()
                )
                val_list = vals.tolist() if isinstance(vals, np.ndarray) else vals
                self._insert_writes(proc, addr_list, val_list)

    def _vector_write_queue(self) -> Optional[CountQueue]:
        """Write queue for a collision-free write log, else ``None`` after
        materializing (caller then uses the reference dict logic)."""
        intervals: List[Tuple[int, int]] = []
        arrays: List[Any] = []
        for op in self._wops:
            if op[0] == "b":
                span = op[2]
                if type(span) is range:
                    intervals.append((span.start, span.stop))
                else:
                    arrays.append(span)
            else:
                intervals.append((op[2], op[2] + 1))
        if not arrays:
            intervals.sort()
            if _disjoint(intervals):
                return CountQueue(
                    ranges=[range(a, b) for a, b in intervals]
                )
            self._materialize_writes()
            return None
        parts = [np.arange(a, b, dtype=np.int64) for a, b in intervals] + arrays
        allw = np.concatenate(parts) if len(parts) > 1 else parts[0]
        uniq = np.unique(allw)
        if len(uniq) == len(allw):
            return CountQueue(keys=uniq)
        self._materialize_writes()
        return None

    def _vector_read_queue(self) -> Mapping[int, int]:
        """Read queue over the scalar readers dict plus the block spans."""
        readers = self._readers
        intervals: List[Tuple[int, int]] = []
        arrays: List[Tuple[int, Any]] = []
        for proc, span in self._rblocks:
            if type(span) is range:
                intervals.append((span.start, span.stop))
            else:
                arrays.append((proc, span))
        if not arrays:
            intervals.sort()
            if _disjoint(intervals):
                if not readers:
                    return CountQueue(ranges=[range(a, b) for a, b in intervals])
                if all(not _covers(intervals, a) for a in readers):
                    extra = {a: len(procs) for a, procs in readers.items()}
                    return CountQueue(
                        ranges=[range(a, b) for a, b in intervals], extra=extra
                    )
        # General path: distinct (cell, proc) pairs via np.unique.
        addr_parts: List[Any] = []
        proc_parts: List[Any] = []
        for proc, span in self._rblocks:
            arr = np.arange(span.start, span.stop, dtype=np.int64) if type(
                span
            ) is range else span
            addr_parts.append(arr)
            proc_parts.append(np.full(len(arr), proc, dtype=np.int64))
        for a, procs in readers.items():
            k = len(procs)
            addr_parts.append(np.full(k, a, dtype=np.int64))
            proc_parts.append(np.fromiter(procs, dtype=np.int64, count=k))
        addrs = np.concatenate(addr_parts) if len(addr_parts) > 1 else addr_parts[0]
        procs_arr = (
            np.concatenate(proc_parts) if len(proc_parts) > 1 else proc_parts[0]
        )
        maxp = int(procs_arr.max()) + 1
        max_addr = int(addrs.max())
        if max_addr <= (2**62) // maxp:
            uniq = np.unique(addrs * maxp + procs_arr)
            cells = uniq // maxp
        else:  # pragma: no cover - astronomically sparse address spaces
            stacked = np.unique(np.stack([addrs, procs_arr]), axis=1)
            cells = np.sort(stacked[0])
        cells_u, counts = np.unique(cells, return_counts=True)
        if int(counts.max()) == 1:
            return CountQueue(keys=cells_u)
        return CountQueue(keys=cells_u, counts=counts)

    def _build_record(self, index: int):
        machine = self._machine
        if self._wops and (
            machine.record_trace or not machine._plain_write_semantics
        ):
            self._materialize_writes()
        if self._rblocks:
            read_queue: Mapping[int, int] = self._vector_read_queue()
        else:
            read_queue = self._scalar_read_queue()
        if self._wops:
            write_queue = self._vector_write_queue()
            if write_queue is None:  # collisions found; log was materialized
                write_queue = self._dict_write_queue()
        else:
            write_queue = self._dict_write_queue()
        from repro.core.phase import PhaseRecord

        return PhaseRecord(
            index=index,
            reads_per_proc=dict(self._reads_per_proc),
            writes_per_proc=dict(self._writes_per_proc),
            ops_per_proc=dict(self._ops_per_proc),
            read_queue=read_queue,
            write_queue=write_queue,
        )

    def _resolve_reads(self, machine: "SharedMemoryMachine") -> None:
        memory = machine._memory
        fast = (
            type(memory) is DenseMemory
            and type(machine)._read_cell is SharedMemoryMachine._read_cell
        )
        read_cell = machine._read_cell
        for handle in self._reads:
            t = type(handle)
            if t is ReadHandle:
                handle._resolve(read_cell(handle.addr))
            elif t is VectorBlockReadHandle:
                if fast:
                    handle._resolve(memory.gather(handle._span))
                else:
                    handle._resolve(
                        [read_cell(a) for a in self._span_iter(handle._span)]
                    )
            else:
                handle._resolve([read_cell(a) for a in handle.addrs])

    def _apply_writes(self, machine: "SharedMemoryMachine") -> None:
        if self._materialized or not self._wops:
            machine._resolve_writes(self)
            return
        # Collision-free, plain single-writer semantics: apply the log as
        # slice assignments, in issue order.
        memory = machine._memory
        if type(memory) is DenseMemory:
            for op in self._wops:
                if op[0] == "b":
                    memory.scatter(op[2], op[3])
                else:
                    memory[op[2]] = op[3]
        else:
            for op in self._wops:
                if op[0] == "b":
                    vals = op[3]
                    vals = vals.tolist() if isinstance(vals, np.ndarray) else vals
                    for addr, value in zip(self._span_iter(op[2]), vals):
                        memory[addr] = value
                else:
                    memory[op[2]] = op[3]


# -- the vector superstep -----------------------------------------------------

class VectorSuperstep(Superstep):
    """A BSP superstep whose bulk sends stay as arrays until delivery.

    Every send lands in ``_vops`` in issue order (``('s', src, dst,
    payload)`` scalar, ``('b', src, dst_array, payloads)`` bulk).  A
    fault-free commit delivers via :meth:`_deliver` — receive counts by
    ``np.bincount``, inbox grouping by two stable argsorts (by sender,
    then by destination), which reproduces the reference engine's
    "sorted by sender, ties in send order" delivery exactly.  When a
    fault plan or deferred messages are in play,
    :meth:`_materialize_outgoing` rebuilds the reference triple list and
    the unchanged reference commit runs.
    """

    _is_vector = True

    def __init__(self, machine: Any) -> None:
        super().__init__(machine)
        self._vops: List[Tuple[Any, ...]] = []

    def send(self, src: int, dst: int, payload: Any) -> None:
        self._check_open()
        machine = self._machine
        machine._check_component(src)
        machine._check_component(dst)
        self._vops.append(("s", src, dst, payload))
        self._sent[src] = self._sent.get(src, 0) + 1

    def send_block(self, src: int, msgs: Sequence[Tuple[int, Any]]) -> None:
        self._check_open()
        machine = self._machine
        machine._check_component(src)
        pairs = list(msgs)
        if not pairs:
            return
        try:
            dsts, payloads = zip(*pairs, strict=True)
        except (TypeError, ValueError):
            dsts = payloads = ()
        if len(dsts) != len(pairs):
            # Malformed rows (wrong arity); the scalar path reports them.
            for dst, payload in pairs:
                self.send(src, dst, payload)
            return
        self._send_cols_checked(src, dsts, payloads)

    def send_cols(self, src: int, dsts: Sequence[int], payloads: Sequence[Any]) -> None:
        self._check_open()
        self._machine._check_component(src)
        if len(dsts) != len(payloads):
            raise ValueError(
                f"send_cols needs parallel columns of equal length, got "
                f"{len(dsts)} destinations and {len(payloads)} payloads"
            )
        if not len(dsts):
            return
        self._send_cols_checked(src, dsts, payloads)

    def _send_cols_checked(self, src: int, dsts: Any, payloads: Any) -> None:
        machine = self._machine
        p = machine.p
        if isinstance(dsts, np.ndarray):
            if dsts.dtype.kind not in "iu" or dsts.dtype == np.bool_:
                raise TypeError(
                    f"destination array must have an integer dtype, got {dsts.dtype}"
                )
            darr = dsts.astype(np.int64, copy=False)
        else:
            # Aggregate validation with cold re-scans for precise per-item
            # errors, mirroring the reference send_block.
            if not set(map(type, dsts)) <= {int}:
                for dst in dsts:
                    if not isinstance(dst, int) or isinstance(dst, bool):
                        raise TypeError(f"component id must be an int, got {dst!r}")
            darr = np.fromiter(dsts, dtype=np.int64, count=len(dsts))
        if int(darr.min()) < 0 or int(darr.max()) >= p:
            for dst in darr.tolist():
                if dst < 0 or dst >= p:
                    raise ValueError(f"component id {dst} out of range for p={p}")
        self._vops.append(("b", src, darr, payloads))
        self._sent[src] = self._sent.get(src, 0) + len(darr)

    def _materialize_outgoing(self) -> List[Tuple[int, int, Any]]:
        from itertools import repeat

        out: List[Tuple[int, int, Any]] = []
        for op in self._vops:
            if op[0] == "s":
                out.append((op[1], op[2], op[3]))
            else:
                _, src, darr, payloads = op
                out.extend(zip(repeat(src), darr.tolist(), payloads))
        return out

    def _deliver(self) -> Tuple[Dict[int, int], List[List[Tuple[int, Any]]]]:
        """Receive counts and new inboxes, computed with array operations."""
        p = self._machine.p
        n = sum(1 if op[0] == "s" else len(op[2]) for op in self._vops)
        if not n:
            return {}, [[] for _ in range(p)]
        src_a = np.empty(n, dtype=np.int64)
        dst_a = np.empty(n, dtype=np.int64)
        pay_a = np.empty(n, dtype=object)
        i = 0
        for op in self._vops:
            if op[0] == "s":
                src_a[i] = op[1]
                dst_a[i] = op[2]
                pay_a[i] = op[3]
                i += 1
            else:
                _, src, darr, payloads = op
                k = len(darr)
                src_a[i : i + k] = src
                dst_a[i : i + k] = darr
                if isinstance(payloads, np.ndarray):
                    # .tolist() delivers Python scalars, matching what the
                    # reference path would have unpacked from the pairs.
                    pay_a[i : i + k] = payloads.tolist()
                else:
                    pay_a[i : i + k] = np.fromiter(
                        payloads, dtype=object, count=k
                    )
                i += k
        # Reference delivery order: stable-sorted by sender (ties keep send
        # order), appended per destination.  Two stable argsorts — first by
        # sender, then by destination — give exactly that per-inbox order.
        order = np.argsort(src_a, kind="stable")
        final = order[np.argsort(dst_a[order], kind="stable")]
        src_f = src_a[final].tolist()
        pay_f = pay_a[final].tolist()
        pairs = list(zip(src_f, pay_f))
        counts = np.bincount(dst_a, minlength=p)
        new_inboxes: List[List[Tuple[int, Any]]] = []
        start = 0
        for c in counts.tolist():
            new_inboxes.append(pairs[start : start + c])
            start += c
        received = {dst: c for dst, c in enumerate(counts.tolist()) if c}
        return received, new_inboxes


class _ScalarFallbackBlockHandle:
    """Block handle for the big-int fallback: wraps scalar ReadHandles."""

    __slots__ = ("proc", "addrs", "_handles")

    def __init__(self, proc: int, addrs: Tuple[int, ...], handles: List[ReadHandle]):
        self.proc = proc
        self.addrs = addrs
        self._handles = handles

    @property
    def resolved(self) -> bool:
        return all(h.resolved for h in self._handles)

    @property
    def values(self) -> List[Any]:
        return [h.value for h in self._handles]

    def __len__(self) -> int:
        return len(self.addrs)
