"""The BSP simulator (Valiant's model, as specified in Section 2.1).

``p`` processor/memory components communicate by point-to-point messages.
A computation is a sequence of supersteps; messages sent in superstep *t*
are delivered before superstep *t+1* begins, and each component's sends must
be a function of its state at the start of the superstep (enforced the same
way the shared-memory machines enforce read latency: inboxes swap at commit).

Superstep cost is ``max(w, g * h, L)`` where ``w`` is the maximum local work
and ``h = max_i max(s_i, r_i)`` is the routed h-relation.  The paper assumes
``L >= g``; :class:`~repro.core.params.BSPParams` enforces it.

The input convention of Section 2.1 — an input of size ``n`` is partitioned
uniformly so each component holds ``ceil(n/p)`` or ``floor(n/p)`` items —
is provided by :meth:`BSP.scatter`.
"""

from __future__ import annotations

from collections import Counter
from itertools import repeat
from operator import itemgetter
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import bsp_cost_terms, bsp_superstep_cost
from repro.core.machine import PhaseClosedError
from repro.core.params import BSPParams
from repro.core.phase import SuperstepRecord
from repro.obs import metrics as _metrics

__all__ = ["BSP", "Superstep"]

# Sort/count keys over (src, dst, payload) triples, at C speed.
_by_src = itemgetter(0)
_by_dst = itemgetter(1)


class Superstep:
    """One open BSP superstep; use via ``with bsp.superstep() as ss:``."""

    #: True on the vector engine's subclass; the commit uses it to pick the
    #: array delivery path (see BSP._commit).
    _is_vector = False

    def __init__(self, machine: "BSP") -> None:
        self._machine = machine
        self._open = True
        self._outgoing: List[Tuple[int, int, Any]] = []  # (src, dst, payload)
        self._sent: Dict[int, int] = {}
        self._work: Dict[int, int] = {}

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Component ``src`` sends ``payload`` to component ``dst``.

        Delivery happens when the superstep commits; the message appears in
        ``bsp.inbox(dst)`` during the next superstep.
        """
        self._check_open()
        self._machine._check_component(src)
        self._machine._check_component(dst)
        self._outgoing.append((src, dst, payload))
        self._sent[src] = self._sent.get(src, 0) + 1

    def send_block(self, src: int, msgs: Sequence[Tuple[int, Any]]) -> None:
        """Component ``src`` sends every ``(dst, payload)`` pair in ``msgs``.

        Semantically identical to ``for dst, m in msgs: ss.send(src, dst, m)``
        (including on error: a bad destination aborts the superstep at that
        pair, just as the scalar loop would) but the outgoing queue and
        per-component send counter update with aggregate operations.
        """
        self._check_open()
        machine = self._machine
        machine._check_component(src)
        pairs = list(msgs)
        if not pairs:
            return
        try:
            dsts, payloads = zip(*pairs, strict=True)
        except (TypeError, ValueError):
            dsts = payloads = ()
        if len(dsts) != len(pairs):
            # Malformed rows (wrong arity); the scalar path reports them.
            for dst, payload in pairs:
                self.send(src, dst, payload)
            return
        # Aggregate validation at C speed, with cold re-scans for precise
        # per-item errors (bool is an int subtype, hence the exact-type set).
        if not set(map(type, dsts)) <= {int}:
            for dst in dsts:
                if not isinstance(dst, int) or isinstance(dst, bool):
                    raise TypeError(f"component id must be an int, got {dst!r}")
        p = machine.p
        if min(dsts) < 0 or max(dsts) >= p:
            for dst in dsts:
                if dst < 0 or dst >= p:
                    raise ValueError(f"component id {dst} out of range for p={p}")
        self._outgoing.extend(zip(repeat(src), dsts, payloads))
        self._sent[src] = self._sent.get(src, 0) + len(pairs)

    def send_cols(self, src: int, dsts: Sequence[int], payloads: Sequence[Any]) -> None:
        """Column form of :meth:`send_block`: ``payloads[i]`` to ``dsts[i]``.

        Semantically identical to ``ss.send_block(src, list(zip(dsts,
        payloads)))`` without building the pair list — and the form the
        vector engine consumes without unzipping.  The columns must have
        equal length.
        """
        self._check_open()
        self._machine._check_component(src)
        if len(dsts) != len(payloads):
            raise ValueError(
                f"send_cols needs parallel columns of equal length, got "
                f"{len(dsts)} destinations and {len(payloads)} payloads"
            )
        self.send_block(src, list(zip(dsts, payloads)))

    def _materialize_outgoing(self) -> List[Tuple[int, int, Any]]:
        """This superstep's messages as (src, dst, payload) triples (hook
        for engine subclasses that keep the log in another form)."""
        return self._outgoing

    def local(self, proc: int, ops: int = 1) -> None:
        """Charge ``ops`` units of local work to component ``proc``."""
        self._check_open()
        self._machine._check_component(proc)
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self._work[proc] = self._work.get(proc, 0) + ops

    def _check_open(self) -> None:
        if not self._open:
            raise PhaseClosedError("superstep already committed")

    def __enter__(self) -> "Superstep":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                self._machine._commit(self)
        finally:
            # Whether the superstep aborted or the commit itself raised
            # (e.g. a bad params object in bsp_superstep_cost), release the
            # machine so later supersteps don't hit PhaseClosedError — the
            # same try/finally discipline Phase.__exit__ uses.
            self._machine._step_open = False
            self._open = False
        return False


class BSP:
    """Bulk-Synchronous Parallel machine with ``p`` components.

    ``record_costs=True`` appends a
    :class:`~repro.obs.records.PhaseCostRecord` per committed superstep to
    ``bsp.cost_records`` (terms ``L`` / ``g*h`` / ``w``, the dominant
    term, a received-messages histogram, per-component op counts, wall
    time), mirroring the shared-memory machines' flag.
    """

    model_label = "BSP"

    def __init__(
        self,
        p: int,
        params: Optional[BSPParams] = None,
        seed: Optional[int] = 0,
        record_costs: bool = False,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        if type(p) is not int:
            raise ValueError(f"BSP component count must be an int, got {p!r}")
        if p < 1:
            raise ValueError(f"BSP needs at least one component, got p={p}")
        self.p = p
        from repro.core.engine_vector import resolve_engine

        self.engine = resolve_engine(engine)
        if _metrics.REGISTRY.enabled:
            _metrics.record_engine(self.engine, self.model_label)
        if self.engine == "vector":
            from repro.core.engine_vector import VectorSuperstep

            self._step_factory = VectorSuperstep
        else:
            self._step_factory = Superstep
        self.params = params if params is not None else BSPParams()
        # Local stores are plain dicts owned by the orchestrating algorithm.
        self.store: List[Dict[Any, Any]] = [dict() for _ in range(p)]
        self._inboxes: List[List[Tuple[int, Any]]] = [[] for _ in range(p)]
        self.history: List[SuperstepRecord] = []
        self.step_costs: List[float] = []
        self.record_costs = record_costs
        self.cost_records: List["PhaseCostRecord"] = []
        self.time: float = 0.0
        self._step_open = False
        # Fault injection (see repro.faults.plan): messages a fault defers
        # are parked here as (due_step, (src, dst, payload)) and merged into
        # the inboxes after the superstep with that index commits.
        self.fault_plan = fault_plan
        self.fault_events: List[Any] = []
        self._deferred: List[Tuple[int, Tuple[int, int, Any]]] = []
        if fault_plan is not None:
            fault_plan.attach(self)

    # -- data movement helpers (uncharged setup) -----------------------------

    def scatter(self, values: Sequence[Any], key: Any = "input") -> None:
        """Partition ``values`` uniformly across components (Section 2.1).

        Component ``i`` receives a contiguous slice of size ``ceil(n/p)`` or
        ``floor(n/p)``; the slice is stored under ``store[i][key]`` together
        with its global offset under ``store[i][(key, 'offset')]``.  Input
        placement is part of the model's initial condition and is not
        charged.
        """
        n = len(values)
        base, extra = divmod(n, self.p)
        start = 0
        for i in range(self.p):
            size = base + (1 if i < extra else 0)
            self.store[i][key] = list(values[start : start + size])
            self.store[i][(key, "offset")] = start
            start += size

    def gather(self, key: Any = "input") -> List[Any]:
        """Concatenate each component's ``store[key]`` list (verifier use)."""
        out: List[Any] = []
        for i in range(self.p):
            out.extend(self.store[i].get(key, []))
        return out

    # -- superstep protocol ---------------------------------------------------

    def superstep(self) -> Superstep:
        if self._step_open:
            raise PhaseClosedError("a superstep is already open; they cannot nest")
        self._step_open = True
        step = self._step_factory(self)
        if self.record_costs:
            step._t_open = perf_counter()
        return step

    def inbox(self, proc: int) -> List[Tuple[int, Any]]:
        """Messages delivered to ``proc`` at the end of the previous superstep.

        Each entry is ``(src, payload)``.  Order is deterministic: sorted by
        sender id, ties broken by send order.  (The BSP does not guarantee
        arrival order; algorithms must not rely on it, and the deterministic
        order here merely makes runs reproducible.  Tests shuffle inboxes to
        check order-independence.)
        """
        self._check_component(proc)
        return list(self._inboxes[proc])

    @property
    def superstep_count(self) -> int:
        return len(self.history)

    # -- internals --------------------------------------------------------------

    def _cost_terms(self, record: SuperstepRecord) -> Dict[str, float]:
        """Evaluated terms of ``max(w, g*h, L)`` (see
        :func:`repro.core.cost.bsp_cost_terms` for the tie order)."""
        return bsp_cost_terms(record, self.params)

    def _superstep_cost(self, record: SuperstepRecord) -> float:
        """Charge for one committed superstep (subclass cost hook).

        Invariant (shared with the phase machines' ``_phase_cost``):
        equals ``max(self._cost_terms(record).values())``.  MPC overrides
        both hooks with its capacity-tiled round charge.
        """
        return bsp_superstep_cost(record, self.params)

    def _check_component(self, proc: int) -> None:
        if not isinstance(proc, int) or isinstance(proc, bool):
            raise TypeError(f"component id must be an int, got {proc!r}")
        if not 0 <= proc < self.p:
            raise ValueError(f"component id {proc} out of range for p={self.p}")

    def _commit(self, step: Superstep) -> None:
        index = len(self.history)
        step_faults: Tuple[Dict[str, Any], ...] = ()
        if step._is_vector and self.fault_plan is None and not self._deferred:
            # Vector engine, nothing rerouting messages: deliver the whole
            # superstep with array counting/sorting.  Any fault plan or
            # pending deferred message drops to the reference path below,
            # which is bit-equal by construction (same triples, same sort).
            received, new_inboxes = step._deliver()
        else:
            outgoing = step._materialize_outgoing()
            if self.fault_plan is not None:
                # Route this superstep's messages through the fault plan:
                # drops vanish, duplicates double, delayed/stalled messages
                # park in self._deferred until their due superstep commits.
                outgoing, deferred, fired = self.fault_plan.route_bsp(index, outgoing)
                if deferred:
                    self._deferred.extend(deferred)
                if fired:
                    self.fault_events.extend(fired)
                    step_faults = tuple(ev.to_dict() for ev in fired)
            if self._deferred:
                matured = [m for due, m in self._deferred if due <= index]
                if matured:
                    self._deferred = [
                        (due, m) for due, m in self._deferred if due > index
                    ]
                    outgoing = list(outgoing) + matured
            received = dict(Counter(map(_by_dst, outgoing)))
            new_inboxes = [[] for _ in range(self.p)]
            # Deterministic delivery order: by sender, then send order (the
            # sort is stable, so sorting on sender alone preserves each
            # sender's issue order; matured deferred messages sort with
            # their sender).
            for src, dst, payload in sorted(outgoing, key=_by_src):
                new_inboxes[dst].append((src, payload))
        record = SuperstepRecord(
            index=index,
            work_per_proc=dict(step._work),
            sent_per_proc=dict(step._sent),
            received_per_proc=received,
        )
        cost = self._superstep_cost(record)
        self._inboxes = new_inboxes
        self.history.append(record)
        self.step_costs.append(cost)
        self.time += cost
        if _metrics.REGISTRY.enabled:
            _metrics.record_superstep(
                record, cost, len(step_faults), model=self.model_label
            )
        if self.record_costs:
            from repro.obs.records import build_superstep_cost_record

            self.cost_records.append(
                build_superstep_cost_record(
                    record.index,
                    self._cost_terms(record),
                    cost,
                    record,
                    wall_time=perf_counter() - getattr(step, "_t_open", perf_counter()),
                    faults=step_faults,
                    model=self.model_label,
                )
            )
        self._step_open = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BSP(p={self.p}, g={self.params.g}, L={self.params.L}, "
            f"supersteps={self.superstep_count}, time={self.time})"
        )
