"""The GSM simulator — the paper's lower-bound model (Section 2.2).

Differences from the QSM:

* **Strong queuing writes.**  When several processors write a cell, *all*
  written values are transferred and added to the information already in the
  cell.  We represent a GSM cell as a tuple of values; writes extend it, and
  reads deliver the whole tuple.  (Cells "can hold an arbitrarily large
  amount of information".)
* **Gamma-packed inputs.**  At time zero each cell may hold information
  about up to ``gamma`` inputs; :meth:`GSM.load_packed` packs an input
  sequence accordingly.
* **Big-step costing.**  A phase with ``m_rw`` reads/writes per processor
  and contention ``kappa`` takes ``b = max(ceil(m_rw/alpha), ceil(kappa/beta))``
  big-steps of duration ``mu = max(alpha, beta)``.  Local computation is free
  (this is a lower-bound model: making it stronger only strengthens bounds
  proved on it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import gsm_big_steps, gsm_cost_terms, gsm_phase_cost
from repro.core.machine import Collided, Phase, SharedMemoryMachine
from repro.core.params import GSMParams
from repro.core.phase import PhaseRecord

__all__ = ["GSM"]


class GSM(SharedMemoryMachine):
    """Generalized Shared Memory machine (strong queuing model)."""

    model_label = "GSM"

    # Strong queuing transforms even single-writer values (merge into the
    # cell's tuple), so the vector engine must always hand writes to
    # _resolve_writes rather than scatter them directly.
    _plain_write_semantics = False

    def __init__(
        self,
        params: Optional[GSMParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        # No winner_policy: GSM strong queuing accumulates every written
        # value, so there is no arbitration to subvert.
        super().__init__(
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else GSMParams()
        self.big_steps: int = 0

    def _phase_cost(self, record: PhaseRecord) -> float:
        self.big_steps += gsm_big_steps(record, self.params)
        return gsm_phase_cost(record, self.params)

    def _cost_terms(self, record: PhaseRecord):
        return gsm_cost_terms(record, self.params)

    def _resolve_writes(self, phase: Phase) -> None:
        # Strong queuing merges into whatever the cell already holds, so the
        # GSM always walks entries individually (no last-value bulk path).
        memory = self._memory
        memory_get = memory.get
        for addr, entry in phase._writes.items():
            existing = memory_get(addr, ())
            if not isinstance(existing, tuple):
                existing = (existing,)
            kind = type(entry)
            if kind is Collided:
                entries = entry
                # Deterministic accumulation order: by processor id then
                # issue order, so traces are reproducible.
                indexed = sorted(
                    range(len(entries)), key=lambda i: (entries[i][0], i)
                )
                memory[addr] = existing + tuple(entries[i][1] for i in indexed)
            elif kind is tuple:
                memory[addr] = existing + (entry[1],)
            else:
                memory[addr] = existing + (entry,)

    def poke(self, addr: int, value: Any) -> None:
        """Set a cell's entire contents.  Non-tuple values are wrapped.

        GSM cells always hold tuples so that reads after strong-queuing
        writes have a uniform shape.
        """
        if not isinstance(value, tuple):
            value = (value,)
        super().poke(addr, value)

    def load_packed(self, values: Sequence[Any], base: int = 0) -> int:
        """Pack inputs ``gamma`` per cell starting at ``base``.

        Returns the number of cells used.  This is the paper's initial
        condition: "each cell contains information about up to ``gamma``
        inputs (disjoint from other cells)".
        """
        gamma = self.params.gamma
        cells = 0
        for start in range(0, len(values), gamma):
            self.poke(base + cells, tuple(values[start : start + gamma]))
            cells += 1
        return cells

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return (
            f"GSM(alpha={p.alpha}, beta={p.beta}, gamma={p.gamma}, "
            f"phases={self.phase_count}, big_steps={self.big_steps}, time={self.time})"
        )
