"""Round accounting (Section 2.3).

A *round* is a phase/superstep whose cost stays within a per-round budget
that depends on the model, the input size ``n`` and the processor count
``p``:

* QSM / s-QSM: a phase taking ``O(g n / p)`` time,
* BSP: a superstep routing an ``O(n/p)``-relation with ``O(g n/p + L)``
  local computation,
* GSM (``p <= n``, ``gamma <= n/p``): a phase taking ``O(mu n / (lambda p))``
  time.

The auditor wraps a machine, checks each committed phase against the budget
(with an explicit constant, default 1, because O(·) constants must be pinned
to be executable), and counts rounds.  Algorithms "compute in rounds" iff
the auditor records no violations.  A ``p``-processor QSM/s-QSM algorithm
performs *linear work* iff ``p * time = O(g n)``; :func:`linear_work_ratio`
reports that ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.machine import SharedMemoryMachine
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = [
    "round_budget",
    "RoundViolation",
    "RoundAuditor",
    "linear_work_ratio",
    "total_work",
    "round_work_bound",
    "gsm_h_round_budget",
]

Machine = Union[QSM, SQSM, GSM, BSP]


def round_budget(machine: Machine, n: int, p: int, constant: float = 1.0) -> float:
    """The maximum cost one phase/superstep may have to count as a round."""
    if n < 1 or p < 1:
        raise ValueError(f"need n >= 1 and p >= 1, got n={n}, p={p}")
    if isinstance(machine, GSM):
        prm = machine.params
        return constant * prm.mu * n / (prm.lam * p)
    if isinstance(machine, (QSM, SQSM)):
        return constant * machine.params.g * n / p
    if isinstance(machine, BSP):
        prm = machine.params
        return constant * (prm.g * n / p + prm.L)
    raise TypeError(f"unsupported machine type: {type(machine)!r}")


@dataclass(frozen=True)
class RoundViolation:
    """A phase that exceeded the round budget."""

    phase_index: int
    cost: float
    budget: float

    def __str__(self) -> str:
        return (
            f"phase {self.phase_index} cost {self.cost:g} exceeds round "
            f"budget {self.budget:g}"
        )


class RoundAuditor:
    """Counts rounds and flags budget violations on a machine's history.

    The auditor is retrospective: call :meth:`audit` after (or during) a run
    and it scans any phases committed since the previous call.  This keeps
    the machines unaware of round bookkeeping.
    """

    def __init__(self, machine: Machine, n: int, p: int, constant: float = 1.0) -> None:
        self.machine = machine
        self.n = n
        self.p = p
        self.budget = round_budget(machine, n, p, constant)
        self.rounds = 0
        self.violations: List[RoundViolation] = []
        self._cursor = 0

    def audit(self) -> int:
        """Scan new phases; returns the total round count so far."""
        costs = (
            self.machine.step_costs
            if isinstance(self.machine, BSP)
            else self.machine.phase_costs
        )
        while self._cursor < len(costs):
            cost = costs[self._cursor]
            if cost > self.budget:
                self.violations.append(
                    RoundViolation(phase_index=self._cursor, cost=cost, budget=self.budget)
                )
            self.rounds += 1
            self._cursor += 1
        return self.rounds

    @property
    def computes_in_rounds(self) -> bool:
        """True iff every audited phase fit in the round budget."""
        return not self.violations


def linear_work_ratio(machine: Machine, n: int, p: int) -> float:
    """``(p * time) / (g * n)`` — 1.0 or below means linear work (QSM/s-QSM).

    On the GSM the denominator is ``mu * n / lambda`` per Section 2.3; on the
    BSP we use ``g * n + L * p``, the work bound of an O(1)-round BSP
    computation.
    """
    if n < 1 or p < 1:
        raise ValueError(f"need n >= 1 and p >= 1, got n={n}, p={p}")
    if isinstance(machine, GSM):
        prm = machine.params
        return (p * machine.time) / (prm.mu * n / prm.lam)
    if isinstance(machine, (QSM, SQSM)):
        return (p * machine.time) / (machine.params.g * n)
    if isinstance(machine, BSP):
        prm = machine.params
        return (p * machine.time) / (prm.g * n + prm.L * p)
    raise TypeError(f"unsupported machine type: {type(machine)!r}")


def total_work(machine: Machine, p: int) -> float:
    """Processor-time product ``p * T`` for a p-processor computation."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return p * machine.time


def round_work_bound(machine: Machine, n: int, p: int, rounds: int) -> float:
    """Section 2.3's work ceiling for an ``r``-round computation.

    "an r-round computation on an input of size n performs at most O(rgn)
    work on a GSM, QSM or s-QSM.  On a p-processor BSP this computation has
    an upper bound of O(r(gn + Lp))".  Returned with the O-constant at 1;
    by construction ``total_work <= round_budget * p * rounds`` whenever the
    round auditor reports no violations, which is exactly this quantity.
    """
    if n < 1 or p < 1 or rounds < 0:
        raise ValueError(f"need n, p >= 1 and rounds >= 0; got {n}, {p}, {rounds}")
    if isinstance(machine, GSM):
        prm = machine.params
        return rounds * prm.mu * n / prm.lam
    if isinstance(machine, (QSM, SQSM)):
        return rounds * machine.params.g * n
    if isinstance(machine, BSP):
        prm = machine.params
        return rounds * (prm.g * n + prm.L * p)
    raise TypeError(f"unsupported machine type: {type(machine)!r}")


def gsm_h_round_budget(params, h: float, constant: float = 1.0) -> float:
    """Section 6.3's relaxed round for the GSM(h): ``O(mu * h / lambda)`` time.

    Theorem 6.3 measures rounds of a GSM(h) — a GSM whose round is a phase
    of at most this cost regardless of the processor count.  In one such
    round a processor may issue at most ``O(alpha h / lambda)`` reads/writes
    and a cell may be hit by at most ``O(beta h / lambda)`` processors.
    """
    if h < 1:
        raise ValueError(f"h must be >= 1, got {h}")
    return constant * params.mu * h / params.lam
