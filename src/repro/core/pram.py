"""The classical PRAM family: EREW, CREW, CRCW.

The paper's lower-bound techniques descend from PRAM results — Beame &
Hastad's CRCW bounds [3], MacKenzie's EREW/QRQW adversaries [15, 16, 17],
the few-write PRAM degree argument [6] — and Theorems 3.3/3.4 transfer
CRCW bounds to the QSM.  This module supplies the reference machines so the
model ladder EREW -> CREW -> QRQW (= QSM with g = 1) -> CRCW is executable
end to end.

A PRAM step is one synchronous phase in which every processor performs O(1)
local work and at most one shared-memory read *or* write; a step costs unit
time.  The variants differ only in which access patterns are legal and how
write conflicts resolve:

=========  ==================  =======================================
variant    concurrent reads    concurrent writes
=========  ==================  =======================================
EREW       forbidden           forbidden
CREW       free                forbidden
CRCW       free                resolved by the write rule:
                               ``common`` (equal values required),
                               ``arbitrary`` (seeded winner),
                               ``priority`` (lowest processor id wins)
=========  ==================  =======================================

Illegal concurrency raises :class:`ConcurrencyViolation` — on a PRAM it is
a programming error, not a cost (that re-charging is exactly what the
queuing models of the paper add).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.machine import Collided, Phase, SharedMemoryMachine
from repro.core.phase import PhaseRecord

__all__ = ["PRAMParams", "PRAM", "ConcurrencyViolation"]

_VARIANTS = ("EREW", "CREW", "CRCW")
_WRITE_RULES = ("common", "arbitrary", "priority")


class ConcurrencyViolation(RuntimeError):
    """An access pattern the PRAM variant forbids."""


@dataclass(frozen=True)
class PRAMParams:
    """PRAM variant and, for the CRCW, the write-conflict rule."""

    variant: str = "EREW"
    write_rule: str = "arbitrary"

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(f"variant must be one of {_VARIANTS}, got {self.variant!r}")
        if self.write_rule not in _WRITE_RULES:
            raise ValueError(
                f"write_rule must be one of {_WRITE_RULES}, got {self.write_rule!r}"
            )


class PRAM(SharedMemoryMachine):
    """Synchronous PRAM; each committed phase is one unit-time step."""

    model_label = "PRAM"

    def __init__(
        self,
        params: Optional[PRAMParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            winner_policy=winner_policy,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else PRAMParams()

    def _phase_cost(self, record: PhaseRecord) -> float:
        self._enforce_step_shape(record)
        self._enforce_concurrency(record)
        return 1.0

    def _cost_terms(self, record: PhaseRecord):
        # Every legal PRAM step costs unit time; there is no max() to win.
        return {"step": 1.0}

    def _enforce_step_shape(self, record: PhaseRecord) -> None:
        for proc in set(record.reads_per_proc) | set(record.writes_per_proc):
            r = record.reads_per_proc.get(proc, 0)
            w = record.writes_per_proc.get(proc, 0)
            if r + w > 1:
                raise ConcurrencyViolation(
                    f"processor {proc} issued {r} reads and {w} writes in one "
                    f"PRAM step; at most one shared-memory access is allowed"
                )

    def _enforce_concurrency(self, record: PhaseRecord) -> None:
        variant = self.params.variant
        if variant in ("EREW",):
            for addr, queue in record.read_queue.items():
                if queue > 1:
                    raise ConcurrencyViolation(
                        f"{queue} concurrent readers of cell {addr} on an EREW PRAM"
                    )
        if variant in ("EREW", "CREW"):
            for addr, queue in record.write_queue.items():
                if queue > 1:
                    raise ConcurrencyViolation(
                        f"{queue} concurrent writers of cell {addr} on a {variant} PRAM"
                    )

    def _resolve_writes(self, phase: Phase) -> None:
        if not phase._write_collision:
            self._apply_single_writes(phase)
            return
        rule = self.params.write_rule
        for addr, entry in phase._writes.items():
            kind = type(entry)
            if kind is not Collided:
                self._memory[addr] = entry[1] if kind is tuple else entry
                continue
            entries = entry
            # Only reachable on the CRCW (others raised during costing).
            if rule == "common":
                values = {repr(v) for _, v in entries}
                if len(values) != 1:
                    raise ConcurrencyViolation(
                        f"COMMON CRCW writers disagree at cell {addr}: {values}"
                    )
                self._memory[addr] = entries[0][1]
            elif rule == "priority":
                winner = min(entries, key=lambda e: e[0])
                self._memory[addr] = winner[1]
            else:  # arbitrary — same pluggable arbitration as the QSM
                self._memory[addr] = entries[self._pick_winner(addr, entries)][1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PRAM({self.params.variant}/{self.params.write_rule}, "
            f"steps={self.phase_count}, time={self.time})"
        )
