"""Immutable per-phase / per-superstep accounting records.

A :class:`PhaseRecord` captures everything the Section 2 cost formulas need
about one shared-memory phase — per-processor read, write and local-op
counts, and per-cell reader/writer queue lengths — plus the derived
aggregates ``m_op``, ``m_rw`` and ``kappa``.  A :class:`SuperstepRecord`
is the BSP analogue (local work and the ``h``-relation).

These records are produced by the machines and consumed by three clients:
the cost functions in :mod:`repro.core.cost`, the round auditor in
:mod:`repro.core.rounds`, and the lower-bound engines in
:mod:`repro.lowerbounds`, which replay them to drive degree recurrences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["PhaseRecord", "SuperstepRecord", "queue_max"]


def queue_max(queue: Mapping[int, int], default: int = 0) -> int:
    """``max(queue.values(), default=default)`` for a per-cell queue mapping.

    Queue mappings may be plain dicts (reference engine) or compact lazy
    mappings exposing a ``max_value()`` aggregate (the vector engine's
    ``CountQueue``); routing aggregation through here keeps the cost
    formulas O(1) on the compact form instead of materializing a dict with
    one entry per touched cell.
    """
    fast = getattr(queue, "max_value", None)
    if fast is not None:
        return fast() if queue else default
    return max(queue.values(), default=default)


@dataclass(frozen=True)
class PhaseRecord:
    """Accounting for one shared-memory phase (QSM / s-QSM / GSM).

    Attributes
    ----------
    index:
        0-based phase number within the machine's history.
    reads_per_proc / writes_per_proc / ops_per_proc:
        Per-processor counts, keyed by processor id.  Processors that did
        nothing this phase are absent.
    read_queue / write_queue:
        Per-cell queue lengths, keyed by address: the number of *distinct
        processors* reading (resp. writing) the cell, which is Section
        2.1's definition of contention.  A processor that issues several
        requests to one cell contributes 1 here (its raw request count
        still shows up in ``reads_per_proc`` / ``writes_per_proc`` and
        therefore in ``m_rw``).
    """

    index: int
    reads_per_proc: Mapping[int, int]
    writes_per_proc: Mapping[int, int]
    ops_per_proc: Mapping[int, int]
    read_queue: Mapping[int, int]
    write_queue: Mapping[int, int]

    @property
    def m_op(self) -> int:
        """Maximum local computation by any processor (``max_i c_i``)."""
        return max(self.ops_per_proc.values(), default=0)

    @property
    def m_rw(self) -> int:
        """``max(1, max_i r_i, max_i w_i)`` as defined for QSM phases."""
        max_r = max(self.reads_per_proc.values(), default=0)
        max_w = max(self.writes_per_proc.values(), default=0)
        return max(1, max_r, max_w)

    @property
    def kappa(self) -> int:
        """Maximum contention: the most distinct processors at any one cell.

        A phase with no reads or writes has contention 1 by definition
        (Section 2.1).
        """
        return max(1, queue_max(self.read_queue), queue_max(self.write_queue))

    @property
    def total_reads(self) -> int:
        return sum(self.reads_per_proc.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes_per_proc.values())

    @property
    def total_ops(self) -> int:
        return sum(self.ops_per_proc.values())

    @property
    def active_processors(self) -> int:
        """Number of processors that issued at least one operation."""
        active = set(self.reads_per_proc) | set(self.writes_per_proc) | set(self.ops_per_proc)
        return len(active)


@dataclass(frozen=True)
class SuperstepRecord:
    """Accounting for one BSP superstep.

    Attributes
    ----------
    index:
        0-based superstep number.
    work_per_proc:
        Local work ``w_i`` per component.
    sent_per_proc / received_per_proc:
        Message counts ``s_i`` and ``r_i`` per component.
    """

    index: int
    work_per_proc: Mapping[int, int]
    sent_per_proc: Mapping[int, int]
    received_per_proc: Mapping[int, int]

    @property
    def w(self) -> int:
        """Maximum local work at any component."""
        return max(self.work_per_proc.values(), default=0)

    @property
    def h(self) -> int:
        """The ``h``-relation routed: ``max_i max(s_i, r_i)``."""
        max_s = max(self.sent_per_proc.values(), default=0)
        max_r = max(self.received_per_proc.values(), default=0)
        return max(max_s, max_r)

    @property
    def total_messages(self) -> int:
        return sum(self.sent_per_proc.values())


def merge_counts(*mappings: Mapping[int, int]) -> Dict[int, int]:
    """Sum integer-valued mappings key-wise (helper for record construction)."""
    out: Dict[int, int] = {}
    for mapping in mappings:
        for key, value in mapping.items():
            out[key] = out.get(key, 0) + value
    return out
