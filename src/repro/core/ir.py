"""Phase-instruction IR shared by the reference and vector engines.

A phase (or BSP superstep) is a batch of operations with no intra-batch
ordering constraints beyond issue order.  This module gives that batch a
first-class representation: a list of small frozen instruction objects that
can be built once and executed against *any* machine, whatever its
``engine=`` selection.  Both engines consume the same IR because
:class:`~repro.core.engine_vector.VectorPhase` implements the exact method
protocol of :class:`~repro.core.machine.Phase` — ``run_phase`` just replays
instructions through that protocol, so an IR program is the natural input
for the reference-vs-vector bit-equality suite
(``tests/property/test_engine_equivalence.py``).

Shared-memory instructions: :class:`ReadOp`, :class:`ReadBlockOp`,
:class:`WriteOp`, :class:`WriteBlockOp` (parallel address/value columns)
and :class:`LocalOp`.  BSP instructions: :class:`SendOp`,
:class:`SendBlockOp` and :class:`WorkOp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

__all__ = [
    "ReadOp",
    "ReadBlockOp",
    "WriteOp",
    "WriteBlockOp",
    "LocalOp",
    "SendOp",
    "SendBlockOp",
    "WorkOp",
    "PhaseOp",
    "SuperstepOp",
    "apply_phase_op",
    "apply_superstep_op",
    "run_phase",
    "run_superstep",
]


# -- shared-memory instructions ----------------------------------------------

@dataclass(frozen=True)
class ReadOp:
    """``proc`` reads cell ``addr``; yields a sealed handle at replay."""

    proc: int
    addr: int


@dataclass(frozen=True)
class ReadBlockOp:
    """``proc`` reads every cell in ``addrs`` (a bulk read)."""

    proc: int
    addrs: Sequence[int]


@dataclass(frozen=True)
class WriteOp:
    """``proc`` writes ``value`` to cell ``addr``."""

    proc: int
    addr: int
    value: Any


@dataclass(frozen=True)
class WriteBlockOp:
    """``proc`` writes parallel columns: ``values[i]`` into ``addrs[i]``.

    Column form rather than ``(addr, value)`` pairs so a vector engine can
    consume the columns without unzipping; ``run_phase`` feeds it through
    :meth:`~repro.core.machine.Phase.write_cols`, whose reference
    implementation is pair-exact with ``write_block``.
    """

    proc: int
    addrs: Sequence[int]
    values: Sequence[Any]


@dataclass(frozen=True)
class LocalOp:
    """``proc`` charges ``ops`` units of local computation."""

    proc: int
    ops: int = 1


# -- BSP instructions ---------------------------------------------------------

@dataclass(frozen=True)
class SendOp:
    """Component ``src`` sends ``payload`` to component ``dst``."""

    src: int
    dst: int
    payload: Any


@dataclass(frozen=True)
class SendBlockOp:
    """Component ``src`` sends ``payloads[i]`` to ``dsts[i]`` (bulk send)."""

    src: int
    dsts: Sequence[int]
    payloads: Sequence[Any]


@dataclass(frozen=True)
class WorkOp:
    """Component ``proc`` charges ``ops`` units of local work."""

    proc: int
    ops: int = 1


PhaseOp = Union[ReadOp, ReadBlockOp, WriteOp, WriteBlockOp, LocalOp]
SuperstepOp = Union[SendOp, SendBlockOp, WorkOp]


# -- replay ------------------------------------------------------------------

def apply_phase_op(ph: Any, op: PhaseOp) -> Any:
    """Execute one shared-memory instruction against an open phase.

    Returns the read handle for read instructions, ``None`` otherwise.
    """
    kind = type(op)
    if kind is ReadOp:
        return ph.read(op.proc, op.addr)
    if kind is ReadBlockOp:
        return ph.read_block(op.proc, op.addrs)
    if kind is WriteOp:
        ph.write(op.proc, op.addr, op.value)
    elif kind is WriteBlockOp:
        ph.write_cols(op.proc, op.addrs, op.values)
    elif kind is LocalOp:
        ph.local(op.proc, op.ops)
    else:
        raise TypeError(f"not a phase instruction: {op!r}")
    return None


def apply_superstep_op(ss: Any, op: SuperstepOp) -> None:
    """Execute one BSP instruction against an open superstep."""
    kind = type(op)
    if kind is SendOp:
        ss.send(op.src, op.dst, op.payload)
    elif kind is SendBlockOp:
        ss.send_cols(op.src, op.dsts, op.payloads)
    elif kind is WorkOp:
        ss.local(op.proc, op.ops)
    else:
        raise TypeError(f"not a superstep instruction: {op!r}")


def run_phase(machine: Any, program: Sequence[PhaseOp]) -> List[Any]:
    """Execute ``program`` as one committed phase of ``machine``.

    Returns the handles produced by the program's read instructions, in
    program order — resolved, since the phase has committed by the time
    this returns.
    """
    handles: List[Any] = []
    with machine.phase() as ph:
        for op in program:
            handle = apply_phase_op(ph, op)
            if handle is not None:
                handles.append(handle)
    return handles


def run_superstep(bsp: Any, program: Sequence[SuperstepOp]) -> None:
    """Execute ``program`` as one committed superstep of ``bsp``."""
    with bsp.superstep() as ss:
        for op in program:
            apply_superstep_op(ss, op)
