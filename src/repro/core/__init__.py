"""Executable cost models: QSM, s-QSM, GSM, and BSP (Section 2 of the paper).

Each model is a discrete-event *cost simulator*: algorithms written against
the phase/superstep API execute with the model's memory or message semantics
enforced, and every phase is charged exactly the paper's cost formula.  The
simulated time these machines report is the quantity the paper's bounds
speak about.

Public surface
--------------

* Parameter dataclasses: :class:`QSMParams`, :class:`SQSMParams`,
  :class:`GSMParams`, :class:`BSPParams` (plus :class:`MPCParams` /
  :class:`PEMParams` for the post-1998 machines in :mod:`repro.models`).
* Machines: :class:`QSM`, :class:`SQSM`, :class:`GSM`, :class:`BSP`.
* Cost formulas (pure functions): :mod:`repro.core.cost`.
* Round accounting (Section 2.3): :mod:`repro.core.rounds`.
* GSM-to-other-model bound translation (Claims 2.1/2.2):
  :mod:`repro.core.mapping`.
* Execution engines: every machine takes ``engine="reference"|"vector"``
  (default via ``$REPRO_ENGINE``); see :mod:`repro.core.engine_vector` and
  the phase-instruction IR in :mod:`repro.core.ir`.
"""

from repro.core.bsp import BSP, Superstep
from repro.core.engine_vector import ENGINE_ENV, ENGINES, have_numpy, resolve_engine
from repro.core.gsm import GSM
from repro.core.ir import (
    LocalOp,
    ReadBlockOp,
    ReadOp,
    SendBlockOp,
    SendOp,
    WorkOp,
    WriteBlockOp,
    WriteOp,
    run_phase,
    run_superstep,
)
from repro.core.machine import (
    BlockReadHandle,
    MemoryConflictError,
    Phase,
    PhaseClosedError,
    ReadHandle,
    SharedMemoryMachine,
)
from repro.core.params import (
    BSPParams,
    GSMParams,
    MPCParams,
    PEMParams,
    QSMParams,
    SQSMParams,
)
from repro.core.pram import PRAM, ConcurrencyViolation, PRAMParams
from repro.core.phase import PhaseRecord, SuperstepRecord
from repro.core.qsm import QSM
from repro.core.qsm_gd import QSMGD, QSMGDParams
from repro.core.rounds import RoundAuditor, RoundViolation, round_budget
from repro.core.sqsm import SQSM

__all__ = [
    "BSP",
    "GSM",
    "PRAM",
    "PRAMParams",
    "ConcurrencyViolation",
    "QSM",
    "QSMGD",
    "QSMGDParams",
    "SQSM",
    "Superstep",
    "Phase",
    "ReadHandle",
    "BlockReadHandle",
    "SharedMemoryMachine",
    "MemoryConflictError",
    "PhaseClosedError",
    "BSPParams",
    "GSMParams",
    "MPCParams",
    "PEMParams",
    "QSMParams",
    "SQSMParams",
    "PhaseRecord",
    "SuperstepRecord",
    "RoundAuditor",
    "RoundViolation",
    "round_budget",
    "ENGINE_ENV",
    "ENGINES",
    "resolve_engine",
    "have_numpy",
    "ReadOp",
    "ReadBlockOp",
    "WriteOp",
    "WriteBlockOp",
    "LocalOp",
    "SendOp",
    "SendBlockOp",
    "WorkOp",
    "run_phase",
    "run_superstep",
]
