"""Claims 2.1 and 2.2: translating GSM lower bounds to the other models.

The paper proves most lower bounds once, on the GSM, then reads off bounds
for the QSM, s-QSM, BSP and QSM(g,d) via Claim 2.1/2.2.  This module encodes
those translations as first-class objects: given a GSM lower-bound function
``T_GSM(n, alpha, beta, gamma)`` (time) or
``R_GSM(n, alpha, beta, gamma, p)`` (rounds), it produces the corresponding
bound functions for each target model, with the exact parameter
substitutions of the claims:

=====================  =================================================
Target                 Substitution
=====================  =================================================
``T_QSM(n, g)``        ``T_GSM(n, 1, g, 1)``
``T_sQSM(n, g)``       ``g * T_GSM(n, 1, 1, 1)``
``T_BSP(n, g, L, p)``  ``g * T_GSM(n, L/g, L/g, n/p)``
``R_QSM(n, g, p)``     ``R_GSM(n, 1, g, 1, p)``
``R_sQSM(n, g, p)``    ``R_GSM(n, 1, 1, 1, p)``
``R_BSP(n, g, L, p)``  ``R_GSM(n, 1, 1, n/p, p)``
``T_QSM(g,d), g>d``    ``d * T_GSM(n, 1, g/d, 1)``
``T_QSM(g,d), d>g``    ``g * T_GSM(n, d/g, 1, 1)``
=====================  =================================================

The derived rounds-from-time relation (Claim 2.1, item 4) is also provided:
``R_GSM(n, a, b, c, p) = Omega(T_GSM(n, a*n/(lam*p), b*n/(lam*p), c) / (mu*n/(lam*p)))``.

The formula library in :mod:`repro.lowerbounds.formulas` uses these
translators so that each bound is stated once, on the GSM, exactly as in the
paper; the tests check the translated forms against the paper's explicit
corollaries.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "GSMTimeBound",
    "GSMRoundsBound",
    "qsm_time_from_gsm",
    "sqsm_time_from_gsm",
    "bsp_time_from_gsm",
    "qsm_rounds_from_gsm",
    "sqsm_rounds_from_gsm",
    "bsp_rounds_from_gsm",
    "rounds_from_time_gsm",
    "qsm_gd_time_from_gsm",
    "qsm_gd_rounds_from_gsm",
]

# T_GSM(n, alpha, beta, gamma) -> lower bound value
GSMTimeBound = Callable[[int, float, float, float], float]
# R_GSM(n, alpha, beta, gamma, p) -> lower bound value
GSMRoundsBound = Callable[[int, float, float, float, int], float]


def qsm_time_from_gsm(t_gsm: GSMTimeBound) -> Callable[[int, float], float]:
    """Claim 2.1(1): ``T_QSM(n, g) = Omega(T_GSM(n, 1, g, 1))``."""

    def bound(n: int, g: float) -> float:
        return t_gsm(n, 1.0, g, 1.0)

    return bound


def sqsm_time_from_gsm(t_gsm: GSMTimeBound) -> Callable[[int, float], float]:
    """Claim 2.1(2): ``T_sQSM(n, g) = Omega(g * T_GSM(n, 1, 1, 1))``."""

    def bound(n: int, g: float) -> float:
        return g * t_gsm(n, 1.0, 1.0, 1.0)

    return bound


def bsp_time_from_gsm(t_gsm: GSMTimeBound) -> Callable[[int, float, float, int], float]:
    """Claim 2.1(3): ``T_BSP(n, g, L, p) = Omega(g * T_GSM(n, L/g, L/g, n/p))``."""

    def bound(n: int, g: float, L: float, p: int) -> float:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        ratio = max(L / g, 1.0)
        gamma = max(n / p, 1.0)
        return g * t_gsm(n, ratio, ratio, gamma)

    return bound


def rounds_from_time_gsm(t_gsm: GSMTimeBound) -> GSMRoundsBound:
    """Claim 2.1(4): rounds bound derived from a time bound.

    ``R_GSM(n, a, b, c, p) = T_GSM(n, a*n/(lam*p), b*n/(lam*p), c) / (mu*n/(lam*p))``
    where ``mu = max(a, b)`` and ``lam = min(a, b)`` refer to the *original*
    GSM parameters.
    """

    def bound(n: int, alpha: float, beta: float, gamma: float, p: int) -> float:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        mu = max(alpha, beta)
        lam = min(alpha, beta)
        scale = max(n / (lam * p), 1.0)
        big_step = mu * scale
        return t_gsm(n, alpha * scale, beta * scale, gamma) / big_step

    return bound


def qsm_rounds_from_gsm(r_gsm: GSMRoundsBound) -> Callable[[int, float, int], float]:
    """Claim 2.1(5): ``R_QSM(n, g, p) = Omega(R_GSM(n, 1, g, 1, p))``."""

    def bound(n: int, g: float, p: int) -> float:
        return r_gsm(n, 1.0, g, 1.0, p)

    return bound


def sqsm_rounds_from_gsm(r_gsm: GSMRoundsBound) -> Callable[[int, float, int], float]:
    """Claim 2.1(6): ``R_sQSM(n, g, p) = Omega(R_GSM(n, 1, 1, 1, p))``.

    Note the translated bound does not depend on ``g``; the signature keeps
    ``g`` for uniformity with the other models.
    """

    def bound(n: int, g: float, p: int) -> float:  # noqa: ARG001 - uniform signature
        return r_gsm(n, 1.0, 1.0, 1.0, p)

    return bound


def bsp_rounds_from_gsm(r_gsm: GSMRoundsBound) -> Callable[[int, float, float, int], float]:
    """Claim 2.1(7): ``R_BSP(n, g, L, p) = Omega(R_GSM(n, 1, 1, n/p, p))``."""

    def bound(n: int, g: float, L: float, p: int) -> float:  # noqa: ARG001
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        return r_gsm(n, 1.0, 1.0, max(n / p, 1.0), p)

    return bound


def qsm_gd_rounds_from_gsm(r_gsm: GSMRoundsBound) -> Callable[[int, float, float, int], float]:
    """Claim 2.2(3)/(4): rounds bound for the QSM(g,d) model.

    For ``g > d``: ``R_GSM(n, 1, g/d, 1, p)``;
    for ``d > g``: ``R_GSM(n, d/g, 1, 1, p)``;
    the two coincide at ``g == d``.
    """

    def bound(n: int, g: float, d: float, p: int) -> float:
        if g <= 0 or d <= 0:
            raise ValueError(f"need positive g and d, got g={g}, d={d}")
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if g >= d:
            return r_gsm(n, 1.0, g / d, 1.0, p)
        return r_gsm(n, d / g, 1.0, 1.0, p)

    return bound


def qsm_gd_time_from_gsm(t_gsm: GSMTimeBound) -> Callable[[int, float, float], float]:
    """Claim 2.2(1)/(2): time bound for the QSM(g,d) model.

    For ``g > d``: ``d * T_GSM(n, 1, g/d, 1)``;
    for ``d > g``: ``g * T_GSM(n, d/g, 1, 1)``;
    at ``g == d`` the two coincide.
    """

    def bound(n: int, g: float, d: float) -> float:
        if g <= 0 or d <= 0:
            raise ValueError(f"need positive g and d, got g={g}, d={d}")
        if g >= d:
            return d * t_gsm(n, 1.0, g / d, 1.0)
        return g * t_gsm(n, d / g, 1.0, 1.0)

    return bound
