"""The QSM simulator (Section 2.1).

Memory semantics: queue-read queue-write.  Concurrent reads of a cell all
receive the cell's pre-phase value; among concurrent writers to a cell, an
*arbitrary* one succeeds.  "Arbitrary" is adversarial from the algorithm's
point of view, so the simulator picks the winner with its seeded generator —
a correct algorithm must produce the right answer for every seed, and the
test suite exercises several.

Cost: ``max(m_op, g * m_rw, kappa)`` per phase.  With ``g == 1`` this is the
QRQW PRAM.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.cost import qsm_cost_terms, qsm_phase_cost
from repro.core.machine import Collided, Phase, SharedMemoryMachine
from repro.core.params import QSMParams
from repro.core.phase import PhaseRecord

__all__ = ["QSM"]


class QSM(SharedMemoryMachine):
    """Queuing Shared Memory machine."""

    model_label = "QSM"

    def __init__(
        self,
        params: Optional[QSMParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            winner_policy=winner_policy,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else QSMParams()

    def _phase_cost(self, record: PhaseRecord) -> float:
        return qsm_phase_cost(record, self.params)

    def _cost_terms(self, record: PhaseRecord):
        return qsm_cost_terms(record, self.params)

    def _resolve_writes(self, phase: Phase) -> None:
        if not phase._write_collision:
            # Every cell has exactly one writer — no arbitration needed, so
            # the whole phase lands through the bulk paths.
            self._apply_single_writes(phase)
            return
        memory = self._memory
        pick_winner = self._pick_winner
        for addr, entry in phase._writes.items():
            kind = type(entry)
            if kind is Collided:
                # Arbitrary-winner concurrent write: the value present at the
                # end of the phase is one of the written values, chosen by
                # the machine (or its installed winner policy), not the
                # algorithm.
                memory[addr] = entry[pick_winner(addr, entry)][1]
            else:
                memory[addr] = entry[1] if kind is tuple else entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QSM(g={self.params.g}, p={self.num_processors}, "
            f"phases={self.phase_count}, time={self.time})"
        )
