"""The s-QSM simulator (Section 2.1).

Identical memory semantics to the QSM; the only difference is the cost rule,
which charges the gap ``g`` for each unit of contention at memory as well as
for each access at a processor: ``max(m_op, g * m_rw, g * kappa)``.

The QRQW PRAM is the s-QSM with ``g == 1``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cost import sqsm_cost_terms, sqsm_phase_cost
from repro.core.params import SQSMParams
from repro.core.phase import PhaseRecord
from repro.core.qsm import QSM

__all__ = ["SQSM"]


class SQSM(QSM):
    """Symmetric Queuing Shared Memory machine.

    Subclasses :class:`~repro.core.qsm.QSM` because write resolution is
    identical; only the phase cost differs.
    """

    model_label = "s-QSM"

    def __init__(
        self,
        params: Optional[SQSMParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy=None,
        fault_plan=None,
        engine: Optional[str] = None,
    ) -> None:
        sqsm_params = params if params is not None else SQSMParams()
        # Initialise the QSM layer with a structurally compatible parameter
        # object, then override cost via self.params below.
        super().__init__(
            params=None,
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            winner_policy=winner_policy,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = sqsm_params  # type: ignore[assignment]

    def _phase_cost(self, record: PhaseRecord) -> float:
        return sqsm_phase_cost(record, self.params)

    def _cost_terms(self, record: PhaseRecord):
        return sqsm_cost_terms(record, self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SQSM(g={self.params.g}, p={self.num_processors}, "
            f"phases={self.phase_count}, time={self.time})"
        )
