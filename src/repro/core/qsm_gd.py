"""The QSM(g,d) model — the generalization behind Claim 2.2.

The QSM(g,d) (Gibbons-Matias-Ramachandran [10], Ramachandran [21]) carries
*two* gap parameters: ``g`` per shared-memory request issued at a processor
and ``d`` per request served at a memory cell.  Phase cost:

    ``max(m_op, g * m_rw, d * kappa)``.

Both of the paper's shared-memory models are instances:

* ``d = 1``  →  the QSM,
* ``d = g``  →  the s-QSM,

and Claim 2.2 translates GSM lower bounds to the QSM(g,d) with the
substitutions implemented in :mod:`repro.core.mapping`
(:func:`~repro.core.mapping.qsm_gd_time_from_gsm`).  This simulator lets
the `ABL-queue` ablation interpolate continuously between the queue and
symmetric-queue charging rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.phase import PhaseRecord
from repro.core.qsm import QSM

__all__ = ["QSMGDParams", "QSMGD"]


@dataclass(frozen=True)
class QSMGDParams:
    """Processor gap ``g`` and memory gap ``d``; both at least 1."""

    g: float = 1.0
    d: float = 1.0

    def __post_init__(self) -> None:
        from repro.core.params import _check_gap

        _check_gap("QSM(g,d) g", self.g)
        _check_gap("QSM(g,d) d", self.d)


def qsm_gd_phase_cost(record: PhaseRecord, params: QSMGDParams) -> float:
    """Phase cost ``max(m_op, g * m_rw, d * kappa)``."""
    return float(
        max(
            float(record.m_op),
            params.g * record.m_rw,
            params.d * record.kappa,
        )
    )


def qsm_gd_cost_terms(record: PhaseRecord, params: QSMGDParams):
    """The three QSM(g,d) charge terms: ``m_op``, ``g*m_rw``, ``d*kappa``.

    Every value is a ``float``: gap parameters may be ints, and a term like
    ``g * m_rw`` must not change type (int vs float) with the parameter
    spelling — dominant-term tie-breaking and JSONL round-trips are
    type-stable only when the terms are.
    """
    return {
        "m_op": float(record.m_op),
        "g*m_rw": float(params.g * record.m_rw),
        "d*kappa": float(params.d * record.kappa),
    }


class QSMGD(QSM):
    """QSM(g,d) machine: QSM memory semantics, two-gap cost rule."""

    model_label = "QSM(g,d)"

    def __init__(
        self,
        params: Optional[QSMGDParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy=None,
        fault_plan=None,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(
            params=None,
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            winner_policy=winner_policy,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else QSMGDParams()  # type: ignore[assignment]

    def _phase_cost(self, record: PhaseRecord) -> float:
        return qsm_gd_phase_cost(record, self.params)

    def _cost_terms(self, record: PhaseRecord):
        return qsm_gd_cost_terms(record, self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QSMGD(g={self.params.g}, d={self.params.d}, "
            f"phases={self.phase_count}, time={self.time})"
        )
