"""Detailed per-phase execution traces.

The cost formulas only need counts, but the lower-bound engines in
:mod:`repro.lowerbounds` need to know *which* cells each processor touched:
the degree-argument engine (Theorems 3.1 / 7.2) replays traces to maintain
its per-phase degree recurrence, and the Random Adversary inspects access
patterns to build its conflict graphs.  Machines record these traces when
constructed with ``record_trace=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

__all__ = ["PhaseTrace"]


@dataclass(frozen=True)
class PhaseTrace:
    """Who read and wrote what during one phase.

    Attributes
    ----------
    index:
        Phase number.
    reads:
        processor id -> tuple of addresses read.
    writes:
        processor id -> tuple of ``(address, value)`` pairs written.
    """

    index: int
    reads: Mapping[int, Tuple[int, ...]]
    writes: Mapping[int, Tuple[Tuple[int, Any], ...]]

    @classmethod
    def from_phase(cls, index: int, phase: "Phase") -> "PhaseTrace":  # noqa: F821
        reads: Dict[int, list] = {}
        for handle in phase._reads:
            block_addrs = getattr(handle, "addrs", None)
            if block_addrs is None:  # scalar ReadHandle
                reads.setdefault(handle.proc, []).append(handle.addr)
            else:  # BlockReadHandle
                reads.setdefault(handle.proc, []).extend(block_addrs)
        from repro.core.machine import Collided

        writes: Dict[int, list] = {}
        for addr, entry in phase._writes.items():
            kind = type(entry)
            if kind is Collided:
                for proc, value in entry:
                    writes.setdefault(proc, []).append((addr, value))
            elif kind is tuple:
                writes.setdefault(entry[0], []).append((addr, entry[1]))
            else:  # bare value from the bulk path; writer from block origins
                proc = phase._first_writer(addr)
                writes.setdefault(proc, []).append((addr, entry))
        return cls(
            index=index,
            reads={p: tuple(a) for p, a in reads.items()},
            writes={p: tuple(w) for p, w in writes.items()},
        )

    def cells_read(self) -> Tuple[int, ...]:
        """All distinct addresses read this phase, sorted."""
        out = set()
        for addrs in self.reads.values():
            out.update(addrs)
        return tuple(sorted(out))

    def cells_written(self) -> Tuple[int, ...]:
        """All distinct addresses written this phase, sorted."""
        out = set()
        for pairs in self.writes.values():
            out.update(addr for addr, _ in pairs)
        return tuple(sorted(out))

    # Per-address processor indices, built lazily on the first readers_of /
    # writers_of call and cached on the (frozen) instance.  Adversary
    # replays query every touched address of large traces; the old linear
    # membership scans per call made those replays quadratic in trace size.

    def _reader_index(self) -> Dict[int, Tuple[int, ...]]:
        index = self.__dict__.get("_readers_by_addr")
        if index is None:
            by_addr: Dict[int, set] = {}
            for proc, addrs in self.reads.items():
                for addr in addrs:
                    by_addr.setdefault(addr, set()).add(proc)
            index = {a: tuple(sorted(procs)) for a, procs in by_addr.items()}
            object.__setattr__(self, "_readers_by_addr", index)
        return index

    def _writer_index(self) -> Dict[int, Tuple[int, ...]]:
        index = self.__dict__.get("_writers_by_addr")
        if index is None:
            by_addr: Dict[int, set] = {}
            for proc, pairs in self.writes.items():
                for addr, _ in pairs:
                    by_addr.setdefault(addr, set()).add(proc)
            index = {a: tuple(sorted(procs)) for a, procs in by_addr.items()}
            object.__setattr__(self, "_writers_by_addr", index)
        return index

    def readers_of(self, addr: int) -> Tuple[int, ...]:
        """Processor ids that read ``addr`` this phase, sorted.  O(1) after
        the first call builds the per-address index."""
        return self._reader_index().get(addr, ())

    def writers_of(self, addr: int) -> Tuple[int, ...]:
        """Processor ids that wrote ``addr`` this phase, sorted.  O(1) after
        the first call builds the per-address index."""
        return self._writer_index().get(addr, ())
