"""Machine-parameter dataclasses for the four models of Section 2.

Every simulator takes one of these frozen dataclasses.  Validation happens at
construction so an invalid machine cannot be built; derived quantities used
by the cost formulas (``mu``/``lam`` on the GSM) are exposed as properties.

The two post-1998 models grown on the same substrate (``repro.models``)
keep their parameters here too: :class:`MPCParams` (per-machine local
memory ``s``) and :class:`PEMParams` (private cache ``M``, block size
``B``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "QSMParams",
    "SQSMParams",
    "GSMParams",
    "BSPParams",
    "MPCParams",
    "PEMParams",
]


def _check_gap(name: str, value) -> None:
    """A gap/latency parameter must be a finite real >= 1.

    NaN slips past a plain ``< 1`` comparison (every comparison with NaN is
    false) and infinity turns every downstream cost into ``inf``; both used
    to surface as arithmetic surprises deep in the cost formulas, so they
    are rejected at construction instead.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a real number >= 1, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")


@dataclass(frozen=True)
class QSMParams:
    """QSM gap parameter.

    The time cost of a phase with max contention ``kappa``, max per-processor
    local ops ``m_op`` and max per-processor read/write count ``m_rw`` is
    ``max(m_op, g * m_rw, kappa)``.  With ``g == 1`` the model is the QRQW
    PRAM of Gibbons, Matias & Ramachandran.

    ``unit_time_concurrent_reads`` selects the CRQW-style variant used in
    Theorem 3.1 and the matching Section 8 parity upper bound: read queues
    are not charged to contention (only write queues are), i.e. concurrent
    reads take unit time.
    """

    g: float = 1.0
    unit_time_concurrent_reads: bool = False

    def __post_init__(self) -> None:
        _check_gap("QSM gap parameter g", self.g)


@dataclass(frozen=True)
class SQSMParams:
    """s-QSM gap parameter.

    Identical to the QSM except contention is also charged the gap:
    phase cost is ``max(m_op, g * m_rw, g * kappa)``.
    """

    g: float = 1.0

    def __post_init__(self) -> None:
        _check_gap("s-QSM gap parameter g", self.g)


@dataclass(frozen=True)
class GSMParams:
    """GSM parameters ``(alpha, beta, gamma)`` from Section 2.2.

    A phase with max per-processor read/write count ``m_rw`` and max
    contention ``kappa`` consists of
    ``b = max(ceil(m_rw / alpha), ceil(kappa / beta))`` big-steps, each of
    duration ``mu = max(alpha, beta)``; the phase costs ``mu * b``.
    ``gamma`` is the number of inputs packed into each cell initially.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: int = 1

    def __post_init__(self) -> None:
        _check_gap("GSM alpha", self.alpha)
        _check_gap("GSM beta", self.beta)
        if isinstance(self.gamma, bool) or not isinstance(self.gamma, int):
            raise ValueError(f"GSM gamma must be an int >= 1, got {self.gamma!r}")
        if self.gamma < 1:
            raise ValueError(f"GSM gamma must be >= 1, got {self.gamma}")

    @property
    def mu(self) -> float:
        """Big-step duration ``mu = max(alpha, beta)``."""
        return max(self.alpha, self.beta)

    @property
    def lam(self) -> float:
        """``lambda = min(alpha, beta)`` (used in round definitions)."""
        return min(self.alpha, self.beta)


@dataclass(frozen=True)
class BSPParams:
    """BSP bandwidth gap ``g`` and latency ``L``.

    Superstep cost is ``max(w, g * h, L)`` where ``w`` is the max local work
    and ``h`` the max number of messages sent or received by any component.
    The paper assumes ``L >= g`` throughout; we enforce it.
    """

    g: float = 1.0
    L: float = 1.0

    def __post_init__(self) -> None:
        _check_gap("BSP g", self.g)
        _check_gap("BSP L", self.L)
        if self.L < self.g:
            raise ValueError(
                f"paper assumes L >= g throughout; got L={self.L} < g={self.g}"
            )


def _check_count(name: str, value) -> None:
    """A count parameter must be a true int >= 1 (bool is rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an int >= 1, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")


@dataclass(frozen=True)
class MPCParams:
    """MPC per-machine local memory ``s`` (words per round).

    In the Massively Parallel Computation model each of ``p`` machines
    holds ``s = n^epsilon`` words and a round exchanges at most ``s``
    words per machine.  The simulator charges a round routing an
    h-relation ``max(1, h / s)`` — an exchange that fits local memory is
    one round, one exceeding it tiles over ``ceil-like h/s`` delivery
    slots — so ``machine.time`` is the *effective* (capacity-respecting)
    round count the Charikar–Ma–Tan bounds are stated against.
    """

    s: float = 4.0

    def __post_init__(self) -> None:
        _check_gap("MPC local memory s", self.s)


@dataclass(frozen=True)
class PEMParams:
    """PEM private cache size ``M`` and block size ``B`` (in words).

    In the Parallel External Memory model of Arge, Goodrich, Nelson &
    Sitchinava each of ``p`` processors owns a private cache of ``M``
    words and moves data to/from shared memory in blocks of ``B`` words;
    the measure is parallel I/O complexity.  The paper's regime (and the
    Jacob–Lieber–Sitchinava bounds) assumes ``M >= B``; we enforce it.
    """

    M: int = 64
    B: int = 8

    def __post_init__(self) -> None:
        _check_count("PEM cache size M", self.M)
        _check_count("PEM block size B", self.B)
        if self.M < self.B:
            raise ValueError(
                f"PEM assumes M >= B (a cache holds at least one block); "
                f"got M={self.M} < B={self.B}"
            )
