"""Machine-parameter dataclasses for the four models of Section 2.

Every simulator takes one of these frozen dataclasses.  Validation happens at
construction so an invalid machine cannot be built; derived quantities used
by the cost formulas (``mu``/``lam`` on the GSM) are exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QSMParams", "SQSMParams", "GSMParams", "BSPParams"]


@dataclass(frozen=True)
class QSMParams:
    """QSM gap parameter.

    The time cost of a phase with max contention ``kappa``, max per-processor
    local ops ``m_op`` and max per-processor read/write count ``m_rw`` is
    ``max(m_op, g * m_rw, kappa)``.  With ``g == 1`` the model is the QRQW
    PRAM of Gibbons, Matias & Ramachandran.

    ``unit_time_concurrent_reads`` selects the CRQW-style variant used in
    Theorem 3.1 and the matching Section 8 parity upper bound: read queues
    are not charged to contention (only write queues are), i.e. concurrent
    reads take unit time.
    """

    g: float = 1.0
    unit_time_concurrent_reads: bool = False

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError(f"QSM gap parameter must be >= 1, got {self.g}")


@dataclass(frozen=True)
class SQSMParams:
    """s-QSM gap parameter.

    Identical to the QSM except contention is also charged the gap:
    phase cost is ``max(m_op, g * m_rw, g * kappa)``.
    """

    g: float = 1.0

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError(f"s-QSM gap parameter must be >= 1, got {self.g}")


@dataclass(frozen=True)
class GSMParams:
    """GSM parameters ``(alpha, beta, gamma)`` from Section 2.2.

    A phase with max per-processor read/write count ``m_rw`` and max
    contention ``kappa`` consists of
    ``b = max(ceil(m_rw / alpha), ceil(kappa / beta))`` big-steps, each of
    duration ``mu = max(alpha, beta)``; the phase costs ``mu * b``.
    ``gamma`` is the number of inputs packed into each cell initially.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: int = 1

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError(f"GSM alpha must be >= 1, got {self.alpha}")
        if self.beta < 1:
            raise ValueError(f"GSM beta must be >= 1, got {self.beta}")
        if self.gamma < 1:
            raise ValueError(f"GSM gamma must be >= 1, got {self.gamma}")

    @property
    def mu(self) -> float:
        """Big-step duration ``mu = max(alpha, beta)``."""
        return max(self.alpha, self.beta)

    @property
    def lam(self) -> float:
        """``lambda = min(alpha, beta)`` (used in round definitions)."""
        return min(self.alpha, self.beta)


@dataclass(frozen=True)
class BSPParams:
    """BSP bandwidth gap ``g`` and latency ``L``.

    Superstep cost is ``max(w, g * h, L)`` where ``w`` is the max local work
    and ``h`` the max number of messages sent or received by any component.
    The paper assumes ``L >= g`` throughout; we enforce it.
    """

    g: float = 1.0
    L: float = 1.0

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError(f"BSP g must be >= 1, got {self.g}")
        if self.L < self.g:
            raise ValueError(
                f"paper assumes L >= g throughout; got L={self.L} < g={self.g}"
            )
