"""Bulk-synchronous shared-memory machine base (QSM / s-QSM / GSM).

Algorithms drive a machine in orchestrator style: the algorithm code plays
every processor, issuing reads, writes and local-op charges through a
:class:`Phase` context manager.  The machine enforces the model's semantics:

* **Read latency** — a value read in phase *t* is only available after the
  phase commits (returned through a :class:`ReadHandle` that stays sealed
  until then), matching "the value returned by a shared-memory read can only
  be used in a subsequent phase".
* **No concurrent read+write** — a location may be read by many processors
  or written by many processors in one phase, but not both; violations raise
  :class:`MemoryConflictError`.
* **Queue accounting** — per-cell reader/writer queue lengths feed the
  contention term ``kappa`` of the cost formulas.
* **Write resolution** — model-specific: the QSM/s-QSM pick one arbitrary
  winner per cell; the GSM's strong queuing merges all written values into
  the cell (see subclasses).

Costs are charged per phase by the subclass's cost formula and accumulated
in ``machine.time``; the full phase history is kept as
:class:`~repro.core.phase.PhaseRecord` objects for the round auditor and the
lower-bound engines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.phase import PhaseRecord
from repro.util.seeding import derive_rng

__all__ = [
    "MemoryConflictError",
    "PhaseClosedError",
    "ReadHandle",
    "Phase",
    "SharedMemoryMachine",
]


class MemoryConflictError(RuntimeError):
    """A location was both read and written in the same phase."""


class PhaseClosedError(RuntimeError):
    """An operation was issued against a phase that has already committed."""


class ReadHandle:
    """Deferred result of a shared-memory read.

    The handle is *sealed* while its phase is open; accessing ``.value``
    raises then.  After the phase commits the handle resolves to the value
    the cell held at the start of the phase.
    """

    __slots__ = ("proc", "addr", "_value", "_resolved")

    def __init__(self, proc: int, addr: int) -> None:
        self.proc = proc
        self.addr = addr
        self._value: Any = None
        self._resolved = False

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise PhaseClosedError(
                "read value used before its phase committed: the QSM/GSM read "
                "rule only makes values available in a subsequent phase"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = repr(self._value) if self._resolved else "<sealed>"
        return f"ReadHandle(proc={self.proc}, addr={self.addr}, value={state})"


class Phase:
    """One open phase of a shared-memory machine.

    Use via ``with machine.phase() as ph:``; operations are recorded and the
    phase commits (applying writes, resolving reads, charging cost) when the
    context exits without an exception.
    """

    def __init__(self, machine: "SharedMemoryMachine") -> None:
        self._machine = machine
        self._open = True
        self._reads: List[ReadHandle] = []
        # addr -> list of (proc, value) in issue order
        self._writes: Dict[int, List[Tuple[int, Any]]] = {}
        self._read_queue: Dict[int, int] = {}
        self._reads_per_proc: Dict[int, int] = {}
        self._writes_per_proc: Dict[int, int] = {}
        self._ops_per_proc: Dict[int, int] = {}

    # -- operations -------------------------------------------------------

    def read(self, proc: int, addr: int) -> ReadHandle:
        """Processor ``proc`` requests the contents of cell ``addr``.

        Returns a sealed :class:`ReadHandle`; the value is available after
        the phase commits.
        """
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if addr in self._writes:
            raise MemoryConflictError(
                f"cell {addr} is being written this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        handle = ReadHandle(proc, addr)
        self._reads.append(handle)
        self._read_queue[addr] = self._read_queue.get(addr, 0) + 1
        self._reads_per_proc[proc] = self._reads_per_proc.get(proc, 0) + 1
        return handle

    def write(self, proc: int, addr: int, value: Any) -> None:
        """Processor ``proc`` writes ``value`` to cell ``addr``.

        ``value`` must be a concrete value computed from state available
        before this phase.  Passing a sealed :class:`ReadHandle` from the
        current phase raises; resolved handles from earlier phases are
        unwrapped for convenience.
        """
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if isinstance(value, ReadHandle):
            if not value.resolved:
                raise PhaseClosedError(
                    "attempted to write a value read in the same phase; reads "
                    "only deliver in a subsequent phase"
                )
            value = value.value
        if addr in self._read_queue:
            raise MemoryConflictError(
                f"cell {addr} is being read this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        self._writes.setdefault(addr, []).append((proc, value))
        self._writes_per_proc[proc] = self._writes_per_proc.get(proc, 0) + 1

    def local(self, proc: int, ops: int = 1) -> None:
        """Charge ``ops`` units of local RAM computation to processor ``proc``."""
        self._check_open()
        self._machine._check_proc(proc)
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self._ops_per_proc[proc] = self._ops_per_proc.get(proc, 0) + ops

    # -- commit machinery --------------------------------------------------

    def _check_open(self) -> None:
        if not self._open:
            raise PhaseClosedError("phase already committed")

    def _build_record(self, index: int) -> PhaseRecord:
        write_queue = {addr: len(entries) for addr, entries in self._writes.items()}
        return PhaseRecord(
            index=index,
            reads_per_proc=dict(self._reads_per_proc),
            writes_per_proc=dict(self._writes_per_proc),
            ops_per_proc=dict(self._ops_per_proc),
            read_queue=dict(self._read_queue),
            write_queue=write_queue,
        )

    def __enter__(self) -> "Phase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                self._machine._commit(self)
        finally:
            # Whether the phase aborted or the commit itself raised (e.g. a
            # PRAM concurrency violation), release the machine so callers
            # can continue after asserting on the error.
            self._machine._phase_open = False
            self._open = False
        return False


class SharedMemoryMachine:
    """Base class for the QSM, s-QSM and GSM simulators.

    Parameters
    ----------
    num_processors:
        Upper bound on processor ids, or ``None`` for the paper's
        "unlimited number of processors" setting.
    memory_size:
        Upper bound on addresses, or ``None`` for unbounded memory.
    seed:
        Seed for the machine's internal generator.  The QSM/s-QSM use it to
        pick the "arbitrary" winner among concurrent writers, so a seed pins
        an entire execution.
    record_trace:
        When true, the machine additionally stores per-phase read/write
        address detail (see :mod:`repro.core.trace`) for the lower-bound
        engines.  Off by default because it is memory-heavy on large runs.
    """

    def __init__(
        self,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
    ) -> None:
        if num_processors is not None and num_processors < 1:
            raise ValueError(f"num_processors must be >= 1, got {num_processors}")
        if memory_size is not None and memory_size < 1:
            raise ValueError(f"memory_size must be >= 1, got {memory_size}")
        self.num_processors = num_processors
        self.memory_size = memory_size
        self._memory: Dict[int, Any] = {}
        self._rng = derive_rng(seed)
        self.record_trace = record_trace
        self.record_snapshots = record_snapshots
        self.history: List[PhaseRecord] = []
        self.phase_costs: List[float] = []
        self.traces: List["PhaseTrace"] = []
        self.snapshots: List[Dict[int, Any]] = []
        self.time: float = 0.0
        self._phase_open = False

    # -- subclass hooks ----------------------------------------------------

    def _phase_cost(self, record: PhaseRecord) -> float:
        raise NotImplementedError

    def _resolve_writes(self, writes: Dict[int, List[Tuple[int, Any]]]) -> None:
        """Apply this phase's writes to memory (model-specific)."""
        raise NotImplementedError

    # -- public API ---------------------------------------------------------

    def phase(self) -> Phase:
        """Open a new phase.  Phases may not be nested."""
        if self._phase_open:
            raise PhaseClosedError("a phase is already open; phases cannot nest")
        self._phase_open = True
        return Phase(self)

    def peek(self, addr: int) -> Any:
        """Read committed memory without charging cost (test/verifier use only)."""
        self._check_addr(addr)
        return self._memory.get(addr)

    def poke(self, addr: int, value: Any) -> None:
        """Set committed memory without charging cost (input loading)."""
        self._check_addr(addr)
        self._memory[addr] = value

    def load(self, values: Sequence[Any], base: int = 0) -> None:
        """Place ``values`` into consecutive cells starting at ``base`` for free.

        Input placement is not charged in any of the models; the input is
        assumed to reside in shared memory (or be distributed, on the BSP)
        at time zero.
        """
        for offset, value in enumerate(values):
            self.poke(base + offset, value)

    @property
    def phase_count(self) -> int:
        return len(self.history)

    @property
    def memory_in_use(self) -> int:
        """Number of distinct cells ever written (footprint measure)."""
        return len(self._memory)

    def next_free_address(self) -> int:
        """One past the highest address ever written.

        Algorithms that lay out scratch arrays start their allocators here
        so that several algorithm invocations can share one machine without
        address collisions.
        """
        if not self._memory:
            return 0
        return max(self._memory) + 1

    # -- internals -----------------------------------------------------------

    def _check_proc(self, proc: int) -> None:
        # Hot path: one exact-type test covers the common case (profiling
        # showed per-operation validation dominating large sweeps; `type is
        # int` also rejects bool, unlike isinstance).
        if type(proc) is not int:
            raise TypeError(f"processor id must be an int, got {proc!r}")
        if proc < 0:
            raise ValueError(f"processor id must be non-negative, got {proc}")
        if self.num_processors is not None and proc >= self.num_processors:
            raise ValueError(
                f"processor id {proc} out of range for machine with "
                f"{self.num_processors} processors"
            )

    def _check_addr(self, addr: int) -> None:
        if type(addr) is not int:
            raise TypeError(f"address must be an int, got {addr!r}")
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        if self.memory_size is not None and addr >= self.memory_size:
            raise ValueError(
                f"address {addr} out of range for memory of size {self.memory_size}"
            )

    def _commit(self, phase: Phase) -> None:
        record = phase._build_record(len(self.history))
        cost = self._phase_cost(record)
        # Resolve reads against pre-phase memory, then apply writes.
        for handle in phase._reads:
            handle._resolve(self._read_cell(handle.addr))
        self._resolve_writes(phase._writes)
        self.history.append(record)
        self.phase_costs.append(cost)
        self.time += cost
        if self.record_trace:
            from repro.core.trace import PhaseTrace

            self.traces.append(PhaseTrace.from_phase(record.index, phase))
        if self.record_snapshots:
            self.snapshots.append(dict(self._memory))
        self._phase_open = False

    def _read_cell(self, addr: int) -> Any:
        """Value delivered by a read of ``addr`` (subclasses may override)."""
        return self._memory.get(addr)
