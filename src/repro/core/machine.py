"""Bulk-synchronous shared-memory machine base (QSM / s-QSM / GSM).

Algorithms drive a machine in orchestrator style: the algorithm code plays
every processor, issuing reads, writes and local-op charges through a
:class:`Phase` context manager.  The machine enforces the model's semantics:

* **Read latency** — a value read in phase *t* is only available after the
  phase commits (returned through a :class:`ReadHandle` that stays sealed
  until then), matching "the value returned by a shared-memory read can only
  be used in a subsequent phase".
* **No concurrent read+write** — a location may be read by many processors
  or written by many processors in one phase, but not both; violations raise
  :class:`MemoryConflictError`.
* **Queue accounting** — per-cell queue lengths count the number of
  *distinct processors* accessing the cell (Section 2.1's contention), and
  feed the contention term ``kappa`` of the cost formulas.  A processor
  issuing two reads of one cell contributes 1 to that cell's queue (but
  still 2 to its own ``m_rw`` request count).
* **Bulk operations** — :meth:`Phase.read_block` and
  :meth:`Phase.write_block` are semantically identical to loops of
  :meth:`Phase.read` / :meth:`Phase.write` but update the counters with
  aggregate operations, so the per-operation Python overhead is paid once
  per block instead of once per cell (see ``benchmarks/bench_phase_engine``).
* **Write resolution** — model-specific: the QSM/s-QSM pick one arbitrary
  winner per cell; the GSM's strong queuing merges all written values into
  the cell (see subclasses).

Costs are charged per phase by the subclass's cost formula and accumulated
in ``machine.time``; the full phase history is kept as
:class:`~repro.core.phase.PhaseRecord` objects for the round auditor and the
lower-bound engines.
"""

from __future__ import annotations

from itertools import repeat
from operator import itemgetter
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.phase import PhaseRecord
from repro.obs import metrics as _metrics
from repro.util.seeding import derive_rng

__all__ = [
    "MemoryConflictError",
    "PhaseClosedError",
    "ReadHandle",
    "BlockReadHandle",
    "Phase",
    "SharedMemoryMachine",
    "Collided",
    "WriteEntry",
]


class Collided(list):
    """Pending writes of one cell with >= 2 writers: ``(proc, value)`` pairs
    in issue order.  A dedicated type so entry dispatch is an exact-type
    check that can never be confused with a user value that happens to be a
    list."""

    __slots__ = ()


# One cell's pending writes, discriminated by exact type:
#
# * ``Collided``         — two or more writes, as ``(proc, value)`` pairs in
#                          issue order;
# * ``tuple``            — exactly one write issued through the scalar path
#                          (or a block carrying tuple-like values), stored as
#                          ``(proc, value)``;
# * anything else        — exactly one write issued through the bulk path,
#                          stored as the bare value.  The writing processor
#                          is recorded once per block in
#                          ``Phase._block_origins`` and only looked up on
#                          the rare paths that need it (collision promotion,
#                          trace recording).
#
# The bare-value form is what makes ``write_block`` allocation-free per
# cell; tuple-like values automatically take the explicit ``(proc, value)``
# form, so the discrimination is never ambiguous.
WriteEntry = Union[Any, Tuple[int, Any], Collided]


class MemoryConflictError(RuntimeError):
    """A location was both read and written in the same phase."""


class PhaseClosedError(RuntimeError):
    """An operation was issued against a phase that has already committed."""


class ReadHandle:
    """Deferred result of a shared-memory read.

    The handle is *sealed* while its phase is open; accessing ``.value``
    raises then.  After the phase commits the handle resolves to the value
    the cell held at the start of the phase.
    """

    __slots__ = ("proc", "addr", "_value", "_resolved")

    def __init__(self, proc: int, addr: int) -> None:
        self.proc = proc
        self.addr = addr
        self._value: Any = None
        self._resolved = False

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise PhaseClosedError(
                "read value used before its phase committed: the QSM/GSM read "
                "rule only makes values available in a subsequent phase"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = repr(self._value) if self._resolved else "<sealed>"
        return f"ReadHandle(proc={self.proc}, addr={self.addr}, value={state})"


# C-callable isinstance check: lets bulk paths scan a value tuple for
# handles via any(map(...)) without per-item bytecode.
_is_read_handle = ReadHandle.__instancecheck__


class BlockReadHandle:
    """Deferred result of a bulk shared-memory read (:meth:`Phase.read_block`).

    Sealed while its phase is open; after the phase commits ``.values`` is
    the list of values the cells held at the start of the phase, in the
    order the addresses were requested.
    """

    __slots__ = ("proc", "addrs", "_values", "_resolved")

    def __init__(self, proc: int, addrs: Tuple[int, ...]) -> None:
        self.proc = proc
        self.addrs = addrs
        self._values: Optional[List[Any]] = None
        self._resolved = False

    def _resolve(self, values: List[Any]) -> None:
        self._values = values
        self._resolved = True

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def values(self) -> List[Any]:
        if not self._resolved:
            raise PhaseClosedError(
                "block read values used before their phase committed: the "
                "QSM/GSM read rule only makes values available in a "
                "subsequent phase"
            )
        return list(self._values)

    def __len__(self) -> int:
        return len(self.addrs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = repr(self._values) if self._resolved else "<sealed>"
        return f"BlockReadHandle(proc={self.proc}, addrs={self.addrs!r}, values={state})"


# Value types that cannot be stored in the bare-entry form: exact tuples and
# Collided would be indistinguishable from the bookkeeping forms, and handles
# need the unwrap/seal check.  (Exact types only — a namedtuple value lands
# bare and dispatches as bare, consistently.)
_NON_PLAIN_TYPES = (tuple, Collided, ReadHandle, BlockReadHandle)

# (proc, value) -> value, at C speed, for bulk commit of tuple entries.
_value_of = itemgetter(1)


class Phase:
    """One open phase of a shared-memory machine.

    Use via ``with machine.phase() as ph:``; operations are recorded and the
    phase commits (applying writes, resolving reads, charging cost) when the
    context exits without an exception.
    """

    def __init__(self, machine: "SharedMemoryMachine") -> None:
        self._machine = machine
        self._open = True
        # Scalar ReadHandles and BlockReadHandles, in issue order.
        self._reads: List[Any] = []
        # addr -> pending writes (see WriteEntry for the three entry kinds).
        self._writes: Dict[int, WriteEntry] = {}
        # (proc, addrs) per bulk block that landed bare values; consulted by
        # _first_writer() on the rare paths that need a bare entry's writer.
        self._block_origins: List[Tuple[int, Sequence[int]]] = []
        # Entry-kind summary flags; while _write_collision is False, commit
        # and record building take C-level bulk paths, and the other two
        # pick the right bulk resolver.
        self._write_collision = False  # any Collided entry
        self._has_plain = False  # any bare-value entry (bulk path)
        self._has_pairs = False  # any (proc, value) entry (scalar path)
        # Interval hull of all written addresses this phase.  A block whose
        # addresses lie wholly outside [lo, hi] cannot revisit a cell, so
        # the bulk write path skips the per-address disjointness probe; the
        # hull also gives the commit its high-water mark without a max()
        # over all keys.
        self._write_lo: Any = float("inf")
        self._write_hi: int = -1
        # addr -> set of distinct reading processors (Section 2.1 contention)
        self._readers: Dict[int, set] = {}
        self._reads_per_proc: Dict[int, int] = {}
        self._writes_per_proc: Dict[int, int] = {}
        self._ops_per_proc: Dict[int, int] = {}

    # -- operations -------------------------------------------------------

    def read(self, proc: int, addr: int) -> ReadHandle:
        """Processor ``proc`` requests the contents of cell ``addr``.

        Returns a sealed :class:`ReadHandle`; the value is available after
        the phase commits.
        """
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if addr in self._writes:
            raise MemoryConflictError(
                f"cell {addr} is being written this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        handle = ReadHandle(proc, addr)
        self._reads.append(handle)
        readers = self._readers.get(addr)
        if readers is None:
            self._readers[addr] = {proc}
        else:
            readers.add(proc)
        self._reads_per_proc[proc] = self._reads_per_proc.get(proc, 0) + 1
        return handle

    def read_block(self, proc: int, addrs: Sequence[int]) -> BlockReadHandle:
        """Processor ``proc`` requests the contents of all cells in ``addrs``.

        Semantically identical to ``[ph.read(proc, a) for a in addrs]`` but
        the per-processor and per-cell counters are updated with aggregate
        operations, so large blocks avoid the per-operation bookkeeping that
        dominates scalar reads.  Returns a sealed :class:`BlockReadHandle`
        whose ``.values`` resolves to the list of cell values (request
        order) after the phase commits.  Duplicate addresses are allowed
        and count once toward each cell's contention (the processor set),
        but each request counts toward ``m_rw``.
        """
        self._check_open()
        self._machine._check_proc(proc)
        addr_tuple = tuple(addrs)
        handle = BlockReadHandle(proc, addr_tuple)
        if not addr_tuple:
            handle._resolve([])
            return handle
        # Aggregate validation: one type pass, then min/max bounds checks.
        for a in addr_tuple:
            if type(a) is not int:
                raise TypeError(f"address must be an int, got {a!r}")
        if min(addr_tuple) < 0:
            raise ValueError(
                f"address must be non-negative, got {min(addr_tuple)}"
            )
        mem_size = self._machine.memory_size
        if mem_size is not None and max(addr_tuple) >= mem_size:
            raise ValueError(
                f"address {max(addr_tuple)} out of range for memory of size {mem_size}"
            )
        writes = self._writes
        if writes:
            for a in addr_tuple:
                if a in writes:
                    raise MemoryConflictError(
                        f"cell {a} is being written this phase; concurrent read "
                        f"and write to one location in a phase is forbidden"
                    )
        readers = self._readers
        for a in addr_tuple:
            procs = readers.get(a)
            if procs is None:
                readers[a] = {proc}
            else:
                procs.add(proc)
        self._reads_per_proc[proc] = (
            self._reads_per_proc.get(proc, 0) + len(addr_tuple)
        )
        self._reads.append(handle)
        return handle

    def write(self, proc: int, addr: int, value: Any) -> None:
        """Processor ``proc`` writes ``value`` to cell ``addr``.

        ``value`` must be a concrete value computed from state available
        before this phase.  Passing a sealed :class:`ReadHandle` from the
        current phase raises; resolved handles from earlier phases are
        unwrapped for convenience.
        """
        self._check_open()
        self._machine._check_proc(proc)
        self._machine._check_addr(addr)
        if isinstance(value, ReadHandle):
            if not value.resolved:
                raise PhaseClosedError(
                    "attempted to write a value read in the same phase; reads "
                    "only deliver in a subsequent phase"
                )
            value = value.value
        if addr in self._readers:
            raise MemoryConflictError(
                f"cell {addr} is being read this phase; concurrent read and "
                f"write to one location in a phase is forbidden"
            )
        writes = self._writes
        entry = writes.get(addr)
        if entry is None:
            writes[addr] = (proc, value)
        elif type(entry) is Collided:
            entry.append((proc, value))
        else:
            first = entry if type(entry) is tuple else (
                self._first_writer(addr), entry
            )
            writes[addr] = Collided((first, (proc, value)))
            self._write_collision = True
        self._has_pairs = True
        if addr > self._write_hi:
            self._write_hi = addr
        if addr < self._write_lo:
            self._write_lo = addr
        self._writes_per_proc[proc] = self._writes_per_proc.get(proc, 0) + 1

    def write_block(self, proc: int, items: Sequence[Tuple[int, Any]]) -> None:
        """Processor ``proc`` writes every ``(addr, value)`` pair in ``items``.

        Semantically identical to ``for a, v in items: ph.write(proc, a, v)``
        (including on error: a bad pair aborts the phase at that pair, just
        as the scalar loop would) but the per-pair bookkeeping is a single
        aggregate pass.  Values follow the scalar rule: sealed same-phase
        :class:`ReadHandle` values raise, resolved handles from earlier
        phases are unwrapped.
        """
        self._check_open()
        self._machine._check_proc(proc)
        pairs = items if type(items) is list else list(items)
        if not pairs:
            return
        # Aggregate validation at C speed; every failure re-scans on a cold
        # path for a precise per-item error.  strict=True makes mixed-arity
        # rows raise instead of silently truncating to the shortest row.
        try:
            addrs, values = zip(*pairs, strict=True)
        except (TypeError, ValueError):
            addrs = values = ()
        if len(addrs) != len(pairs):
            # Malformed rows (wrong arity); the scalar path reports them.
            for addr, value in pairs:
                self.write(proc, addr, value)
            return
        if not set(map(type, addrs)) <= {int}:
            for a in addrs:
                if type(a) is not int:
                    raise TypeError(f"address must be an int, got {a!r}")
        lo = min(addrs)
        hi = max(addrs)
        if lo < 0:
            raise ValueError(f"address must be non-negative, got {lo}")
        mem_size = self._machine.memory_size
        if mem_size is not None and hi >= mem_size:
            raise ValueError(
                f"address {hi} out of range for memory of size {mem_size}"
            )
        readers = self._readers
        if readers and not readers.keys().isdisjoint(addrs):
            for a in addrs:
                if a in readers:
                    raise MemoryConflictError(
                        f"cell {a} is being read this phase; concurrent read "
                        f"and write to one location in a phase is forbidden"
                    )
        # Values whose exact type is tuple-like or a handle cannot use the
        # bare-value entry form (see WriteEntry); everything else can.
        plain = set(map(type, values)).isdisjoint(_NON_PLAIN_TYPES)
        if not plain and any(map(_is_read_handle, values)):
            unwrapped: List[Any] = []
            for value in values:
                if isinstance(value, ReadHandle):
                    if not value.resolved:
                        raise PhaseClosedError(
                            "attempted to write a value read in the same "
                            "phase; reads only deliver in a subsequent phase"
                        )
                    value = value.value
                unwrapped.append(value)
            values = unwrapped
        writes = self._writes
        if plain and (
            not writes
            or lo > self._write_hi
            or hi < self._write_lo
            or writes.keys().isdisjoint(addrs)
        ):
            # Outside the interval hull of earlier writes (or provably
            # disjoint from them): land the whole block as bare-value
            # entries in one C-level pass — no per-cell allocation at all.
            # Duplicates *within* the block would clobber each other in the
            # bulk update, so detect them from the key-count delta and redo
            # the block through the per-item path (all its keys are new, so
            # the rollback is exact).
            before = len(writes)
            writes.update(zip(addrs, values))
            if len(writes) - before != len(addrs):
                for a in addrs:
                    writes.pop(a, None)
                self._insert_writes(proc, addrs, values)
            else:
                self._has_plain = True
                self._block_origins.append((proc, addrs))
        else:
            self._insert_writes(proc, addrs, values)
        if hi > self._write_hi:
            self._write_hi = hi
        if lo < self._write_lo:
            self._write_lo = lo
        self._writes_per_proc[proc] = (
            self._writes_per_proc.get(proc, 0) + len(addrs)
        )

    def write_cols(self, proc: int, addrs: Sequence[int], values: Sequence[Any]) -> None:
        """Processor ``proc`` writes parallel columns: ``values[i]`` into
        ``addrs[i]``.

        Column form of :meth:`write_block` — semantically identical to
        ``ph.write_block(proc, list(zip(addrs, values)))`` but without
        building the pair list, and the form the vector engine consumes
        without unzipping.  The columns must have equal length.
        """
        self._check_open()
        self._machine._check_proc(proc)
        if len(addrs) != len(values):
            raise ValueError(
                f"write_cols needs parallel columns of equal length, got "
                f"{len(addrs)} addresses and {len(values)} values"
            )
        self.write_block(proc, list(zip(addrs, values)))

    def _insert_writes(self, proc: int, addrs: Sequence[int], values: Sequence[Any]) -> None:
        """Per-item write insertion (the path that handles colliding cells)."""
        writes = self._writes
        writes_get = writes.get
        collision = self._write_collision
        for addr, value in zip(addrs, values):
            entry = writes_get(addr)
            if entry is None:
                writes[addr] = (proc, value)
            elif type(entry) is Collided:
                entry.append((proc, value))
            else:
                first = entry if type(entry) is tuple else (
                    self._first_writer(addr), entry
                )
                writes[addr] = Collided((first, (proc, value)))
                collision = True
        self._write_collision = collision
        self._has_pairs = True

    def _first_writer(self, addr: int) -> int:
        """Writer of a bare-value entry, from the per-block origin records."""
        for proc, addrs in reversed(self._block_origins):
            if addr in addrs:
                return proc
        raise AssertionError(f"no origin recorded for bare write to cell {addr}")

    def local(self, proc: int, ops: int = 1) -> None:
        """Charge ``ops`` units of local RAM computation to processor ``proc``."""
        self._check_open()
        self._machine._check_proc(proc)
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self._ops_per_proc[proc] = self._ops_per_proc.get(proc, 0) + ops

    # -- commit machinery --------------------------------------------------

    def _check_open(self) -> None:
        if not self._open:
            raise PhaseClosedError("phase already committed")

    def _scalar_read_queue(self) -> Dict[int, int]:
        # Contention counts *distinct processors* per cell (Section 2.1):
        # duplicate requests by one processor count once toward kappa (they
        # still count per-request toward the processor's m_rw).  When the
        # total request count equals the number of touched cells, every
        # queue has length one and the dict builds in a single C-level pass.
        readers = self._readers
        if readers and sum(self._reads_per_proc.values()) == len(readers):
            return dict.fromkeys(readers, 1)
        return {addr: len(procs) for addr, procs in readers.items()}

    def _dict_write_queue(self) -> Dict[int, int]:
        writes = self._writes
        if not self._write_collision:
            return dict.fromkeys(writes, 1)
        return {
            addr: (
                len({p for p, _ in entry})
                if type(entry) is Collided
                else 1
            )
            for addr, entry in writes.items()
        }

    def _build_record(self, index: int) -> PhaseRecord:
        read_queue = self._scalar_read_queue()
        write_queue = self._dict_write_queue()
        return PhaseRecord(
            index=index,
            reads_per_proc=dict(self._reads_per_proc),
            writes_per_proc=dict(self._writes_per_proc),
            ops_per_proc=dict(self._ops_per_proc),
            read_queue=read_queue,
            write_queue=write_queue,
        )

    def _resolve_reads(self, machine: "SharedMemoryMachine") -> None:
        """Resolve every read handle against pre-phase memory (engine hook)."""
        read_cell = machine._read_cell
        for handle in self._reads:
            if type(handle) is ReadHandle:
                handle._resolve(read_cell(handle.addr))
            else:  # BlockReadHandle
                handle._resolve([read_cell(a) for a in handle.addrs])

    def _apply_writes(self, machine: "SharedMemoryMachine") -> None:
        """Apply this phase's writes to memory (engine hook)."""
        machine._resolve_writes(self)

    def __enter__(self) -> "Phase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                self._machine._commit(self)
        finally:
            # Whether the phase aborted or the commit itself raised (e.g. a
            # PRAM concurrency violation), release the machine so callers
            # can continue after asserting on the error.
            self._machine._phase_open = False
            self._open = False
        return False


class SharedMemoryMachine:
    """Base class for the QSM, s-QSM and GSM simulators.

    Parameters
    ----------
    num_processors:
        Upper bound on processor ids, or ``None`` for the paper's
        "unlimited number of processors" setting.
    memory_size:
        Upper bound on addresses, or ``None`` for unbounded memory.
    seed:
        Seed for the machine's internal generator.  The QSM/s-QSM use it to
        pick the "arbitrary" winner among concurrent writers, so a seed pins
        an entire execution.
    winner_policy:
        How "arbitrary"-winner write collisions resolve: ``None`` (the
        machine's own seeded generator — the historical behaviour), a name
        (``"seeded"``/``"first"``/``"last"``) or a
        :class:`~repro.faults.winners.WinnerPolicy` instance.  The paper's
        semantics make *any* resolution legal, so a correct algorithm's
        output must not depend on this choice;
        :mod:`repro.faults.adversary` searches for violations.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Scheduled
        ``corrupt`` faults fire after the matching phase commits; every
        firing is appended to ``machine.fault_events`` (and to the phase's
        cost record when ``record_costs=True``).
    record_trace:
        When true, the machine additionally stores per-phase read/write
        address detail (see :mod:`repro.core.trace`) for the lower-bound
        engines.  Off by default because it is memory-heavy on large runs.
    record_costs:
        When true, every committed phase also appends a
        :class:`~repro.obs.records.PhaseCostRecord` (per-term charge
        values, the dominant term, contention histogram, per-processor op
        counts, wall time) to ``machine.cost_records``.  Zero-cost when
        off: the operation-issue paths are untouched and the commit pays
        a single predicate test.
    engine:
        ``"reference"`` (pure-Python, the default), ``"vector"`` (numpy
        batch engine — see :mod:`repro.core.engine_vector`), or ``None``
        to consult ``$REPRO_ENGINE``.  Both engines are bit-equal; the
        vector engine falls back to reference (with a one-time
        ``RuntimeWarning``) when numpy is unavailable.
    """

    #: Model tag used in cost records / result tables; subclasses override.
    model_label = "shared-memory"

    #: Whether a single writer's value is stored as-is ("store the value"
    #: semantics — QSM/s-QSM/PRAM).  Models whose write rule transforms
    #: values even without a collision (GSM strong queuing) set this False;
    #: the vector engine then always materializes its write log so the
    #: model's own ``_resolve_writes`` runs.
    _plain_write_semantics = True

    def __init__(
        self,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        if num_processors is not None:
            if type(num_processors) is not int:
                raise ValueError(
                    f"num_processors must be an int >= 1 or None, got {num_processors!r}"
                )
            if num_processors < 1:
                raise ValueError(f"num_processors must be >= 1, got {num_processors}")
        if memory_size is not None:
            if type(memory_size) is not int:
                raise ValueError(
                    f"memory_size must be an int >= 1 or None, got {memory_size!r}"
                )
            if memory_size < 1:
                raise ValueError(f"memory_size must be >= 1, got {memory_size}")
        self.num_processors = num_processors
        self.memory_size = memory_size
        from repro.core.engine_vector import resolve_engine

        self.engine = resolve_engine(engine)
        if _metrics.REGISTRY.enabled:
            _metrics.record_engine(self.engine, self.model_label)
        if self.engine == "vector":
            from repro.core.engine_vector import DenseMemory, VectorPhase

            self._memory: Dict[int, Any] = DenseMemory(memory_size)
            self._phase_factory = VectorPhase
        else:
            self._memory = {}
            self._phase_factory = Phase
        # Highest address ever written (-1 when untouched); kept current by
        # poke() and _commit() so next_free_address() is O(1) instead of
        # max() over the whole memory footprint.
        self._high_water: int = -1
        self._rng = derive_rng(seed)
        if winner_policy is not None:
            from repro.faults.winners import make_winner_policy

            winner_policy = make_winner_policy(winner_policy, seed=seed)
        self.winner_policy = winner_policy
        self.fault_plan = fault_plan
        self.fault_events: List[Any] = []
        if fault_plan is not None:
            fault_plan.attach(self)
        self.record_trace = record_trace
        self.record_snapshots = record_snapshots
        self.record_costs = record_costs
        self.history: List[PhaseRecord] = []
        self.phase_costs: List[float] = []
        self.traces: List["PhaseTrace"] = []
        self.snapshots: List[Dict[int, Any]] = []
        self.cost_records: List["PhaseCostRecord"] = []
        self.time: float = 0.0
        self._phase_open = False

    # -- subclass hooks ----------------------------------------------------

    def _phase_cost(self, record: PhaseRecord) -> float:
        raise NotImplementedError

    def _cost_terms(self, record: PhaseRecord) -> Dict[str, float]:
        """Evaluated terms of this model's phase-cost ``max()``.

        Returned in the model's canonical order (see the ``*_cost_terms``
        functions in :mod:`repro.core.cost`); the first argmax is the
        phase's dominant term.  Invariant: ``max(terms.values())`` equals
        :meth:`_phase_cost` of the same record.
        """
        raise NotImplementedError

    def _resolve_writes(self, phase: Phase) -> None:
        """Apply ``phase._writes`` to memory (model-specific).

        Entries come in the three :data:`WriteEntry` kinds; the phase's
        ``_write_collision`` / ``_has_plain`` / ``_has_pairs`` flags tell a
        resolver which kinds are present so it can pick a bulk path —
        :meth:`_apply_single_writes` implements the common last-value case.
        """
        raise NotImplementedError

    def _pick_winner(self, addr: int, entries: "Collided") -> int:
        """Index of the surviving write among ``entries`` (>= 2 writers).

        Routes through :attr:`winner_policy` when one is installed;
        otherwise draws from the machine's own seeded generator, exactly
        as every pre-policy run did.
        """
        policy = self.winner_policy
        if policy is None:
            return int(self._rng.integers(0, len(entries)))
        choice = policy.choose(addr, entries, len(self.history))
        if not 0 <= choice < len(entries):
            raise ValueError(
                f"winner policy {policy!r} chose index {choice} among "
                f"{len(entries)} writers of cell {addr}"
            )
        return choice

    def _apply_single_writes(self, phase: Phase) -> None:
        """Apply a collision-free phase's writes: each cell gets its one value.

        Covers the write rule of every model whose single-writer semantics is
        "store the value" (QSM, s-QSM, PRAM); only calls with
        ``phase._write_collision`` false are valid.
        """
        writes = phase._writes
        memory = self._memory
        if not phase._has_pairs:
            # Every entry is a bare value from the bulk path.
            memory.update(writes)
        elif not phase._has_plain:
            # Every entry is a (proc, value) tuple from the scalar path.
            memory.update(zip(writes.keys(), map(_value_of, writes.values())))
        else:
            for addr, entry in writes.items():
                memory[addr] = entry[1] if type(entry) is tuple else entry

    # -- public API ---------------------------------------------------------

    def phase(self) -> Phase:
        """Open a new phase.  Phases may not be nested."""
        if self._phase_open:
            raise PhaseClosedError("a phase is already open; phases cannot nest")
        self._phase_open = True
        phase = self._phase_factory(self)
        if self.record_costs:
            phase._t_open = perf_counter()
        return phase

    def peek(self, addr: int) -> Any:
        """Read committed memory without charging cost (test/verifier use only)."""
        self._check_addr(addr)
        return self._memory.get(addr)

    def poke(self, addr: int, value: Any) -> None:
        """Set committed memory without charging cost (input loading)."""
        self._check_addr(addr)
        self._memory[addr] = value
        if addr > self._high_water:
            self._high_water = addr

    def load(self, values: Sequence[Any], base: int = 0) -> None:
        """Place ``values`` into consecutive cells starting at ``base`` for free.

        Input placement is not charged in any of the models; the input is
        assumed to reside in shared memory (or be distributed, on the BSP)
        at time zero.
        """
        scatter = getattr(self._memory, "scatter", None)
        if scatter is not None and values and type(base) is int and base >= 0:
            span = range(base, base + len(values))
            if self.memory_size is None or span[-1] < self.memory_size:
                scatter(span, list(values))
                if span[-1] > self._high_water:
                    self._high_water = span[-1]
                return
        for offset, value in enumerate(values):
            self.poke(base + offset, value)

    @property
    def phase_count(self) -> int:
        return len(self.history)

    @property
    def memory_in_use(self) -> int:
        """Number of distinct cells ever written (footprint measure)."""
        return len(self._memory)

    def next_free_address(self) -> int:
        """One past the highest address ever written.

        Algorithms that lay out scratch arrays start their allocators here
        so that several algorithm invocations can share one machine without
        address collisions.  O(1): reads the high-water mark maintained by
        ``poke`` and phase commits (memory cells are never deleted, so the
        mark always equals ``max(self._memory)``).
        """
        return self._high_water + 1

    # -- internals -----------------------------------------------------------

    def _check_proc(self, proc: int) -> None:
        # Hot path: one exact-type test covers the common case (profiling
        # showed per-operation validation dominating large sweeps; `type is
        # int` also rejects bool, unlike isinstance).
        if type(proc) is not int:
            raise TypeError(f"processor id must be an int, got {proc!r}")
        if proc < 0:
            raise ValueError(f"processor id must be non-negative, got {proc}")
        if self.num_processors is not None and proc >= self.num_processors:
            raise ValueError(
                f"processor id {proc} out of range for machine with "
                f"{self.num_processors} processors"
            )

    def _check_addr(self, addr: int) -> None:
        if type(addr) is not int:
            raise TypeError(f"address must be an int, got {addr!r}")
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        if self.memory_size is not None and addr >= self.memory_size:
            raise ValueError(
                f"address {addr} out of range for memory of size {self.memory_size}"
            )

    def _commit(self, phase: Phase) -> None:
        record = phase._build_record(len(self.history))
        cost = self._phase_cost(record)
        # Resolve reads against pre-phase memory, then apply writes.  Both
        # steps go through the phase so an engine-specific Phase subclass
        # can substitute bulk gathers / slice assignments.
        phase._resolve_reads(self)
        phase._apply_writes(self)
        # The phase's interval hull tracks its exact max written address.
        if phase._write_hi > self._high_water:
            self._high_water = phase._write_hi
        phase_faults: Tuple[Dict[str, Any], ...] = ()
        if self.fault_plan is not None:
            fired = self.fault_plan.fire_memory(record.index, self)
            if fired:
                self.fault_events.extend(fired)
                phase_faults = tuple(ev.to_dict() for ev in fired)
        self.history.append(record)
        self.phase_costs.append(cost)
        self.time += cost
        if _metrics.REGISTRY.enabled:
            _metrics.record_phase(self.model_label, record, cost, len(phase_faults))
        if self.record_trace:
            from repro.core.trace import PhaseTrace

            self.traces.append(PhaseTrace.from_phase(record.index, phase))
        if self.record_snapshots:
            self.snapshots.append(dict(self._memory))
        if self.record_costs:
            from repro.obs.records import build_phase_cost_record

            self.cost_records.append(
                build_phase_cost_record(
                    record.index,
                    self.model_label,
                    self._cost_terms(record),
                    cost,
                    record,
                    wall_time=perf_counter() - getattr(phase, "_t_open", perf_counter()),
                    faults=phase_faults,
                )
            )
        self._phase_open = False

    def _read_cell(self, addr: int) -> Any:
        """Value delivered by a read of ``addr`` (subclasses may override)."""
        return self._memory.get(addr)
