"""The Section 2 cost formulas, as pure functions of phase records.

Keeping the formulas separate from the machines lets the ablation bench
(`ABL-queue` in DESIGN.md) charge the *same* program under different cost
rules, and lets tests pin each formula against hand-computed values.

Each ``*_phase_cost`` formula has a ``*_cost_terms`` companion returning
the evaluated terms of its ``max()`` as an ordered mapping (term name ->
charged value).  The cost always equals ``max(terms.values())``, and the
first argmax in mapping order is the phase's *dominant term* — the
provenance the observability layer (:mod:`repro.obs`) records per phase.
Term order is canonical per model: local work first, then the bandwidth
term, then contention/latency, so ties resolve to the cheaper explanation.

Every term value (and every cost) is a ``float``, whatever the parameter
spelling: gap parameters accept ints, and ``g * m_rw`` would otherwise
stay ``int`` for ``g=2`` but turn ``float`` for ``g=2.0`` — making
dominant-term dumps and JSONL round-trips compare unequal across runs
that are numerically identical.  The queue aggregations go through
:func:`queue_max` so engines exposing a compact queue mapping (the vector
engine's ``CountQueue``) are aggregated in O(1) instead of via a
full ``values()`` scan.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Mapping

from repro.core.params import (
    BSPParams,
    GSMParams,
    MPCParams,
    PEMParams,
    QSMParams,
    SQSMParams,
)
from repro.core.phase import PhaseRecord, SuperstepRecord, queue_max

__all__ = [
    "queue_max",
    "qsm_phase_cost",
    "qsm_cost_terms",
    "sqsm_phase_cost",
    "sqsm_cost_terms",
    "gsm_big_steps",
    "gsm_phase_cost",
    "gsm_cost_terms",
    "bsp_superstep_cost",
    "bsp_cost_terms",
    "mpc_round_cost",
    "mpc_cost_terms",
    "pem_phase_cost",
    "pem_cost_terms",
]


def qsm_phase_cost(record: PhaseRecord, params: QSMParams) -> float:
    """QSM phase cost ``max(m_op, g * m_rw, kappa)`` (Section 2.1).

    With ``params.unit_time_concurrent_reads`` only write queues contribute
    to the contention term (concurrent reads are unit-time), the variant
    against which Theorem 3.1's lower bound and the matching upper bound are
    stated.
    """
    if params.unit_time_concurrent_reads:
        kappa = float(max(1, queue_max(record.write_queue)))
    else:
        kappa = float(record.kappa)
    return float(max(float(record.m_op), params.g * record.m_rw, kappa))


def qsm_cost_terms(record: PhaseRecord, params: QSMParams) -> Dict[str, float]:
    """The three QSM charge terms: ``m_op``, ``g*m_rw``, ``kappa``.

    With ``params.unit_time_concurrent_reads`` the ``kappa`` entry is the
    write-queue contention only, matching :func:`qsm_phase_cost`.
    """
    if params.unit_time_concurrent_reads:
        kappa = float(max(1, queue_max(record.write_queue)))
    else:
        kappa = float(record.kappa)
    return {
        "m_op": float(record.m_op),
        "g*m_rw": float(params.g * record.m_rw),
        "kappa": kappa,
    }


def sqsm_phase_cost(record: PhaseRecord, params: SQSMParams) -> float:
    """s-QSM phase cost ``max(m_op, g * m_rw, g * kappa)`` (Section 2.1)."""
    return float(
        max(float(record.m_op), params.g * record.m_rw, params.g * record.kappa)
    )


def sqsm_cost_terms(record: PhaseRecord, params: SQSMParams) -> Dict[str, float]:
    """The three s-QSM charge terms: ``m_op``, ``g*m_rw``, ``g*kappa``."""
    return {
        "m_op": float(record.m_op),
        "g*m_rw": float(params.g * record.m_rw),
        "g*kappa": float(params.g * record.kappa),
    }


def gsm_big_steps(record: PhaseRecord, params: GSMParams) -> int:
    """Number of big-steps ``b = max(ceil(m_rw/alpha), ceil(kappa/beta))``.

    A phase always takes at least one big-step (``m_rw >= 1`` and
    ``kappa >= 1`` by definition of the records).
    """
    b_rw = ceil(record.m_rw / params.alpha)
    b_cont = ceil(record.kappa / params.beta)
    return max(1, b_rw, b_cont)


def gsm_phase_cost(record: PhaseRecord, params: GSMParams) -> float:
    """GSM phase cost ``mu * b`` (Section 2.2).

    Local computation is free on the GSM (it is a lower-bound model), so
    ``m_op`` does not appear.
    """
    return float(params.mu * gsm_big_steps(record, params))


def gsm_cost_terms(record: PhaseRecord, params: GSMParams) -> Dict[str, float]:
    """The two GSM big-step charges, each already scaled by ``mu``.

    ``mu * ceil(m_rw/alpha)`` is the charge if bandwidth alone set the
    big-step count; ``mu * ceil(kappa/beta)`` if contention did.  The max
    of the two equals :func:`gsm_phase_cost` (``ceil(m_rw/alpha) >= 1``
    always, since ``m_rw >= 1`` by definition of the records).
    """
    mu = params.mu
    return {
        "mu*ceil(m_rw/alpha)": float(mu * ceil(record.m_rw / params.alpha)),
        "mu*ceil(kappa/beta)": float(mu * ceil(record.kappa / params.beta)),
    }


def bsp_superstep_cost(record: SuperstepRecord, params: BSPParams) -> float:
    """BSP superstep cost ``max(w, g * h, L)`` (Section 2.1)."""
    return float(max(float(record.w), params.g * record.h, params.L))


def bsp_cost_terms(record: SuperstepRecord, params: BSPParams) -> Dict[str, float]:
    """The three BSP charge terms: ``L``, ``g*h``, ``w``.

    ``L`` leads the mapping so that a superstep charged exactly the
    latency floor attributes to ``L`` even when ``g*h`` ties it (the
    ``bsp_fanin`` design point routes exactly ``L/g`` messages, making
    ``g*h == L`` ties routine): at the floor, sending fewer messages
    would not have made the superstep cheaper.
    """
    return {
        "L": float(params.L),
        "g*h": float(params.g * record.h),
        "w": float(record.w),
    }


def mpc_round_cost(record: SuperstepRecord, params: MPCParams) -> float:
    """MPC effective-round charge ``max(1, h / s)``.

    A round whose h-relation fits each machine's local memory ``s`` costs
    exactly one round; a round exchanging more than ``s`` words per
    machine cannot happen in the model and is charged the ``h/s`` rounds
    it would tile over.  Summing this charge over supersteps makes
    ``machine.time`` the capacity-respecting round count the MPC lower
    bounds (``repro.lowerbounds.formulas``, table ``"mpc"``) are stated
    against.  Local computation is free (MPC, like the GSM, is a
    communication-bounded model).
    """
    return float(max(1.0, record.h / params.s))


def mpc_cost_terms(record: SuperstepRecord, params: MPCParams) -> Dict[str, float]:
    """The two MPC charge terms: ``round`` (the floor of 1) and ``h/s``.

    ``round`` leads the mapping so a superstep within memory capacity
    attributes to the round floor even when ``h/s`` ties it at exactly 1 —
    at the floor, sending fewer words would not have made the round
    cheaper.
    """
    return {
        "round": 1.0,
        "h/s": float(record.h / params.s),
    }


def pem_phase_cost(record: PhaseRecord, params: PEMParams) -> float:
    """PEM phase cost ``max(ceil(m_rw / B), kappa)`` (parallel I/Os).

    A processor touching ``m_rw`` shared cells moves them through its
    cache in blocks of ``B`` — ``ceil(m_rw / B)`` block I/Os; concurrent
    access to one cell serializes at the block level, charging the queue
    depth ``kappa``.  Local computation inside the cache is free: PEM
    measures I/O complexity only, like the GSM measures big-steps.
    """
    return float(max(ceil(record.m_rw / params.B), record.kappa))


def pem_cost_terms(record: PhaseRecord, params: PEMParams) -> Dict[str, float]:
    """The two PEM charge terms: ``ceil(m_rw/B)`` and ``kappa``.

    The bandwidth (I/O-volume) term leads so ties at depth-1 contention
    attribute to the block transfers, mirroring the GSM term order.
    """
    return {
        "ceil(m_rw/B)": float(ceil(record.m_rw / params.B)),
        "kappa": float(record.kappa),
    }
