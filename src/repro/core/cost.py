"""The Section 2 cost formulas, as pure functions of phase records.

Keeping the formulas separate from the machines lets the ablation bench
(`ABL-queue` in DESIGN.md) charge the *same* program under different cost
rules, and lets tests pin each formula against hand-computed values.
"""

from __future__ import annotations

from math import ceil

from repro.core.params import BSPParams, GSMParams, QSMParams, SQSMParams
from repro.core.phase import PhaseRecord, SuperstepRecord

__all__ = [
    "qsm_phase_cost",
    "sqsm_phase_cost",
    "gsm_big_steps",
    "gsm_phase_cost",
    "bsp_superstep_cost",
]


def qsm_phase_cost(record: PhaseRecord, params: QSMParams) -> float:
    """QSM phase cost ``max(m_op, g * m_rw, kappa)`` (Section 2.1).

    With ``params.unit_time_concurrent_reads`` only write queues contribute
    to the contention term (concurrent reads are unit-time), the variant
    against which Theorem 3.1's lower bound and the matching upper bound are
    stated.
    """
    if params.unit_time_concurrent_reads:
        kappa = float(max(1, max(record.write_queue.values(), default=0)))
    else:
        kappa = float(record.kappa)
    return max(float(record.m_op), params.g * record.m_rw, kappa)


def sqsm_phase_cost(record: PhaseRecord, params: SQSMParams) -> float:
    """s-QSM phase cost ``max(m_op, g * m_rw, g * kappa)`` (Section 2.1)."""
    return max(float(record.m_op), params.g * record.m_rw, params.g * record.kappa)


def gsm_big_steps(record: PhaseRecord, params: GSMParams) -> int:
    """Number of big-steps ``b = max(ceil(m_rw/alpha), ceil(kappa/beta))``.

    A phase always takes at least one big-step (``m_rw >= 1`` and
    ``kappa >= 1`` by definition of the records).
    """
    b_rw = ceil(record.m_rw / params.alpha)
    b_cont = ceil(record.kappa / params.beta)
    return max(1, b_rw, b_cont)


def gsm_phase_cost(record: PhaseRecord, params: GSMParams) -> float:
    """GSM phase cost ``mu * b`` (Section 2.2).

    Local computation is free on the GSM (it is a lower-bound model), so
    ``m_op`` does not appear.
    """
    return params.mu * gsm_big_steps(record, params)


def bsp_superstep_cost(record: SuperstepRecord, params: BSPParams) -> float:
    """BSP superstep cost ``max(w, g * h, L)`` (Section 2.1)."""
    return max(float(record.w), params.g * record.h, params.L)
