"""Boolean function algebra over integer multilinear polynomials.

Section 2.5 of the paper rests on three facts:

* **Fact 2.1 (Smolensky):** every ``f : {0,1}^n -> {0,1}`` is a unique
  integer combination of positive monomials ``m_S = prod_{i in S} x_i``.
* **Fact 2.2 (Dietzfelbinger et al.):** degree composition bounds —
  ``deg(f AND g) <= deg f + deg g``, ``deg(NOT f) = deg f``,
  ``deg(f OR g) <= deg f + deg g``, and restriction never raises degree.
* **Fact 2.3:** certificate complexity obeys ``C(f) <= deg(f)^4``.

This package implements all of it executably: the unique multilinear
representation (via the Möbius transform over the subset lattice), degree,
certificate complexity, and a library of standard functions (PARITY has
degree exactly ``n``; OR has full degree too — these drive the paper's
Theorem 3.1 / 7.2 degree arguments).
"""

from repro.boolfn.certificate import certificate_complexity, certificate_for_input
from repro.boolfn.degree import (
    and_degree_bound,
    degree,
    not_degree,
    or_degree_bound,
    restriction_degree_ok,
)
from repro.boolfn.functions import (
    AND,
    MAJORITY,
    OR,
    PARITY,
    THRESHOLD,
    from_truth_table,
    random_function,
)
from repro.boolfn.multilinear import BooleanFunction, MultilinearPolynomial

__all__ = [
    "BooleanFunction",
    "MultilinearPolynomial",
    "certificate_complexity",
    "certificate_for_input",
    "degree",
    "and_degree_bound",
    "or_degree_bound",
    "not_degree",
    "restriction_degree_ok",
    "AND",
    "OR",
    "PARITY",
    "MAJORITY",
    "THRESHOLD",
    "from_truth_table",
    "random_function",
]
