"""Unique integer multilinear representation of Boolean functions (Fact 2.1).

Every ``f : {0,1}^n -> Z`` equals ``sum_S alpha_S(f) * m_S`` for unique
integer coefficients, where ``m_S = prod_{i in S} x_i``.  The coefficients
are the Möbius transform of the truth table over the subset lattice:
``alpha_S = sum_{T subseteq S} (-1)^{|S|-|T|} f(1_T)``, computed here with
the standard in-place subset-sum sweep in ``O(n * 2^n)``.

Conventions: an *assignment* is an integer bitmask where bit ``i`` is the
value of ``x_i``; a truth table is a length-``2^n`` sequence indexed by
assignment; a monomial is the bitmask of its variable set ``S``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MultilinearPolynomial", "BooleanFunction", "popcount"]

MAX_VARS = 24  # 2^24 truth-table entries; beyond this the dense transform is unreasonable.


def popcount(mask: int) -> int:
    """Number of set bits (size of the variable set a mask denotes)."""
    return bin(mask).count("1")


class MultilinearPolynomial:
    """Integer multilinear polynomial on ``n`` Boolean variables.

    Stored sparsely as ``{monomial_mask: coefficient}`` with zero
    coefficients omitted.  Construction from a truth table performs the
    Möbius transform; :meth:`truth_table` inverts it (zeta transform), and
    the round-trip is exact — that is Fact 2.1's uniqueness, and the
    property tests rely on it.
    """

    __slots__ = ("n", "coeffs")

    def __init__(self, n: int, coeffs: Optional[Dict[int, int]] = None) -> None:
        if not 0 <= n <= MAX_VARS:
            raise ValueError(f"variable count must be in [0, {MAX_VARS}], got {n}")
        self.n = n
        clean: Dict[int, int] = {}
        if coeffs:
            limit = 1 << n
            for mask, coeff in coeffs.items():
                if not 0 <= mask < limit:
                    raise ValueError(f"monomial mask {mask} out of range for n={n}")
                if coeff != 0:
                    clean[mask] = int(coeff)
        self.coeffs = clean

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_truth_table(cls, values: Sequence[int], n: Optional[int] = None) -> "MultilinearPolynomial":
        """Möbius-transform a truth table into monomial coefficients."""
        size = len(values)
        if n is None:
            if size == 0 or size & (size - 1):
                raise ValueError(f"truth table length {size} is not a power of two")
            n = size.bit_length() - 1
        if size != 1 << n:
            raise ValueError(f"truth table length {size} != 2^{n}")
        work: List[int] = [int(v) for v in values]
        for i in range(n):
            bit = 1 << i
            for mask in range(size):
                if mask & bit:
                    work[mask] -= work[mask ^ bit]
        coeffs = {mask: c for mask, c in enumerate(work) if c != 0}
        return cls(n, coeffs)

    @classmethod
    def from_function(cls, fn: Callable[[Tuple[int, ...]], int], n: int) -> "MultilinearPolynomial":
        """Tabulate ``fn`` on all of ``{0,1}^n`` then transform."""
        table = [int(fn(tuple((a >> i) & 1 for i in range(n)))) for a in range(1 << n)]
        return cls.from_truth_table(table, n)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, assignment: int) -> int:
        """Evaluate at the assignment bitmask (monomial m_S is 1 iff S ⊆ assignment)."""
        if not 0 <= assignment < (1 << self.n):
            raise ValueError(f"assignment {assignment} out of range for n={self.n}")
        total = 0
        for mask, coeff in self.coeffs.items():
            if mask & assignment == mask:
                total += coeff
        return total

    def truth_table(self) -> List[int]:
        """Zeta-transform the coefficients back to a full truth table."""
        size = 1 << self.n
        work = [0] * size
        for mask, coeff in self.coeffs.items():
            work[mask] = coeff
        for i in range(self.n):
            bit = 1 << i
            for mask in range(size):
                if mask & bit:
                    work[mask] += work[mask ^ bit]
        return work

    # -- algebra ---------------------------------------------------------------

    @property
    def degree(self) -> int:
        """``deg(f) = max{|S| : alpha_S != 0}``; the zero polynomial has degree 0."""
        if not self.coeffs:
            return 0
        return max(popcount(mask) for mask in self.coeffs)

    def __add__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        self._check_compatible(other)
        merged = dict(self.coeffs)
        for mask, coeff in other.coeffs.items():
            merged[mask] = merged.get(mask, 0) + coeff
        return MultilinearPolynomial(self.n, merged)

    def __sub__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        self._check_compatible(other)
        merged = dict(self.coeffs)
        for mask, coeff in other.coeffs.items():
            merged[mask] = merged.get(mask, 0) - coeff
        return MultilinearPolynomial(self.n, merged)

    def __neg__(self) -> "MultilinearPolynomial":
        return MultilinearPolynomial(self.n, {m: -c for m, c in self.coeffs.items()})

    def __mul__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        """Pointwise product on the cube (multilinearised: x_i^2 = x_i)."""
        self._check_compatible(other)
        merged: Dict[int, int] = {}
        # Multilinearisation over {0,1}: m_S * m_T = m_{S ∪ T}.
        for m1, c1 in self.coeffs.items():
            for m2, c2 in other.coeffs.items():
                key = m1 | m2
                merged[key] = merged.get(key, 0) + c1 * c2
        return MultilinearPolynomial(self.n, merged)

    def scale(self, k: int) -> "MultilinearPolynomial":
        return MultilinearPolynomial(self.n, {m: k * c for m, c in self.coeffs.items()})

    def restrict(self, fixed: Dict[int, int]) -> "MultilinearPolynomial":
        """Fix variables ``{index: 0 or 1}``; remaining variables keep indices.

        By Fact 2.2(4), degree never increases under restriction; the
        property tests assert this on random polynomials.
        """
        for var, val in fixed.items():
            if not 0 <= var < self.n:
                raise ValueError(f"variable index {var} out of range for n={self.n}")
            if val not in (0, 1):
                raise ValueError(f"restriction value must be 0 or 1, got {val}")
        merged: Dict[int, int] = {}
        zero_mask = 0
        one_mask = 0
        for var, val in fixed.items():
            if val == 0:
                zero_mask |= 1 << var
            else:
                one_mask |= 1 << var
        for mask, coeff in self.coeffs.items():
            if mask & zero_mask:
                continue  # monomial contains a variable fixed to 0: vanishes
            reduced = mask & ~one_mask  # variables fixed to 1 drop out
            merged[reduced] = merged.get(reduced, 0) + coeff
        return MultilinearPolynomial(self.n, merged)

    def _check_compatible(self, other: "MultilinearPolynomial") -> None:
        if not isinstance(other, MultilinearPolynomial):
            raise TypeError(f"expected MultilinearPolynomial, got {type(other)!r}")
        if self.n != other.n:
            raise ValueError(f"variable counts differ: {self.n} vs {other.n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultilinearPolynomial):
            return NotImplemented
        return self.n == other.n and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.n, frozenset(self.coeffs.items())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.coeffs:
            return f"MultilinearPolynomial(n={self.n}, 0)"
        terms = []
        for mask in sorted(self.coeffs, key=lambda m: (popcount(m), m)):
            coeff = self.coeffs[mask]
            vars_ = "*".join(f"x{i}" for i in range(self.n) if mask & (1 << i)) or "1"
            terms.append(f"{coeff:+d}*{vars_}")
        return f"MultilinearPolynomial(n={self.n}, {' '.join(terms)})"


class BooleanFunction:
    """A total Boolean function given by its truth table, with algebra on top.

    The truth table is a numpy ``int8`` array of length ``2^n`` indexed by
    assignment bitmask.  Boolean operations compose tables; :attr:`degree`
    and certificate complexity go through the polynomial representation.
    """

    __slots__ = ("n", "table", "_poly")

    def __init__(self, n: int, table: Sequence[int]) -> None:
        if not 0 <= n <= MAX_VARS:
            raise ValueError(f"variable count must be in [0, {MAX_VARS}], got {n}")
        arr = np.asarray(table, dtype=np.int8)
        if arr.shape != (1 << n,):
            raise ValueError(f"truth table must have length 2^{n}, got shape {arr.shape}")
        if not np.isin(arr, (0, 1)).all():
            raise ValueError("truth table entries must be 0 or 1")
        self.n = n
        self.table = arr
        self._poly: Optional[MultilinearPolynomial] = None

    @classmethod
    def from_function(cls, fn: Callable[[Tuple[int, ...]], int], n: int) -> "BooleanFunction":
        table = [1 if fn(tuple((a >> i) & 1 for i in range(n))) else 0 for a in range(1 << n)]
        return cls(n, table)

    def __call__(self, assignment: int) -> int:
        if not 0 <= assignment < (1 << self.n):
            raise ValueError(f"assignment {assignment} out of range for n={self.n}")
        return int(self.table[assignment])

    def evaluate_bits(self, bits: Iterable[int]) -> int:
        """Evaluate at an explicit bit sequence ``(x_0, x_1, ..., x_{n-1})``."""
        mask = 0
        count = 0
        for i, b in enumerate(bits):
            if b not in (0, 1):
                raise ValueError(f"input bits must be 0/1, got {b}")
            mask |= b << i
            count += 1
        if count != self.n:
            raise ValueError(f"expected {self.n} bits, got {count}")
        return int(self.table[mask])

    @property
    def polynomial(self) -> MultilinearPolynomial:
        if self._poly is None:
            self._poly = MultilinearPolynomial.from_truth_table(self.table.tolist(), self.n)
        return self._poly

    @property
    def degree(self) -> int:
        return self.polynomial.degree

    # -- Boolean algebra ---------------------------------------------------

    def __and__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_compatible(other)
        return BooleanFunction(self.n, self.table & other.table)

    def __or__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_compatible(other)
        return BooleanFunction(self.n, self.table | other.table)

    def __xor__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_compatible(other)
        return BooleanFunction(self.n, self.table ^ other.table)

    def __invert__(self) -> "BooleanFunction":
        return BooleanFunction(self.n, 1 - self.table)

    def restrict(self, fixed: Dict[int, int]) -> "BooleanFunction":
        """Fix some variables; the result keeps ``n`` variables with the fixed
        ones now irrelevant (their table slices are duplicated), matching the
        paper's ``g ⊆ f`` notion where ``g`` results from fixing inputs."""
        table = self.table
        for var, val in fixed.items():
            if not 0 <= var < self.n:
                raise ValueError(f"variable index {var} out of range for n={self.n}")
            if val not in (0, 1):
                raise ValueError(f"restriction value must be 0 or 1, got {val}")
            bit = 1 << var
            idx = np.arange(1 << self.n)
            source = (idx & ~bit) | (bit if val else 0)
            table = table[source]
        return BooleanFunction(self.n, table)

    def is_constant(self) -> bool:
        return bool((self.table == self.table[0]).all())

    def _check_compatible(self, other: "BooleanFunction") -> None:
        if not isinstance(other, BooleanFunction):
            raise TypeError(f"expected BooleanFunction, got {type(other)!r}")
        if self.n != other.n:
            raise ValueError(f"variable counts differ: {self.n} vs {other.n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self.n == other.n and bool((self.table == other.table).all())

    def __hash__(self) -> int:
        return hash((self.n, self.table.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = "".join(str(int(v)) for v in self.table) if self.n <= 5 else "..."
        return f"BooleanFunction(n={self.n}, table={bits})"
