"""Standard Boolean functions used throughout the paper.

PARITY and OR are the paper's protagonists: PARITY of ``r`` bits has
multilinear degree exactly ``r`` (the fact powering Theorem 3.1), and OR has
degree ``r`` as well (powering Theorem 7.2).  AND, THRESHOLD and MAJORITY
round out the library for tests and ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boolfn.multilinear import BooleanFunction
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "PARITY",
    "OR",
    "AND",
    "THRESHOLD",
    "MAJORITY",
    "from_truth_table",
    "random_function",
]


def _weights(n: int) -> np.ndarray:
    """Popcount of every assignment mask ``0..2^n - 1``."""
    idx = np.arange(1 << n, dtype=np.int64)
    w = np.zeros_like(idx)
    for bit in range(n):
        w += (idx >> bit) & 1
    return w


def PARITY(n: int) -> BooleanFunction:
    """1 iff the number of ones in the input is odd.  ``deg = n``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return BooleanFunction(n, (_weights(n) & 1).astype(np.int8))


def OR(n: int) -> BooleanFunction:
    """1 iff at least one input is 1.  ``deg = n``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return BooleanFunction(n, (_weights(n) >= 1).astype(np.int8))


def AND(n: int) -> BooleanFunction:
    """1 iff all inputs are 1.  ``deg = n``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return BooleanFunction(n, (_weights(n) == n).astype(np.int8))


def THRESHOLD(n: int, k: int) -> BooleanFunction:
    """1 iff at least ``k`` inputs are 1.

    ``THRESHOLD(n, 1) == OR(n)``, ``THRESHOLD(n, n) == AND(n)``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0 <= k <= n + 1:
        raise ValueError(f"threshold k must be in [0, n+1], got {k}")
    return BooleanFunction(n, (_weights(n) >= k).astype(np.int8))


def MAJORITY(n: int) -> BooleanFunction:
    """1 iff more than half the inputs are 1 (strict majority)."""
    return THRESHOLD(n, n // 2 + 1)


def from_truth_table(values: Sequence[int]) -> BooleanFunction:
    """Build a :class:`BooleanFunction` from a 0/1 table of length ``2^n``."""
    size = len(values)
    if size == 0 or size & (size - 1):
        raise ValueError(f"truth table length {size} is not a power of two")
    return BooleanFunction(size.bit_length() - 1, values)


def random_function(n: int, seed: RngLike = None, bias: float = 0.5) -> BooleanFunction:
    """A uniformly random Boolean function (entries iid Bernoulli(bias))."""
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be in [0, 1], got {bias}")
    rng = derive_rng(seed)
    table = (rng.random(1 << n) < bias).astype(np.int8)
    return BooleanFunction(n, table)
