"""Degree and the Fact 2.2 composition bounds.

These are the inequalities the paper's degree arguments (Theorems 3.1, 7.2
and Lemma 5.1) chain together phase by phase.  Each helper returns both the
exact degree of the composed function and the Fact 2.2 upper bound, so tests
and the degree-argument engine can check ``exact <= bound`` on arbitrary
functions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.boolfn.multilinear import BooleanFunction

__all__ = [
    "degree",
    "and_degree_bound",
    "or_degree_bound",
    "not_degree",
    "restriction_degree_ok",
]


def degree(f: BooleanFunction) -> int:
    """``deg(f)``: the degree of the unique multilinear representation."""
    return f.degree


def and_degree_bound(f: BooleanFunction, g: BooleanFunction) -> Tuple[int, int]:
    """Fact 2.2(1): returns ``(deg(f AND g), deg(f) + deg(g))``."""
    return (f & g).degree, f.degree + g.degree


def or_degree_bound(f: BooleanFunction, g: BooleanFunction) -> Tuple[int, int]:
    """Fact 2.2(3): returns ``(deg(f OR g), deg(f) + deg(g))``."""
    return (f | g).degree, f.degree + g.degree


def not_degree(f: BooleanFunction) -> Tuple[int, int]:
    """Fact 2.2(2): returns ``(deg(NOT f), deg(f))`` — these are equal
    unless ``f`` is constant (deg 0 either way)."""
    return (~f).degree, f.degree


def restriction_degree_ok(f: BooleanFunction, fixed: Dict[int, int]) -> bool:
    """Fact 2.2(4): fixing inputs to constants never raises degree."""
    return f.restrict(fixed).degree <= f.degree
