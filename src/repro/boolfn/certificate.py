"""Certificate complexity (Nisan) and the Fact 2.3 relation to degree.

``C_a(f)`` is the size of the smallest set ``S`` of variables such that
fixing them to their values under ``a`` forces ``f``; ``C(f)`` is the
maximum over all inputs ``a``.  Fact 2.3 (via Nisan / Dietzfelbinger et al.)
states ``C(f) <= deg(f)^4``, which Claim 5.2 of the paper uses to argue
every processor/cell state has a small certificate and therefore
non-negligible probability.

The computation enumerates variable subsets in order of size, so it is
exponential in ``n``; it is intended for the small instances the
lower-bound machinery and the tests run on (``n <= ~12``).
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

from repro.boolfn.multilinear import BooleanFunction

__all__ = ["certificate_for_input", "certificate_complexity", "fact_2_3_holds"]


def _forces(f: BooleanFunction, assignment: int, subset_mask: int) -> bool:
    """True iff fixing the variables in ``subset_mask`` to their values under
    ``assignment`` makes ``f`` constant."""
    n = f.n
    free = [i for i in range(n) if not subset_mask & (1 << i)]
    base = assignment & subset_mask
    target = f(assignment)
    # Enumerate all settings of the free variables.
    for combo in range(1 << len(free)):
        point = base
        for j, var in enumerate(free):
            if combo & (1 << j):
                point |= 1 << var
        # Free variables also keep assignment's values on S only; others vary.
        if f(point) != target:
            return False
    return True


def certificate_for_input(f: BooleanFunction, assignment: int) -> Tuple[int, int]:
    """Smallest certificate for ``f`` at ``assignment``.

    Returns ``(size, subset_mask)`` where ``subset_mask`` is the
    lexicographically smallest minimum certificate (matching the paper's
    tie-break for ``Cert``).
    """
    n = f.n
    if not 0 <= assignment < (1 << n):
        raise ValueError(f"assignment {assignment} out of range for n={n}")
    for size in range(n + 1):
        best: Optional[int] = None
        for subset in combinations(range(n), size):
            mask = 0
            for var in subset:
                mask |= 1 << var
            if _forces(f, assignment, mask):
                if best is None or mask < best:
                    best = mask
        if best is not None:
            return size, best
    raise AssertionError("the full variable set always certifies")  # pragma: no cover


def certificate_complexity(f: BooleanFunction) -> int:
    """``C(f) = max_a C_a(f)``."""
    worst = 0
    for assignment in range(1 << f.n):
        size, _ = certificate_for_input(f, assignment)
        worst = max(worst, size)
        if worst == f.n:
            break  # cannot get larger
    return worst


def fact_2_3_holds(f: BooleanFunction) -> bool:
    """Check ``C(f) <= deg(f)^4`` (trivially true when f is constant)."""
    d = f.degree
    c = certificate_complexity(f)
    if d == 0:
        return c == 0
    return c <= d**4
