"""``python -m repro`` — regenerate the paper's tables (see repro.cli)."""

from repro.cli import main

raise SystemExit(main())
