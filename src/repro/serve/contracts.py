"""The versioned ``repro.serve/1`` wire contracts.

Every JSON object that crosses the service boundary — requests in,
responses and SSE event payloads out — carries a ``"schema"`` key set to
:data:`SCHEMA`, the same convention as the ``repro.metrics/1`` snapshot
lines and the ``repro.store/1`` objects.  A client can therefore reject
a version skew before interpreting a single field, and the docs checker
(``tools/check_docs.py``) validates that every JSON example in
docs/SERVICE.md states its schema.

Parsing is strict and total: :meth:`SubmitRequest.from_dict` either
returns a validated request or raises :class:`ContractError` with a
stable machine-readable ``code`` and the HTTP status the front end
should map it to.  Nothing here imports the HTTP layer — the contracts
are testable round-trip without a socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.sched.tenancy import JobRecord

__all__ = [
    "SCHEMA",
    "ContractError",
    "SubmitRequest",
    "job_view",
    "jobs_view",
    "fleet_view",
    "slo_view",
    "error_view",
    "DEFAULT_TENANT",
    "TENANT_HEADER",
]

#: Schema tag stamped into every request and response envelope.
SCHEMA = "repro.serve/1"

#: Header naming the submitting tenant; absent means :data:`DEFAULT_TENANT`.
TENANT_HEADER = "X-Repro-Tenant"

#: Tenant attributed to requests that do not identify themselves.
DEFAULT_TENANT = "anonymous"


class ContractError(ValueError):
    """A request violated the ``repro.serve/1`` contract.

    ``code`` is stable and machine-readable (``"bad_schema"``,
    ``"bad_request"``, ``"unknown_campaign"``, ``"bad_option"``,
    ``"quota_jobs"``, ``"quota_tasks"``, ``"not_found"``,
    ``"wrong_tenant"``); ``status`` is the HTTP status the front end
    responds with.
    """

    def __init__(self, code: str, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.status = status

    def to_dict(self) -> Dict[str, Any]:
        return error_view(self.code, str(self))


def error_view(code: str, message: str) -> Dict[str, Any]:
    """The error response envelope."""
    return {"schema": SCHEMA, "error": {"code": code, "message": message}}


@dataclass(frozen=True)
class SubmitRequest:
    """A validated ``POST /v1/jobs`` body.

    ``campaign`` names an entry in the service's campaign registry;
    ``options`` are the builder options the registry validates against
    its typed, bounded :class:`~repro.serve.registry.OptionSpec` list.
    The submitting tenant travels in the ``X-Repro-Tenant`` header, not
    the body, so a reverse proxy can set it authoritatively.
    """

    campaign: str
    options: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; :meth:`from_dict` inverts it exactly."""
        return {
            "schema": SCHEMA,
            "campaign": self.campaign,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SubmitRequest":
        if not isinstance(data, Mapping):
            raise ContractError(
                "bad_request", f"request body must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ContractError(
                "bad_schema",
                f"expected schema {SCHEMA!r}, got {schema!r}",
            )
        campaign = data.get("campaign")
        if not isinstance(campaign, str) or not campaign:
            raise ContractError(
                "bad_request", "'campaign' must be a non-empty string"
            )
        options = data.get("options", {})
        if not isinstance(options, Mapping):
            raise ContractError(
                "bad_request", f"'options' must be an object, got {type(options).__name__}"
            )
        unknown = sorted(set(data) - {"schema", "campaign", "options"})
        if unknown:
            raise ContractError(
                "bad_request", f"unknown request field(s): {', '.join(unknown)}"
            )
        return cls(campaign=campaign, options=dict(options))


def job_view(job: JobRecord, campaign: Optional[str] = None) -> Dict[str, Any]:
    """The job response envelope (also the SSE ``job`` event payload).

    ``counts`` maps span status (``done``/``cached``/``failed``/
    ``skipped``/``pending``) to task counts — live while the job runs,
    frozen from its spans once terminal.  A resubmission fully served by
    the store shows every task ``cached``: that is the dedup contract in
    ISSUE terms ("the second tenant's tasks report cached").

    ``trace_id`` is the job's distributed-trace id (``null`` unless the
    service runs with ``REPRO_TRACE`` on) — grep it across the merged
    ``repro.trace/1`` file to see the job's whole span tree, HTTP
    request through remote workers to per-phase cost records.
    """
    return {
        "schema": SCHEMA,
        "job": {
            "id": job.id,
            "tenant": job.tenant,
            "campaign": campaign if campaign is not None else job.campaign.name,
            "state": job.state,
            "created": job.created,
            "started": job.started,
            "finished": job.finished,
            "tasks": len(job.campaign.tasks),
            "counts": job.counts(),
            "error": job.error,
            "trace_id": job.trace_id,
        },
    }


def jobs_view(jobs: Any) -> Dict[str, Any]:
    """The job-list response envelope."""
    return {
        "schema": SCHEMA,
        "jobs": [job_view(j)["job"] for j in jobs],
    }


def slo_view(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """The SLO response envelope (``GET /v1/slo``).

    ``summary`` is :func:`repro.obs.tracing.slo_summary` output: exact
    nearest-rank p50/p95/p99 over finished span durations, bucketed into
    ``task`` (one dispatch → resolution) and ``end_to_end`` (job submit →
    terminal state).  ``enabled: false`` means the service runs without
    ``REPRO_TRACE`` and the buckets are empty — the endpoint still
    answers 200 so dashboards need no feature detection.
    """
    return {"schema": SCHEMA, "slo": dict(summary)}


def fleet_view(pool: Any) -> Dict[str, Any]:
    """The worker-fleet envelope (``GET /v1/workers``, SSE ``workers``).

    Both pool flavours answer ``fleet()`` with the same row shape —
    pipe workers report ``transport: "pipe"`` with no address or
    heartbeat, TCP workers report ``transport: "tcp"`` plus their
    registration state, generation, and last heartbeat latency
    (docs/DISTRIBUTED.md).  ``listen`` is the TCP pool's worker-facing
    address (absent for a pipe pool).
    """
    rows = pool.fleet() if hasattr(pool, "fleet") else []
    out: Dict[str, Any] = {
        "schema": SCHEMA,
        "workers": rows,
        "live": sum(1 for r in rows if r.get("state") == "live"),
    }
    address = getattr(pool, "address", None)
    if address is not None:
        out["listen"] = f"{address[0]}:{address[1]}"
    return out
