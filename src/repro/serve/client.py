"""A thin urllib client for the campaign service.

The library half of ``python -m repro serve submit|watch|campaigns``:
plain ``urllib.request`` (stdlib-only, like everything else in
:mod:`repro.serve`), ``repro.serve/1`` envelopes in and out, and SSE
watching built on the same :func:`~repro.serve.sse.iter_sse` parser the
tests exercise.  Server-side contract errors surface as
:class:`ServeError` carrying the machine-readable ``code`` and HTTP
status from the error envelope.
"""

from __future__ import annotations

import codecs
import json
from typing import Any, Dict, Iterator, List, Mapping, Optional
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.serve.contracts import SCHEMA, TENANT_HEADER
from repro.serve.sse import iter_sse

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A ``repro.serve/1`` error envelope, decoded."""

    def __init__(self, code: str, message: str, status: int) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


class ServeClient:
    """Talk to one service instance as one tenant."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8023",
        tenant: Optional[str] = None,
        timeout: float = 10.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        path: str,
        method: str = "GET",
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ):
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers[TENANT_HEADER] = self.tenant
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urlrequest.urlopen(
                req, timeout=self.timeout if timeout is None else timeout
            )
        except urlerror.HTTPError as exc:
            raise self._decode_error(exc)

    def _json(self, path: str, method: str = "GET", body: Any = None) -> Dict[str, Any]:
        with self._request(path, method=method, body=body) as resp:
            return json.loads(resp.read().decode("utf-8"))

    @staticmethod
    def _decode_error(exc: urlerror.HTTPError) -> ServeError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            detail = payload.get("error", {})
            return ServeError(
                detail.get("code", "http_error"),
                detail.get("message", str(exc)),
                exc.code,
            )
        except ValueError:
            return ServeError("http_error", str(exc), exc.code)

    # -- API -----------------------------------------------------------------

    def submit(
        self, campaign: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """``POST /v1/jobs``; returns the ``job`` object of the envelope."""
        body = {"schema": SCHEMA, "campaign": campaign, "options": dict(options or {})}
        return self._json("/v1/jobs", method="POST", body=body)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json(f"/v1/jobs/{job_id}")["job"]

    def jobs(self, all_tenants: bool = False) -> List[Dict[str, Any]]:
        suffix = "?all=1" if all_tenants else ""
        return self._json(f"/v1/jobs{suffix}")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json(f"/v1/jobs/{job_id}", method="DELETE")["job"]

    def campaigns(self) -> List[Dict[str, Any]]:
        return self._json("/v1/campaigns")["campaigns"]

    def workers(self) -> Dict[str, Any]:
        """``GET /v1/workers``; the full fleet envelope (rows + listen)."""
        return self._json("/v1/workers")

    def slo(self) -> Dict[str, Any]:
        """``GET /v1/slo``; the percentile-latency ``slo`` object.

        Empty buckets (``enabled: false``) when the service runs
        without ``REPRO_TRACE``.
        """
        return self._json("/v1/slo")["slo"]

    def healthy(self) -> bool:
        try:
            with self._request("/healthz") as resp:
                return resp.status == 200
        except (ServeError, urlerror.URLError, OSError):
            return False

    def watch(
        self,
        job_id: str,
        cancel_on_disconnect: bool = False,
        timeout: float = 600.0,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a job's SSE events as decoded JSON payloads.

        Yields each ``job`` envelope as it arrives; returns when the
        server closes the stream on the job's terminal event.  With
        ``cancel_on_disconnect`` the server cancels the job if this
        stream dies instead of completing.
        """
        suffix = "?cancel_on_disconnect=1" if cancel_on_disconnect else ""
        resp = self._request(f"/v1/jobs/{job_id}/events{suffix}", timeout=timeout)

        def chunks() -> Iterator[str]:
            # Incremental decode: read1() returns whatever bytes are on
            # the wire, which can tear a multi-byte UTF-8 rune across
            # blocks — per-block decode(errors="replace") would corrupt
            # it into U+FFFD.  The incremental decoder buffers the
            # partial rune until its continuation bytes arrive.
            decoder = codecs.getincrementaldecoder("utf-8")(errors="replace")
            with resp:
                while True:
                    block = resp.read1(4096)
                    if not block:
                        tail = decoder.decode(b"", final=True)
                        if tail:
                            yield tail
                        return
                    text = decoder.decode(block)
                    if text:
                        yield text

        for event in iter_sse(chunks()):
            if event["event"] == "job":
                yield json.loads(event["data"])

    def wait(self, job_id: str, timeout: float = 600.0) -> Dict[str, Any]:
        """Watch until terminal; returns the final ``job`` object."""
        last: Optional[Dict[str, Any]] = None
        for envelope in self.watch(job_id, timeout=timeout):
            last = envelope["job"]
        if last is None:
            # Stream closed without a frame (server restart mid-watch).
            last = self.job(job_id)
        return last
