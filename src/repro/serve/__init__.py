"""repro.serve — the multi-tenant campaign service.

Everything the single-shot ``python -m repro campaign`` CLI does, turned
into a long-running HTTP/JSON service: tenants submit named campaigns
(``POST /v1/jobs``), many submissions multiplex onto one warm
:class:`~repro.sched.pool.WorkerPool` with fair-share queueing and
per-tenant quotas (:mod:`repro.sched.tenancy`), results are served out of
the shared content-addressed :class:`~repro.sched.store.ResultStore`
(identical task specs dedup across tenants via their SHA-256 keys), and
``repro.metrics/1`` snapshots stream over Server-Sent Events to a
self-contained live dashboard.

The layering, bottom up:

* :mod:`repro.serve.contracts` — the versioned ``repro.serve/1`` wire
  contracts: request parsing, response envelopes, error codes.
* :mod:`repro.serve.registry` — the catalogue of campaigns a tenant may
  submit by name, with typed/bounded options (no pickled code ever
  crosses the wire).
* :mod:`repro.serve.service` — :class:`~repro.serve.service.CampaignService`,
  the scheduler thread driving a
  :class:`~repro.sched.tenancy.FairShareMultiplexer` plus the pub/sub hub
  feeding every SSE subscriber.
* :mod:`repro.serve.sse` — SSE framing: the writer-side formatter and a
  torn-frame-tolerant parser mirroring
  :func:`repro.obs.snapshot.read_snapshots`.
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` front end
  mapping routes onto the service.
* :mod:`repro.serve.ui` — the single-file HTML dashboard served at ``/``.
* :mod:`repro.serve.client` — the thin urllib client behind
  ``python -m repro serve submit|watch``.

Everything is stdlib-only.  See docs/SERVICE.md for the contract schemas,
a curl walkthrough, and the failure semantics.
"""

from repro.serve.contracts import (
    SCHEMA,
    ContractError,
    SubmitRequest,
    error_view,
    job_view,
)
from repro.serve.registry import CampaignEntry, OptionSpec, default_registry
from repro.serve.service import CampaignService
from repro.serve.sse import format_sse_event, iter_sse

__all__ = [
    "SCHEMA",
    "ContractError",
    "SubmitRequest",
    "error_view",
    "job_view",
    "OptionSpec",
    "CampaignEntry",
    "default_registry",
    "CampaignService",
    "format_sse_event",
    "iter_sse",
]
