"""The campaign service core: scheduler loop + event hub, no HTTP.

:class:`CampaignService` owns the shared substrate — one
:class:`~repro.sched.store.ResultStore`, one warm pool behind a
:class:`~repro.sched.tenancy.FairShareMultiplexer` — and runs the single
scheduler thread that all pool interaction is confined to.  The HTTP
front end (:mod:`repro.serve.http`) calls in from handler threads:
``submit``/``cancel``/``job`` are lock-safe multiplexer calls, and
``subscribe`` registers a bounded queue that the scheduler loop feeds
with two kinds of events:

* ``job`` — a :func:`~repro.serve.contracts.job_view` envelope whenever
  a job changes state (queued → running → done/failed/cancelled);
* ``snapshot`` — a ``repro.metrics/1``
  :class:`~repro.obs.snapshot.MetricsSnapshot` captured on a fixed
  cadence, the same payload ``SnapshotWriter`` writes to JSONL;
* ``workers`` — a :func:`~repro.serve.contracts.fleet_view` envelope
  whenever the worker fleet changes shape (a worker registers, goes
  lost, is evicted, or finishes a task).

Slow consumers never stall the scheduler: queues are bounded and the
oldest event is dropped on overflow (SSE consumers are refresh-tolerant
— the dashboard rebuilds from the next snapshot).  Metrics are enabled
for the lifetime of the service and restored to their prior state on
:meth:`stop`, so embedding the service in a test leaves the global
registry the way it found it.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.snapshot import MetricsSnapshot, default_interval
from repro.sched.store import ResultStore
from repro.sched.tenancy import (
    FairShareMultiplexer,
    JobRecord,
    QuotaExceeded,
    TenantQuota,
)
from repro.serve.contracts import (
    ContractError,
    SubmitRequest,
    fleet_view,
    job_view,
    slo_view,
)
from repro.serve.registry import CampaignEntry, default_registry

__all__ = ["CampaignService", "Subscription"]

#: Events a slow subscriber can lag by before the oldest is dropped.
_QUEUE_DEPTH = 256


class Subscription:
    """One subscriber's bounded event queue.

    ``get`` returns ``(event, data, done)`` tuples — ``done`` marks the
    terminal ``job`` event of the watched job so a per-job stream knows
    to close.  Iterating a subscription from the scheduler's point of
    view is lossy-by-design: on overflow the oldest event is dropped.
    """

    def __init__(self, job_id: Optional[str]) -> None:
        self.job_id = job_id
        self._queue: "queue.Queue[Tuple[str, str, bool]]" = queue.Queue(_QUEUE_DEPTH)

    def get(self, timeout: float) -> Optional[Tuple[str, str, bool]]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def push(self, event: str, data: str, done: bool = False) -> None:
        while True:
            try:
                self._queue.put_nowait((event, data, done))
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    pass


class CampaignService:
    """The long-running multi-tenant campaign service (transport-free)."""

    def __init__(
        self,
        store_path: str,
        jobs: Optional[int] = None,
        quota: Optional[TenantQuota] = None,
        registry: Optional[Dict[str, CampaignEntry]] = None,
        snapshot_interval: Optional[float] = None,
        metrics_path: Optional[str] = None,
        progress: Optional[Any] = None,
        workers_port: Optional[int] = None,
        workers_host: str = "127.0.0.1",
    ) -> None:
        self.store = ResultStore(store_path)
        self.registry = default_registry() if registry is None else dict(registry)
        self.snapshot_interval = (
            default_interval() if snapshot_interval is None else float(snapshot_interval)
        )
        if self.snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be positive, got {snapshot_interval}"
            )
        self._metrics_were_enabled = _metrics.REGISTRY.enabled
        _metrics.REGISTRY.enable()
        # With a workers port the service runs on the TCP fabric: remote
        # workers dial in and register (docs/DISTRIBUTED.md); without one
        # it keeps the local duplex-pipe pool.  The remote pool is handed
        # to the multiplexer as an external pool, so the service — not
        # mux.shutdown() — owns its lifecycle.
        self._remote_pool: Optional[Any] = None
        if workers_port is not None:
            from repro.sched.net.pool import RemoteWorkerPool

            self._remote_pool = RemoteWorkerPool(
                host=workers_host, port=workers_port, jobs=jobs if jobs else 4
            )
            self.mux = FairShareMultiplexer(
                self.store, pool=self._remote_pool, jobs=jobs, quota=quota,
                progress=progress,
            )
        else:
            self.mux = FairShareMultiplexer(
                self.store, jobs=jobs, quota=quota, progress=progress
            )
        self._subs: List[Subscription] = []
        self._subs_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.monotonic()
        self._t0_wall = time.time()
        self._snap_seq = 0
        #: Optional JSONL mirror of the SSE snapshot stream, so `campaign
        #: status --follow` can tail a service the same way it tails a run.
        self._metrics_path = metrics_path
        self._metrics_fh: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread.  Idempotent."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the scheduler, shut the pool down, restore metrics state.

        Queued/running jobs are cancelled; whatever their in-flight
        tasks stored stays in the store, so resubmitting after a restart
        resumes (the kill-mid-campaign CI leg).
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self.mux.shutdown()
        if self._remote_pool is not None:
            self._remote_pool.shutdown()
        self._broadcast_snapshot(final=True)
        if self._metrics_fh is not None:
            self._metrics_fh.close()
            self._metrics_fh = None
        if not self._metrics_were_enabled:
            _metrics.REGISTRY.disable()

    # -- request side (any thread) -------------------------------------------

    def submit(
        self,
        tenant: str,
        request: SubmitRequest,
        parent: Optional["_tracing.SpanContext"] = None,
    ) -> JobRecord:
        """Validate, build, and admit a submission; returns the new job.

        ``parent`` is the HTTP request span's context on traced runs —
        the job span (and every task/exec/phase span under it) joins
        that trace, so one ``trace_id`` covers submit to terminal state.
        Raises :class:`ContractError`: ``unknown_campaign`` (404),
        ``bad_option`` (400), or the quota codes (429).
        """
        entry = self.registry.get(request.campaign)
        if entry is None:
            known = ", ".join(sorted(self.registry))
            raise ContractError(
                "unknown_campaign",
                f"unknown campaign {request.campaign!r}; available: {known}",
                status=404,
            )
        campaign = entry.build(request.options)
        try:
            job = self.mux.submit(tenant, campaign, parent=parent)
        except QuotaExceeded as exc:
            raise ContractError(exc.code, str(exc), status=429)
        self._broadcast_job(job)
        return job

    def job(self, job_id: str) -> JobRecord:
        job = self.mux.job(job_id)
        if job is None:
            raise ContractError("not_found", f"no job {job_id!r}", status=404)
        return job

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        return self.mux.jobs(tenant)

    def cancel(self, job_id: str, tenant: str) -> JobRecord:
        """Cancel ``job_id`` if it belongs to ``tenant``.

        In-flight tasks drain into the store first (resume hits for a
        resubmission); the terminal ``cancelled`` job event reaches
        subscribers from the scheduler loop once the drain completes.
        """
        job = self.job(job_id)
        if job.tenant != tenant:
            raise ContractError(
                "wrong_tenant",
                f"job {job_id!r} belongs to tenant {job.tenant!r}",
                status=403,
            )
        self.mux.cancel(job_id)
        return job

    def workers(self) -> Dict[str, Any]:
        """The worker-fleet envelope for ``GET /v1/workers``.

        ``fleet()`` is a read-only snapshot on both pool flavours, safe
        to call from handler threads while the scheduler polls.
        """
        return fleet_view(self.mux.pool)

    def slo(self) -> Dict[str, Any]:
        """The percentile SLO envelope for ``GET /v1/slo``.

        Computed from the tracer's bounded window of finished spans —
        exact nearest-rank percentiles, not sketch estimates.  Cheap
        enough for a dashboard poll; answers with empty buckets when
        tracing is off.
        """
        return slo_view(_tracing.TRACER.slo())

    def campaigns(self) -> Dict[str, Any]:
        """The campaign catalogue envelope for ``GET /v1/campaigns``."""
        from repro.serve.contracts import SCHEMA

        return {
            "schema": SCHEMA,
            "campaigns": [
                self.registry[name].to_dict() for name in sorted(self.registry)
            ],
        }

    def subscribe(self, job_id: Optional[str] = None) -> Subscription:
        """Register an event queue; ``job_id`` filters to one job's events.

        A per-job subscription is primed with the job's current state so
        a watcher attaching after completion still gets (exactly) the
        terminal event.  Pair with :meth:`unsubscribe`.
        """
        sub = Subscription(job_id)
        if job_id is not None:
            job = self.job(job_id)  # not_found propagates before attach
            sub.push("job", json.dumps(job_view(job)), done=job.terminal)
        with self._subs_lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._subs_lock:
            if sub in self._subs:
                self._subs.remove(sub)

    # -- scheduler loop (one thread) -----------------------------------------

    def _loop(self) -> None:
        next_snap = time.monotonic()
        fleet_digest: Optional[Tuple[Any, ...]] = None
        while not self._stop.is_set():
            changed = self.mux.step(wait=0.2)
            for job in changed:
                self._broadcast_job(job)
            digest = self._fleet_digest()
            if digest != fleet_digest:
                fleet_digest = digest
                self._broadcast_workers()
            now = time.monotonic()
            if changed or now >= next_snap:
                self._broadcast_snapshot()
                next_snap = now + self.snapshot_interval

    def _fleet_digest(self) -> Tuple[Any, ...]:
        # Heartbeat latencies jitter every pong; digest only the fields
        # whose change is worth an SSE event.
        pool = self.mux.pool
        rows = pool.fleet() if hasattr(pool, "fleet") else []
        return tuple(
            (r.get("id"), r.get("state"), r.get("current"), r.get("tasks_done"))
            for r in rows
        )

    def _broadcast_workers(self) -> None:
        data = json.dumps(fleet_view(self.mux.pool), sort_keys=True)
        with self._subs_lock:
            subs = [s for s in self._subs if s.job_id is None]
        for sub in subs:
            sub.push("workers", data)

    def _broadcast_job(self, job: JobRecord) -> None:
        data = json.dumps(job_view(job), sort_keys=True)
        with self._subs_lock:
            subs = list(self._subs)
        for sub in subs:
            if sub.job_id is None:
                sub.push("job", data)
            elif sub.job_id == job.id:
                sub.push("job", data, done=job.terminal)

    def _broadcast_snapshot(self, final: bool = False) -> None:
        now = time.monotonic()
        snap = MetricsSnapshot.capture(
            seq=self._snap_seq,
            t_wall=self._t0_wall + (now - self._t0),
            t_rel=now - self._t0,
            final=final,
        )
        self._snap_seq += 1
        data = json.dumps(snap.to_dict(), sort_keys=True)
        if self._metrics_path is not None:
            if self._metrics_fh is None:
                parent = os.path.dirname(os.path.abspath(self._metrics_path))
                os.makedirs(parent, exist_ok=True)
                self._metrics_fh = open(self._metrics_path, "w", encoding="utf-8")
            self._metrics_fh.write(data + "\n")
            self._metrics_fh.flush()
        with self._subs_lock:
            subs = [s for s in self._subs if s.job_id is None]
        for sub in subs:
            sub.push("snapshot", data)
