"""Server-Sent Events framing: the writer-side formatter and a parser.

SSE frames are text blocks separated by a blank line; each block carries
``event:`` / ``data:`` field lines (https://html.spec.whatwg.org/
multipage/server-sent-events.html).  The service writes frames with
:func:`format_sse_event`; :func:`iter_sse` parses a *chunk stream* back
into events with the same torn-tail tolerance as
:func:`repro.obs.snapshot.read_snapshots`: chunks may split anywhere —
mid-line, mid-frame — and an incomplete trailing frame (the connection
died mid-write) is dropped rather than surfaced half-parsed.

Only the fields the service emits are interpreted (``event``, ``data``,
``id``); comment lines (leading ``:``, used as keep-alives) and unknown
fields are ignored per the spec.  Multi-line ``data`` joins with ``\\n``,
also per the spec.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

__all__ = ["format_sse_event", "iter_sse"]


def format_sse_event(
    data: str, event: Optional[str] = None, event_id: Optional[str] = None
) -> str:
    """One wire-ready SSE frame (trailing blank line included).

    ``data`` may span lines; each becomes its own ``data:`` field line so
    a conforming parser reassembles the original string exactly.
    """
    parts = []
    if event_id is not None:
        parts.append(f"id: {event_id}")
    if event is not None:
        parts.append(f"event: {event}")
    for line in data.split("\n"):
        parts.append(f"data: {line}")
    return "\n".join(parts) + "\n\n"


def iter_sse(chunks: Iterable[str]) -> Iterator[Dict[str, str]]:
    """Parse a chunked SSE byte-stream's text into event dicts.

    Yields ``{"event": name, "data": payload}`` (plus ``"id"`` when sent)
    per complete frame; ``event`` defaults to ``"message"`` per the spec.
    Tolerates arbitrary chunk boundaries and drops an unterminated final
    frame, mirroring ``read_snapshots`` skipping a torn JSONL tail.
    """
    buffer = ""
    fields: Dict[str, str] = {}
    data_lines: list = []

    def flush() -> Optional[Dict[str, str]]:
        if not fields and not data_lines:
            return None
        out = {
            "event": fields.get("event", "message"),
            "data": "\n".join(data_lines),
        }
        if "id" in fields:
            out["id"] = fields["id"]
        fields.clear()
        del data_lines[:]
        return out

    for chunk in chunks:
        buffer += chunk
        while True:
            newline = buffer.find("\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1:]
            line = line.rstrip("\r")
            if not line:
                event = flush()
                if event is not None:
                    yield event
                continue
            if line.startswith(":"):
                continue  # comment / keep-alive
            name, sep, value = line.partition(":")
            if not sep:
                name, value = line, ""
            elif value.startswith(" "):
                value = value[1:]
            if name == "data":
                data_lines.append(value)
            elif name in ("event", "id"):
                fields[name] = value
    # Anything still buffered lacks its terminating blank line: a torn
    # frame from a dead writer.  Drop it.
