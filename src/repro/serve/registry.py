"""The catalogue of campaigns a tenant may submit by name.

The service never accepts code over the wire — a submission names one of
the entries below and supplies builder options, which are validated
against a typed, bounded :class:`OptionSpec` list before
:func:`repro.sched.campaigns.build_campaign` ever sees them.  The
defaults and bounds keep a shared service healthy: the demo campaign is
capped at 256 points, chaos at a 64-case budget, and the Table 1 /
Section 8 suites run their stock grids (no tenant-supplied sizes — those
are the expensive, curated reproduction runs).

:func:`default_registry` builds the registry over
:data:`repro.sched.campaigns.CAMPAIGNS`; a test can pass the service a
trimmed registry to keep fixtures fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.sched.campaign import Campaign
from repro.sched.campaigns import build_campaign
from repro.serve.contracts import ContractError

__all__ = ["OptionSpec", "CampaignEntry", "default_registry"]


@dataclass(frozen=True)
class OptionSpec:
    """One typed, bounded builder option.

    ``kind`` is ``"int"`` or ``"float"``; bounds are inclusive and
    ``None`` means unbounded on that side.  Validation coerces JSON
    numbers (an ``int`` is accepted where a ``float`` is declared, never
    the reverse) and raises :class:`ContractError` (``"bad_option"``) on
    anything else.
    """

    name: str
    kind: str
    default: Any
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ValueError(f"option kind must be 'int' or 'float', got {self.kind!r}")

    def validate(self, value: Any) -> Any:
        if self.kind == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                raise ContractError(
                    "bad_option",
                    f"option {self.name!r} must be an integer, got {value!r}",
                )
        else:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ContractError(
                    "bad_option",
                    f"option {self.name!r} must be a number, got {value!r}",
                )
            value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise ContractError(
                "bad_option",
                f"option {self.name!r} must be >= {self.minimum}, got {value}",
            )
        if self.maximum is not None and value > self.maximum:
            raise ContractError(
                "bad_option",
                f"option {self.name!r} must be <= {self.maximum}, got {value}",
            )
        return value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "default": self.default,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "help": self.help,
        }


@dataclass(frozen=True)
class CampaignEntry:
    """One submittable campaign: a name, a summary, and its options."""

    name: str
    summary: str
    options: Tuple[OptionSpec, ...] = ()

    def build(self, options: Mapping[str, Any]) -> Campaign:
        """Validate ``options`` and build the campaign graph."""
        known = {spec.name: spec for spec in self.options}
        unknown = sorted(set(options) - set(known))
        if unknown:
            allowed = ", ".join(sorted(known)) or "(none)"
            raise ContractError(
                "bad_option",
                f"campaign {self.name!r} has no option(s) {', '.join(unknown)}; "
                f"allowed: {allowed}",
            )
        kwargs = {
            name: spec.validate(options[name])
            for name, spec in known.items()
            if name in options
        }
        return build_campaign(self.name, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "summary": self.summary,
            "options": [spec.to_dict() for spec in self.options],
        }


def default_registry() -> Dict[str, CampaignEntry]:
    """The shipped catalogue over :data:`repro.sched.campaigns.CAMPAIGNS`."""
    entries = [
        CampaignEntry(
            "demo",
            "fan-out/fan-in demo graph: N simulated points plus a summary task",
            (
                OptionSpec("points", "int", 8, minimum=1, maximum=256,
                           help="number of fan-out points"),
                OptionSpec("delay", "float", 0.05, minimum=0.0, maximum=2.0,
                           help="per-point simulated latency (seconds)"),
            ),
        ),
        CampaignEntry(
            "table1",
            "the four Table 1 benchmark drivers at their stock grid",
        ),
        CampaignEntry(
            "section8",
            "the Section 8 experiment suite at its stock grid",
        ),
        CampaignEntry(
            "cross_model",
            "the cross-model table: each problem on all 7 cost models "
            "(QSM, s-QSM, QSM(g,d), BSP, PRAM, MPC, PEM) at the stock grid",
        ),
        CampaignEntry(
            "chaos",
            "the robustness gate: algorithms under adversarial policies",
            (
                OptionSpec("n", "int", 64, minimum=8, maximum=512,
                           help="problem size per case"),
                OptionSpec("seed", "int", 0, help="base RNG seed"),
                OptionSpec("budget", "int", 24, minimum=1, maximum=64,
                           help="number of chaos cases"),
                OptionSpec("max_attempts", "int", 3, minimum=1, maximum=10,
                           help="retries per case"),
            ),
        ),
    ]
    return {entry.name: entry for entry in entries}
