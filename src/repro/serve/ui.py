"""The live status page: one self-contained HTML string, no build step.

Served at ``GET /``.  The page opens an ``EventSource`` on
``/v1/events`` and renders the two event kinds the service broadcasts:
``job`` envelopes update the jobs table, ``snapshot`` payloads
(``repro.metrics/1``) update the counters strip — done/cached/failed
task totals, store hit-rate, pool in-flight — the same numbers
``python -m repro campaign status --follow`` prints, just in a browser.
A second strip polls ``GET /v1/slo`` every few seconds for the
percentile latencies (task p50/p95/p99 and end-to-end p95) computed
from trace spans; it stays dashed when the service runs without
``REPRO_TRACE``.  Everything inline (CSS and JS), zero external
requests, so the page works from a curl-saved file as well as from the
server.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """\
<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro campaign service</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem; background: #101418; color: #d8dee6; }
  h1 { font-size: 1.1rem; letter-spacing: .04em; }
  .strip { display: flex; gap: 2rem; margin: 1rem 0; flex-wrap: wrap; }
  .stat { background: #1a2028; padding: .6rem 1rem; border-radius: 6px; }
  .stat b { display: block; font-size: 1.4rem; }
  .stat span { font-size: .75rem; color: #8a94a3; }
  table { border-collapse: collapse; width: 100%; margin-top: 1rem; }
  th, td { text-align: left; padding: .35rem .7rem; font-size: .85rem;
           border-bottom: 1px solid #242c36; }
  th { color: #8a94a3; font-weight: normal; }
  .state-done { color: #6fd08c; } .state-failed { color: #e06c75; }
  .state-running { color: #61afef; } .state-cancelled { color: #c8a35f; }
  .state-queued { color: #8a94a3; }
  #link { color: #8a94a3; font-size: .75rem; }
</style>
</head>
<body>
<h1>repro campaign service</h1>
<div id="link">live via /v1/events (SSE, repro.serve/1 + repro.metrics/1)</div>
<div class="strip">
  <div class="stat"><b id="done">0</b><span>tasks done</span></div>
  <div class="stat"><b id="cached">0</b><span>tasks cached</span></div>
  <div class="stat"><b id="failed">0</b><span>tasks failed</span></div>
  <div class="stat"><b id="hitrate">-</b><span>store hit-rate</span></div>
  <div class="stat"><b id="inflight">0</b><span>pool in-flight</span></div>
</div>
<div class="strip" id="slo-strip" title="from trace spans (REPRO_TRACE)">
  <div class="stat"><b id="slo-task-p50">-</b><span>task p50 (s)</span></div>
  <div class="stat"><b id="slo-task-p95">-</b><span>task p95 (s)</span></div>
  <div class="stat"><b id="slo-task-p99">-</b><span>task p99 (s)</span></div>
  <div class="stat"><b id="slo-e2e-p95">-</b><span>end-to-end p95 (s)</span></div>
</div>
<table>
  <thead><tr>
    <th>job</th><th>tenant</th><th>campaign</th><th>state</th>
    <th>tasks</th><th>counts</th><th>error</th>
  </tr></thead>
  <tbody id="jobs"></tbody>
</table>
<script>
  const jobs = new Map();
  function metricValue(metrics, name, want) {
    const m = metrics.find(x => x.name === name);
    if (!m) return 0;
    let total = 0;
    for (const s of (m.samples || [])) {
      const labels = s.labels || {};
      let ok = true;
      for (const k in (want || {})) if (labels[k] !== want[k]) ok = false;
      if (ok) total += s.value || 0;
    }
    return total;
  }
  function renderJobs() {
    const body = document.getElementById("jobs");
    body.innerHTML = "";
    for (const job of [...jobs.values()].sort((a, b) => a.id < b.id ? -1 : 1)) {
      const tr = document.createElement("tr");
      const counts = Object.entries(job.counts || {})
        .map(([k, v]) => k + ":" + v).join(" ");
      tr.innerHTML =
        `<td>${job.id}</td><td>${job.tenant}</td><td>${job.campaign}</td>` +
        `<td class="state-${job.state}">${job.state}</td>` +
        `<td>${job.tasks}</td><td>${counts}</td><td>${job.error || ""}</td>`;
      body.appendChild(tr);
    }
  }
  const source = new EventSource("/v1/events");
  source.addEventListener("job", e => {
    const view = JSON.parse(e.data);
    jobs.set(view.job.id, view.job);
    renderJobs();
  });
  source.addEventListener("snapshot", e => {
    const snap = JSON.parse(e.data);
    const m = snap.metrics || [];
    document.getElementById("done").textContent =
      metricValue(m, "repro_campaign_tasks_total", {status: "done"});
    document.getElementById("cached").textContent =
      metricValue(m, "repro_campaign_tasks_total", {status: "cached"});
    document.getElementById("failed").textContent =
      metricValue(m, "repro_campaign_tasks_total", {status: "failed"});
    const hits = metricValue(m, "repro_store_hits_total");
    const misses = metricValue(m, "repro_store_misses_total");
    document.getElementById("hitrate").textContent =
      (hits + misses) ? Math.round(100 * hits / (hits + misses)) + "%" : "-";
    document.getElementById("inflight").textContent =
      metricValue(m, "repro_serve_pool_in_flight");
  });
  function fmtSeconds(v) {
    return (v === undefined || v === null) ? "-" : v.toFixed(3);
  }
  async function pollSlo() {
    try {
      const resp = await fetch("/v1/slo");
      const slo = (await resp.json()).slo || {};
      const task = slo.task || {}, e2e = slo.end_to_end || {};
      document.getElementById("slo-task-p50").textContent = fmtSeconds(task.p50);
      document.getElementById("slo-task-p95").textContent = fmtSeconds(task.p95);
      document.getElementById("slo-task-p99").textContent = fmtSeconds(task.p99);
      document.getElementById("slo-e2e-p95").textContent = fmtSeconds(e2e.p95);
    } catch (err) { /* service restarting; keep the last numbers */ }
  }
  pollSlo();
  setInterval(pollSlo, 5000);
</script>
</body>
</html>
"""
