"""The stdlib HTTP front end for :class:`~repro.serve.service.CampaignService`.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` — no frameworks.
Each handler thread does contract work only (parse, validate, respond);
all scheduling stays on the service's single scheduler thread, which the
handlers reach through the multiplexer's lock-safe calls.  Routes:

======  ==============================  =======================================
GET     ``/``                           the live dashboard (single HTML page)
GET     ``/healthz``                    liveness probe (plain ``ok``)
GET     ``/v1/campaigns``               the submittable-campaign catalogue
POST    ``/v1/jobs``                    submit (``repro.serve/1`` body)
GET     ``/v1/jobs``                    this tenant's jobs (``?all=1``: every)
GET     ``/v1/jobs/<id>``               one job envelope
DELETE  ``/v1/jobs/<id>``               cancel (tenant-checked)
GET     ``/v1/workers``                 the worker-fleet envelope
GET     ``/v1/slo``                     percentile latency SLOs (tracing)
GET     ``/v1/events``                  global SSE: ``job``/``snapshot``/``workers``
GET     ``/v1/jobs/<id>/events``        one job's SSE; closes on terminal
======  ==============================  =======================================

On traced runs (``REPRO_TRACE``, :mod:`repro.obs.tracing`) every
``POST /v1/jobs`` opens a ``request`` span — joining an inbound W3C
``traceparent`` header's trace when one is present — and the job
admitted under it inherits the trace, so the response envelope's
``trace_id`` names the whole tree down to per-phase cost records.

The tenant is the ``X-Repro-Tenant`` header (default ``anonymous``).  A
per-job stream accepts ``?cancel_on_disconnect=1``: if the watching
tenant's connection drops mid-campaign, the job is cancelled — in-flight
tasks drain into the store, so a resubmission resumes (docs/SERVICE.md,
"Failure semantics").  Disconnects surface as ``BrokenPipeError`` /
``ConnectionResetError`` on the SSE write; keep-alive comment frames
(``: ping``) make sure an idle stream notices within a few seconds.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import tracing as _tracing
from repro.serve.contracts import (
    DEFAULT_TENANT,
    TENANT_HEADER,
    ContractError,
    SubmitRequest,
    job_view,
    jobs_view,
)
from repro.serve.service import CampaignService
from repro.serve.sse import format_sse_event
from repro.serve.ui import DASHBOARD_HTML

__all__ = ["ServeHandler", "create_server", "serve_forever"]

#: Seconds between keep-alive comments on an idle SSE stream.  Also the
#: disconnect-detection latency: a dead socket only surfaces on a write,
#: so a vanished ``cancel_on_disconnect`` watcher is noticed within about
#: this long.
_KEEPALIVE = 1.0

#: Cap on request bodies; campaign submissions are tiny.
_MAX_BODY = 1 << 20


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.service``."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        log = getattr(self.server, "log", None)
        if log is not None:
            log(f"{self.address_string()} {format % args}")

    def _tenant(self) -> str:
        return self.headers.get(TENANT_HEADER, "").strip() or DEFAULT_TENANT

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ContractError) -> None:
        self._send_json(exc.to_dict(), status=exc.status)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ContractError("bad_request", "request body required")
        if length > _MAX_BODY:
            raise ContractError("bad_request", "request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ContractError("bad_request", "request body is not valid JSON")

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:
        path, query = self._route()
        try:
            if path == "/healthz":
                body = b"ok\n"
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif path == "/":
                body = DASHBOARD_HTML.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif path == "/v1/campaigns":
                self._send_json(self.service.campaigns())
            elif path == "/v1/jobs":
                tenant = None if query.get("all") else self._tenant()
                self._send_json(jobs_view(self.service.jobs(tenant)))
            elif path == "/v1/workers":
                self._send_json(self.service.workers())
            elif path == "/v1/slo":
                self._send_json(self.service.slo())
            elif path == "/v1/events":
                self._stream_events(job_id=None, query=query)
            elif path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/events"):
                    self._stream_events(job_id=rest[: -len("/events")], query=query)
                elif "/" not in rest:
                    self._send_json(job_view(self.service.job(rest)))
                else:
                    raise ContractError("not_found", f"no route {path!r}", status=404)
            else:
                raise ContractError("not_found", f"no route {path!r}", status=404)
        except ContractError as exc:
            self._send_error(exc)

    def do_POST(self) -> None:
        path, _ = self._route()
        try:
            if path != "/v1/jobs":
                raise ContractError("not_found", f"no route {path!r}", status=404)
            request = SubmitRequest.from_dict(self._read_json())
            # The root of the distributed trace: a submit under an
            # inbound W3C ``traceparent`` joins the caller's trace,
            # otherwise this request span starts a fresh one.
            span = None
            if _tracing.TRACER.enabled:
                span = _tracing.TRACER.start_span(
                    "POST /v1/jobs", kind="request",
                    parent=_tracing.parse_traceparent(
                        self.headers.get("traceparent")
                    ),
                    attrs={
                        "method": "POST",
                        "path": path,
                        "tenant": self._tenant(),
                        "campaign": request.campaign,
                    },
                )
            status = "ok"
            try:
                job = self.service.submit(
                    self._tenant(), request,
                    parent=None if span is None else span.context,
                )
                if span is not None:
                    span.attrs["job"] = job.id
                self._send_json(job_view(job), status=201)
            except ContractError:
                status = "error"
                raise
            finally:
                if span is not None:
                    _tracing.TRACER.finish(span, status=status)
        except ContractError as exc:
            self._send_error(exc)

    def do_DELETE(self) -> None:
        path, _ = self._route()
        try:
            if not path.startswith("/v1/jobs/") or "/" in path[len("/v1/jobs/"):]:
                raise ContractError("not_found", f"no route {path!r}", status=404)
            job = self.service.cancel(path[len("/v1/jobs/"):], self._tenant())
            self._send_json(job_view(job))
        except ContractError as exc:
            self._send_error(exc)

    # -- SSE -----------------------------------------------------------------

    def _stream_events(self, job_id: Optional[str], query: Dict[str, Any]) -> None:
        cancel_on_disconnect = query.get("cancel_on_disconnect") in ("1", "true")
        sub = self.service.subscribe(job_id)  # raises not_found first
        tenant = self._tenant()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        disconnected = False
        try:
            while True:
                item = sub.get(timeout=_KEEPALIVE)
                if item is None:
                    self.wfile.write(b": ping\n\n")
                    self.wfile.flush()
                    continue
                event, data, done = item
                self.wfile.write(
                    format_sse_event(data, event=event).encode("utf-8")
                )
                self.wfile.flush()
                if done and job_id is not None:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            disconnected = True
        finally:
            self.service.unsubscribe(sub)
            if disconnected and cancel_on_disconnect and job_id is not None:
                try:
                    self.service.cancel(job_id, tenant)
                except ContractError:
                    pass  # already terminal, or not this tenant's job
            # SSE owns the connection; never reuse it for another request.
            self.close_connection = True


def create_server(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    log: Optional[Any] = None,
) -> ThreadingHTTPServer:
    """Bind a threading server wired to ``service`` (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.log = log  # type: ignore[attr-defined]
    return server


def serve_forever(server: ThreadingHTTPServer) -> None:
    """Run until interrupted, then stop the service cleanly."""
    service: CampaignService = server.service  # type: ignore[attr-defined]
    service.start()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        service.stop()
