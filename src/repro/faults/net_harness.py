"""The network chaos harness: the TCP fabric vs injected link faults.

Each :class:`NetChaosCase` boots a real fleet — a
:class:`~repro.sched.net.pool.RemoteWorkerPool`, worker subprocesses,
and (for the fault cases) a :class:`~repro.sched.net.proxy.ChaosProxy`
between them — runs a fixed point set through it while the case's fault
fires, and holds the run to two invariants:

* **zero lost tasks** — every submitted point resolves ``ok``; a lost
  or partitioned worker's in-flight points requeue and complete
  elsewhere (or on the worker itself after it reconnects);
* **bit-identical results** — each point's outcome dict equals a
  fault-free serial run of the same task function, compared whole.

The shipped cases (:func:`default_net_cases`) cover the failure matrix
of docs/DISTRIBUTED.md:

==============================  =========================================
case                            what it injects
==============================  =========================================
``partition-mid-superstep``     a partition window opens on the first
                                result frame (the frame is lost inside
                                it); the worker is declared lost, its
                                points requeue, and it re-registers
                                after the window heals
``reconnect-after-requeue``     the link is torn on a result frame; the
                                worker redials and the requeued point
                                completes
``split-brain-registration``    a second worker registers mid-run under
                                a live name; the older registration is
                                evicted, its in-flight point requeues
``sigkill-mid-campaign``        one worker is SIGKILLed mid-task
``sigkill-plus-partition``      the acceptance case: a store-backed
                                campaign with one worker SIGKILLed and
                                another partitioned must complete with
                                outcomes bit-identical to serial
==============================  =========================================

Results reuse :class:`~repro.faults.harness.ProbeResult` /
:class:`~repro.faults.harness.ChaosReport`, so
:func:`~repro.faults.harness.render_chaos_report` renders both suites.
``python -m repro chaos --net`` drives this; ``--fault-log`` threads a
JSONL path into every case's proxy, producing the frame-level artifact
the CI ``chaos-net`` job uploads.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.faults.harness import ChaosReport, ProbeResult
from repro.faults.net import NetFault, NetFaultPlan
from repro.sched.net.pool import RemoteWorkerPool
from repro.sched.net.proxy import ChaosProxy
from repro.sched.net.worker import spawn_local_workers

__all__ = [
    "NetChaosCase",
    "chaos_point_task",
    "default_net_cases",
    "run_net_chaos_suite",
    "serial_reference",
]

#: Pool timings every case runs with: fast heartbeats so loss detection,
#: requeue, and reconnect all resolve inside a few seconds.
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_TIMEOUT = 0.75
PARTITION_S = 1.5
TASK_DELAY = 0.25


@dataclass(frozen=True)
class NetChaosCase:
    """One fleet-level chaos scenario.

    ``run(points, fault_log)`` executes the scenario and returns a note
    string (extra facts for the report row); it raises ``AssertionError``
    with a diagnosis when an invariant breaks.
    """

    name: str
    run: Callable[[int, Optional[str]], str]


def chaos_point_task(n: int = 64, delay: float = 0.25) -> Dict[str, Any]:
    """One chaos point: a parity run whose outcome is *fully deterministic*.

    Unlike :func:`~repro.sched.campaigns.demo_task` it carries no
    measured wall times, so the distributed outcome can be compared
    bit-for-bit against a serial run of the same call.  Module-level so
    it pickles across the socket.
    """
    from repro.algorithms.parity import parity_tree
    from repro.core import SQSM, SQSMParams
    from repro.problems import gen_bits, verify_parity

    bits = gen_bits(n, seed=n)
    machine = SQSM(SQSMParams(g=4.0))
    result = parity_tree(machine, bits)
    if delay > 0:
        time.sleep(delay)
    return {
        "measured": float(result.time),  # simulated time: deterministic
        "parity": int(result.value),
        "correct": bool(verify_parity(bits, result.value)),
        "n": n,
    }


def point_kwargs(i: int) -> Dict[str, Any]:
    """Point ``i``'s task kwargs (distinct ``n`` => distinct outcomes)."""
    return {"n": 32 + 16 * i, "delay": TASK_DELAY}


def serial_reference(points: int) -> Dict[str, Dict[str, Any]]:
    """The fault-free truth: every point run inline, no pool, no network."""
    return {f"p{i}": chaos_point_task(**point_kwargs(i)) for i in range(points)}


def _drain_all(
    pool: RemoteWorkerPool,
    want: int,
    timeout: float,
    done: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    done = {} if done is None else done
    deadline = time.monotonic() + timeout
    while len(done) < want and time.monotonic() < deadline:
        for event in pool.events(wait=0.2):
            done[event.key] = event
    return done


def _reap(procs: Sequence[Any]) -> None:
    for proc in procs:
        try:
            proc.wait(timeout=5.0)
        except Exception:
            proc.kill()
            try:
                proc.wait(timeout=5.0)
            except Exception:
                pass


def _assert_identical(done: Dict[str, Any], reference: Dict[str, Dict[str, Any]]) -> None:
    lost = sorted(set(reference) - set(done))
    assert not lost, f"lost tasks (never resolved): {lost}"
    bad_status = sorted(k for k, e in done.items() if e.status != "ok")
    assert not bad_status, (
        f"tasks resolved non-ok: "
        f"{[(k, done[k].status, done[k].payload) for k in bad_status]}"
    )
    for key, truth in reference.items():
        got = done[key].payload
        assert got == truth, f"{key}: distributed outcome differs from serial run"


def _assert_fault_log_tail(
    fault_log: Optional[str], case: str, expected: int
) -> None:
    """The frame log's durability invariant: nothing buffered, nothing torn.

    The proxy fsyncs each verdict line before forwarding (or killing)
    the frame it describes, so after a case — however violently it ended
    — the log must hold *every* line the proxy allocated a sequence
    number for, each one complete JSON, in sequence order.  A tail
    swallowed by stdio buffering or a torn last line fails here.
    """
    if not fault_log or expected <= 0:
        return
    rows: List[Dict[str, Any]] = []
    with open(fault_log, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                raise AssertionError(
                    f"{fault_log}:{lineno}: torn/invalid fault-log line"
                )
            if row.get("case") == case:
                rows.append(row)
    assert len(rows) == expected, (
        f"fault log holds {len(rows)} line(s) for {case!r}, "
        f"proxy wrote {expected} — tail lost"
    )
    seqs = [int(r.get("seq", -1)) for r in rows]
    assert seqs == list(range(1, expected + 1)), (
        f"fault-log seq order broken for {case!r}: {seqs}"
    )


def _run_through_proxy(
    points: int,
    fault_log: Optional[str],
    case: str,
    plan: NetFaultPlan,
    workers: int = 3,
    mid_run: Optional[
        Callable[[RemoteWorkerPool, List[Any], Dict[str, Any]], str]
    ] = None,
    timeout: float = 30.0,
) -> str:
    """The shared scenario body: pool <- proxy <- ``workers`` workers.

    Submits every point, optionally runs ``mid_run`` once the first
    dispatches have landed, drains to completion, and checks the two
    invariants against :func:`serial_reference`.
    """
    reference = serial_reference(points)
    note = ""
    with RemoteWorkerPool(
        jobs=workers,
        heartbeat_interval=HEARTBEAT_INTERVAL,
        heartbeat_timeout=HEARTBEAT_TIMEOUT,
    ) as pool:
        with ChaosProxy(
            pool.address, plan=plan, log_path=fault_log, log_label=case
        ) as proxy:
            procs = spawn_local_workers(
                proxy.address, workers, name_prefix=f"{case}-w",
                connect_timeout=1.0,
            )
            try:
                deadline = time.monotonic() + 10.0
                while len(pool.registry.live()) < workers:
                    pool.events(wait=0.1)
                    if time.monotonic() > deadline:
                        raise AssertionError("workers never registered")
                for i in range(points):
                    pool.submit(f"p{i}", chaos_point_task, point_kwargs(i))
                done: Dict[str, Any] = {}
                for event in pool.events(wait=0.3):  # first dispatches land
                    done[event.key] = event
                if mid_run is not None:
                    # The hook polls the pool itself; completions that
                    # land during it are collected, not swallowed.
                    note = mid_run(pool, procs, done)
                _drain_all(pool, points, timeout, done)
                _assert_identical(done, reference)
                stats = pool.stats
                note = "; ".join(
                    part for part in (
                        note,
                        f"requeues={stats['requeues']}",
                        f"lost={stats['workers_lost']}",
                        f"reconnected={stats['workers_reconnected']}",
                        f"faults_fired={plan.fired}",
                    ) if part
                )
            finally:
                pool.shutdown()
                _reap(procs)
    # The proxy is closed now: its sequence counter is final, so the
    # file must hold exactly that many well-formed lines for this case.
    _assert_fault_log_tail(fault_log, case, proxy.log_lines)
    return note


# -- the shipped cases ------------------------------------------------------


def _case_partition(points: int, fault_log: Optional[str]) -> str:
    # The first c2s result frame trips a partition; the frame itself is
    # inside the window, so a genuinely computed result is lost and its
    # point MUST requeue to survive.
    plan = NetFaultPlan(
        [NetFault("partition", direction="c2s", frame="ok", duration_s=PARTITION_S)],
        label="partition-mid-superstep",
    )
    note = _run_through_proxy(points, fault_log, "partition-mid-superstep", plan)
    assert plan.fired >= 1, "partition never fired"
    return note


def _case_reconnect(points: int, fault_log: Optional[str]) -> str:
    # Tear the link carrying the second result frame: the result is
    # lost, the pool requeues, the worker redials through the proxy.
    plan = NetFaultPlan(
        [NetFault("reconnect", direction="c2s", frame="ok", nth=2)],
        label="reconnect-after-requeue",
    )
    note = _run_through_proxy(points, fault_log, "reconnect-after-requeue", plan)
    assert plan.fired >= 1, "reconnect fault never fired"
    return note


def _case_split_brain(points: int, fault_log: Optional[str]) -> str:
    def usurp(pool: RemoteWorkerPool, procs: List[Any], done: Dict[str, Any]) -> str:
        # A second worker claims a live name (connecting straight to the
        # pool — the split is about identity, not the link): the older
        # registration must be evicted and its in-flight point salvaged.
        victim = pool.registry.live()[0].name
        procs.extend(_spawn_named(pool.address, victim))
        deadline = time.monotonic() + 10.0
        while True:
            for event in pool.events(wait=0.1):
                done[event.key] = event
            holder = pool.registry.by_name(victim)
            if holder is not None and holder.generation >= 2:
                return f"evicted gen-1 {victim}"
            if time.monotonic() > deadline:
                raise AssertionError("usurper never registered")

    plan = NetFaultPlan(label="split-brain-registration")  # no link faults
    note = _run_through_proxy(
        points, fault_log, "split-brain-registration", plan, mid_run=usurp
    )
    return note


def _spawn_named(address: Any, name: str) -> List[Any]:
    host, port = address
    import subprocess
    import sys

    from repro.sched.net import worker as worker_mod

    code = (
        "import sys; from repro.sched.net.worker import run_worker; "
        f"sys.exit(run_worker({host!r}, {port}, name={name!r}, "
        "reconnect=True, connect_timeout=1.0))"
    )
    import os
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(worker_mod.__file__)))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return [subprocess.Popen([sys.executable, "-c", code], env=env)]


def _case_sigkill(points: int, fault_log: Optional[str]) -> str:
    def kill_one(pool: RemoteWorkerPool, procs: List[Any], done: Dict[str, Any]) -> str:
        procs[0].kill()
        return "SIGKILLed 1 worker"

    plan = NetFaultPlan(label="sigkill-mid-campaign")
    return _run_through_proxy(
        points, fault_log, "sigkill-mid-campaign", plan, mid_run=kill_one
    )


def _case_sigkill_plus_partition(points: int, fault_log: Optional[str]) -> str:
    """The acceptance case, store-backed: SIGKILL one worker, partition
    the fabric, and require the campaign's stored outcomes bit-identical
    to a fault-free serial run."""
    import tempfile

    from repro.sched.campaign import Campaign, TaskSpec, run_campaign
    from repro.sched.store import ResultStore

    reference = serial_reference(points)
    # Campaign-level retries on top of the pool's delivery budget: a
    # point unlucky enough to be lost to both the kill and the partition
    # gets re-submitted with a fresh budget, like any crashed task.
    tasks = [
        TaskSpec(f"p{i}", chaos_point_task, point_kwargs(i), retries=2)
        for i in range(points)
    ]
    campaign = Campaign("chaos-net", tasks)
    plan = NetFaultPlan(label="sigkill-plus-partition")
    with tempfile.TemporaryDirectory(prefix="chaos-net-store-") as root:
        store = ResultStore(root)
        with RemoteWorkerPool(
            jobs=3,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_timeout=HEARTBEAT_TIMEOUT,
        ) as pool:
            with ChaosProxy(
                pool.address, plan=plan, log_path=fault_log,
                log_label="sigkill-plus-partition",
            ) as proxy:
                procs = spawn_local_workers(
                    proxy.address, 3, name_prefix="accept-w", connect_timeout=1.0,
                )
                try:
                    deadline = time.monotonic() + 10.0
                    while len(pool.registry.live()) < 3:
                        pool.events(wait=0.1)
                        if time.monotonic() > deadline:
                            raise AssertionError("workers never registered")

                    import threading

                    def sabotage() -> None:
                        time.sleep(3 * TASK_DELAY / 2)  # mid-campaign
                        procs[0].kill()
                        proxy.partition(PARTITION_S)

                    saboteur = threading.Thread(target=sabotage, daemon=True)
                    saboteur.start()
                    report = run_campaign(campaign, store, pool=pool)
                    saboteur.join()
                    assert report.ok, f"campaign failed: {report.counts}"
                    for i in range(points):
                        key = store.key_for(chaos_point_task, point_kwargs(i))
                        outcome = store.get_outcome(key)
                        assert outcome is not None, f"p{i} missing from store"
                        assert outcome == reference[f"p{i}"], (
                            f"p{i}: stored outcome differs from serial run"
                        )
                    stats = pool.stats
                    note = (
                        f"store-backed; requeues={stats['requeues']}; "
                        f"lost={stats['workers_lost']}; "
                        f"reconnected={stats['workers_reconnected']}"
                    )
                finally:
                    pool.shutdown()
                    _reap(procs)
    _assert_fault_log_tail(
        fault_log, "sigkill-plus-partition", proxy.log_lines
    )
    return note


def default_net_cases() -> List[NetChaosCase]:
    """The shipped fleet-chaos scenarios, cheapest first."""
    return [
        NetChaosCase("sigkill-mid-campaign", _case_sigkill),
        NetChaosCase("reconnect-after-requeue", _case_reconnect),
        NetChaosCase("split-brain-registration", _case_split_brain),
        NetChaosCase("partition-mid-superstep", _case_partition),
        NetChaosCase("sigkill-plus-partition", _case_sigkill_plus_partition),
    ]


def run_net_chaos_suite(
    points: int = 6,
    fault_log: Optional[str] = None,
    only: Optional[str] = None,
    cases: Optional[Sequence[NetChaosCase]] = None,
) -> ChaosReport:
    """Run every fleet-chaos case; one :class:`ProbeResult` per case.

    ``fault_log`` appends every case's frame-level verdicts (JSONL,
    tagged with the case name) — the CI artifact.  ``only`` filters by
    substring, as in the simulator suite.
    """
    if points < 2:
        raise ValueError(f"net chaos needs points >= 2, got {points}")
    if cases is None:
        cases = default_net_cases()
    if only:
        cases = [c for c in cases if only in c.name]
    report = ChaosReport()
    for case in cases:
        try:
            note = case.run(points, fault_log)
            report.results.append(
                ProbeResult(case=case.name, probe="net-chaos", ok=True, note=note)
            )
        except Exception as exc:
            report.results.append(
                ProbeResult(
                    case=case.name, probe="net-chaos", ok=False,
                    note=f"{type(exc).__name__}: {exc}",
                )
            )
    return report
