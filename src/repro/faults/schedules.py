"""The shipped fault schedules the chaos gate runs every algorithm under.

Each schedule is a *factory*: :class:`~repro.faults.plan.FaultPlan` objects
are stateful (transient faults spend their arming counters), so every
harness attempt sequence gets a fresh plan.  Schedules are split by the
machinery they target:

* ``"shared"`` — memory-cell corruption, applicable to every shared-memory
  machine (QSM, s-QSM, GSM, QSM(g,d), PRAM);
* ``"bsp"`` — message drop / duplicate / delay and component stall / crash.

All shipped faults are transient (``firings=1``): they fire once and stay
spent across the harness's fresh-machine retries, which is exactly the
failure model the Section 8 algorithms are expected to *survive* — a
verified re-run recovers from a one-shot fault, the way a production
re-run outlives a transient network blip.  ``python -m repro chaos`` is
the gate that checks they do.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.faults.plan import Fault, FaultPlan

__all__ = ["shipped_schedules", "schedule_names"]

PlanFactory = Callable[[], FaultPlan]


def _shared_schedules() -> List[Tuple[str, PlanFactory]]:
    return [
        (
            "corrupt-input",
            # Clobber a low cell right after the first phase: usually an
            # input or first-level tree cell.
            lambda: FaultPlan(
                [Fault("corrupt", 0, addr=1, value=1)], label="corrupt-input"
            ),
        ),
        (
            "corrupt-mid",
            # Hit scratch space mid-run with a type-confusing value.
            lambda: FaultPlan(
                [Fault("corrupt", 2, addr=7, value=-1)], label="corrupt-mid"
            ),
        ),
        (
            "corrupt-double",
            lambda: FaultPlan(
                [
                    Fault("corrupt", 1, addr=3, value=0),
                    Fault("corrupt", 3, addr=12, value=999),
                ],
                label="corrupt-double",
            ),
        ),
    ]


def _bsp_schedules() -> List[Tuple[str, PlanFactory]]:
    return [
        (
            "drop-first",
            lambda: FaultPlan([Fault("drop", 0, count=1)], label="drop-first"),
        ),
        (
            "drop-combine",
            # Lose two messages of the second superstep — typically the
            # reduction-tree combine traffic.
            lambda: FaultPlan([Fault("drop", 1, count=2)], label="drop-combine"),
        ),
        (
            "duplicate-first",
            lambda: FaultPlan(
                [Fault("duplicate", 0, count=1)], label="duplicate-first"
            ),
        ),
        (
            "delay-first",
            lambda: FaultPlan(
                [Fault("delay", 0, count=2, delay=1)], label="delay-first"
            ),
        ),
        (
            "stall-proc0",
            lambda: FaultPlan(
                [Fault("stall", 0, proc=0, duration=2)], label="stall-proc0"
            ),
        ),
        (
            "crash-proc1",
            lambda: FaultPlan(
                [Fault("crash", 0, proc=1, duration=2)], label="crash-proc1"
            ),
        ),
    ]


def shipped_schedules(model: str) -> List[Tuple[str, PlanFactory]]:
    """``(name, plan_factory)`` pairs for ``model`` (``"shared"`` / ``"bsp"``)."""
    if model == "shared":
        return _shared_schedules()
    if model == "bsp":
        return _bsp_schedules()
    raise ValueError(f"model must be 'shared' or 'bsp', got {model!r}")


def schedule_names(model: str) -> List[str]:
    """Just the schedule names, in shipped order."""
    return [name for name, _ in shipped_schedules(model)]
