"""The acceptance demo for the fault-tolerant sweep runner.

:func:`run_sweep_demo` drives :func:`repro.analysis.parallel_sweep.parallel_sweep`
through every failure mode it claims to survive, in one sweep:

* a **truncated cache file** pre-seeded on disk (quarantined, sweep rebuilds);
* a point whose worker **crashes hard** (``os._exit``) on the first attempt;
* a point that **hangs** past the watchdog timeout on the first attempt;
* a point that **always fails** (recorded as an error outcome, never cached).

The transient modes use marker files (not in-memory state: each attempt
runs in a fresh worker process) so the retry attempt succeeds — modelling a
flaky machine rather than a broken experiment.  The demo then *re-runs* the
sweep against the same cache to show it resumes: completed points are
served from the cache and only the genuinely-broken point re-executes.

``python -m repro chaos`` runs this alongside the algorithm probes; the
dedicated tests in ``tests/analysis/test_parallel_sweep.py`` cover each
mode in isolation.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from functools import partial
from typing import Any, Dict

from repro.analysis.parallel_sweep import parallel_sweep

__all__ = ["run_sweep_demo", "demo_point"]


def demo_point(n: int, mode: str, scratch: str = "") -> Dict[str, Any]:
    """One demo grid point; ``mode`` selects its failure behaviour.

    Module-level (and curried with :func:`functools.partial`) so worker
    processes can unpickle it under any start method.
    """
    marker = os.path.join(scratch, f"fired-{mode}-{n}")
    if mode == "crash-once":
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            os._exit(13)  # hard death: no exception, no cleanup
    elif mode == "hang-once":
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            time.sleep(600.0)  # far past the watchdog; worker is terminated
    elif mode == "broken":
        raise ValueError("this point is permanently broken")
    elif mode != "ok":
        raise ValueError(f"unknown demo mode {mode!r}")
    return {"measured": float(n), "correct": True, "mode": mode}


def run_sweep_demo(jobs: int = 2, timeout: float = 1.5) -> Dict[str, Any]:
    """Run the full crash/hang/corruption scenario; return a summary dict.

    The summary's ``survived`` key is the headline: True iff the sweep
    completed with exactly one (permanently broken) error point, the
    corrupt cache was quarantined, and the re-run resumed from the cache.
    """
    grid = {"n": [2, 3], "mode": ["ok", "crash-once", "hang-once", "broken"]}
    with tempfile.TemporaryDirectory(prefix="repro-chaos-demo-") as scratch:
        cache = os.path.join(scratch, "BENCH_demo.json")
        with open(cache, "w", encoding="utf-8") as fh:
            fh.write('{"truncated": ')  # a torn write from a dead run

        run = partial(demo_point, scratch=scratch)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            points = parallel_sweep(
                grid,
                run,
                jobs=jobs,
                cache_path=cache,
                timeout=timeout,
                retries=1,
                backoff=0.01,
                on_error="record",
            )
        failed = [p for p in points if p.failed]
        retried = [
            p for p in points
            if not p.failed and p.extra.get("sweep_attempts", 1) > 1
        ]

        # Re-run: everything that succeeded is served from the cache; the
        # broken points run again (their markers now exist, so the transient
        # modes would pass anyway — but they never re-execute at all).
        resumed = parallel_sweep(
            grid,
            run,
            jobs=jobs,
            cache_path=cache,
            timeout=timeout,
            retries=0,
            on_error="record",
        )
        resumed_failed = [p for p in resumed if p.failed]

        quarantined = os.path.exists(cache + ".quarantined")
        summary = {
            "points": len(points),
            "completed": len(points) - len(failed),
            "failed": sorted(p.params["mode"] for p in failed),
            "recovered_after_retry": sorted(p.params["mode"] for p in retried),
            "cache_quarantined": quarantined,
            "quarantine_warned": any("quarantined" in str(w.message) for w in caught),
            "resume_points": len(resumed),
            "resume_failed": sorted(p.params["mode"] for p in resumed_failed),
        }
        summary["survived"] = (
            len(points) == 8
            and summary["failed"] == ["broken", "broken"]
            and set(summary["recovered_after_retry"]) == {"crash-once", "hang-once"}
            and quarantined
            and len(resumed) == 8
            and summary["resume_failed"] == ["broken", "broken"]
        )
        return summary
