"""Adversarial search over "arbitrary"-winner choices.

The paper's model semantics (Section 2.1) make concurrent-write resolution
*adversarial*: the QSM commits "some" writer's value, so an algorithm is
correct only if its output is right for **every** possible winner sequence.
A seeded simulator can't test that — it only ever exercises one sequence
per seed.

:func:`search_winner_adversary` closes the gap.  It runs the algorithm
once under :class:`~repro.faults.winners.ReplayWinners` to *enumerate* the
decision points (each colliding cell in each phase is one decision), then
re-runs with forced deviations — every single-decision flip within budget,
plus seeded random multi-flips — looking for a winner sequence whose
output the verifier rejects or that disagrees with the reference output
when the caller says outputs must be winner-independent.

The search is exhaustive when ``sum(n_writers - 1)`` over all decision
points fits the budget; otherwise it covers a deterministic prefix and
reports the truncation in :attr:`AdversaryReport.exhaustive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.faults.winners import ReplayWinners, WinnerPolicy
from repro.util.seeding import derive_rng

__all__ = ["AdversaryReport", "Disagreement", "search_winner_adversary"]


@dataclass(frozen=True)
class Disagreement:
    """One winner sequence that broke the algorithm."""

    overrides: Mapping[int, int]  # decision ordinal -> forced choice
    value: Any  # the output under this sequence
    reference: Any  # the reference output
    verified: Optional[bool]  # verifier verdict on ``value`` (None: no verifier)


@dataclass
class AdversaryReport:
    """Outcome of one adversarial winner search.

    ``winner_independent`` is the headline: True means no explored winner
    sequence changed a *verified-relevant* outcome.  When a verifier is
    supplied, only verifier-rejected outputs count as disagreements (many
    correct algorithms return winner-*dependent* but still-correct
    outputs, e.g. any of several valid compactions); without one, any
    output difference from the reference run counts.
    """

    decisions: int  # decision points in the reference run
    attempts: int  # deviating runs executed
    exhaustive: bool  # every single-flip deviation was covered
    reference: Any = None
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def winner_independent(self) -> bool:
        return not self.disagreements


def search_winner_adversary(
    run: Callable[[WinnerPolicy], Any],
    verify: Optional[Callable[[Any], bool]] = None,
    budget: int = 64,
    random_probes: int = 8,
    seed: Any = 0,
) -> AdversaryReport:
    """Search winner sequences for one that breaks ``run``.

    Parameters
    ----------
    run:
        Builds a fresh machine with the given winner policy, runs the
        algorithm, and returns its output.  Called ``attempts + 1`` times.
    verify:
        Output -> bool.  When given, a deviating run counts as a
        disagreement only if its output fails verification (covers
        algorithms whose output is legitimately winner-dependent).  When
        omitted, any output != the reference output is a disagreement.
    budget:
        Maximum deviating runs.  Single-decision flips are explored first
        (in decision order — the deterministic prefix), then ``random_probes``
        seeded multi-flip probes fill any remaining budget.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")

    reference_policy = ReplayWinners()
    reference = run(reference_policy)
    decision_log = list(reference_policy.log)
    if verify is not None and not verify(reference):
        # The algorithm is wrong before the adversary does anything.
        report = AdversaryReport(
            decisions=len(decision_log),
            attempts=0,
            exhaustive=False,
            reference=reference,
        )
        report.disagreements.append(
            Disagreement(overrides={}, value=reference, reference=reference,
                         verified=False)
        )
        return report

    def attempt(overrides: Dict[int, int]) -> Optional[Disagreement]:
        value = run(ReplayWinners(overrides))
        if verify is not None:
            ok = bool(verify(value))
            if not ok:
                return Disagreement(overrides=dict(overrides), value=value,
                                    reference=reference, verified=False)
            return None
        if value != reference:
            return Disagreement(overrides=dict(overrides), value=value,
                                reference=reference, verified=None)
        return None

    report = AdversaryReport(
        decisions=len(decision_log),
        attempts=0,
        exhaustive=True,
        reference=reference,
    )

    # Phase 1: every single-decision flip, decision order then choice order.
    single_flips: List[Dict[int, int]] = []
    for ordinal, (_, n_writers, chosen) in enumerate(decision_log):
        for choice in range(n_writers):
            if choice != chosen:
                single_flips.append({ordinal: choice})
    if len(single_flips) > budget:
        single_flips = single_flips[:budget]
        report.exhaustive = False
    for overrides in single_flips:
        report.attempts += 1
        bad = attempt(overrides)
        if bad is not None:
            report.disagreements.append(bad)

    # Phase 2: seeded random multi-flips with the leftover budget.
    remaining = budget - report.attempts
    if decision_log and remaining > 0 and random_probes > 0:
        rng = derive_rng(seed)
        for _ in range(min(random_probes, remaining)):
            overrides: Dict[int, int] = {}
            flips = int(rng.integers(2, max(3, min(len(decision_log), 6)) + 1))
            for _ in range(flips):
                ordinal = int(rng.integers(0, len(decision_log)))
                n_writers = decision_log[ordinal][1]
                overrides[ordinal] = int(rng.integers(0, n_writers))
            report.attempts += 1
            bad = attempt(overrides)
            if bad is not None:
                report.disagreements.append(bad)

    return report
