"""Frame-level network faults for the TCP worker fabric.

The simulator fault plans (:mod:`repro.faults.plan`) act on BSP message
routing; this module is the same idea one layer down: faults that act on
*protocol frames* crossing the wire between a
:class:`~repro.sched.net.pool.RemoteWorkerPool` and its workers.  The
injection point is the chaos proxy (:mod:`repro.sched.net.proxy`), which
sits between the two and consults a :class:`NetFaultPlan` for every
frame it forwards.

=============  =========================================================
kind           effect at the proxy
=============  =========================================================
``drop``       the matching frame vanishes
``delay``      the matching frame is forwarded ``delay_s`` seconds late
               (its direction of that link is held, so order is kept)
``duplicate``  the matching frame is forwarded twice
``partition``  the matching frame *and every frame in either direction*
               for the next ``duration_s`` seconds vanish — the network
               is down; registrations during the window fail too
``reconnect``  both sockets of the matching frame's link are closed
               (the frame is lost); the worker must redial
=============  =========================================================

A fault matches on ``direction`` (``"c2s"`` worker->scheduler /
``"s2c"`` / ``None`` for either) and ``frame`` (a type from
:data:`repro.sched.net.frames.FRAME_TYPES`, or ``None`` for any), and
fires on the ``nth`` match (1-based) — frame counting is what makes a
chaos case deterministic: "the first result frame" is the same frame
every run, regardless of thread timing.  Like the simulator faults,
every fault is transient by default (``firings=1``): it fires once and
stays spent, so a retried delivery outlives it.  Firings are recorded
as :class:`~repro.faults.plan.FaultEvent` rows (``step`` = the global
frame sequence number) on the plan.

The plan is consulted from the proxy's per-link pump threads, so all
match/spend bookkeeping is lock-guarded.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.faults.plan import FaultEvent
from repro.sched.net.frames import FRAME_TYPES

__all__ = ["NetFault", "NetFaultPlan", "NET_FAULT_KINDS"]

NET_FAULT_KINDS = ("drop", "delay", "duplicate", "partition", "reconnect")

_DIRECTIONS = ("c2s", "s2c")


class NetFault:
    """One scheduled frame-level fault.  See the module kind table."""

    def __init__(
        self,
        kind: str,
        *,
        direction: Optional[str] = None,
        frame: Optional[str] = None,
        nth: int = 1,
        delay_s: float = 0.25,
        duration_s: float = 1.0,
        firings: Optional[int] = 1,
    ) -> None:
        if kind not in NET_FAULT_KINDS:
            raise ValueError(
                f"net fault kind must be one of {NET_FAULT_KINDS}, got {kind!r}"
            )
        if direction is not None and direction not in _DIRECTIONS:
            raise ValueError(f"direction must be one of {_DIRECTIONS}, got {direction!r}")
        if frame is not None and frame not in FRAME_TYPES:
            raise ValueError(f"frame must be one of {FRAME_TYPES}, got {frame!r}")
        if nth < 1:
            raise ValueError(f"nth is 1-based, got {nth}")
        if kind == "delay" and delay_s <= 0:
            raise ValueError(f"delay_s must be positive, got {delay_s}")
        if kind == "partition" and duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if firings is not None and firings < 1:
            raise ValueError(f"firings must be >= 1 (or None for unlimited), got {firings}")
        self.kind = kind
        self.direction = direction
        self.frame = frame
        self.nth = int(nth)
        self.delay_s = float(delay_s)
        self.duration_s = float(duration_s)
        self.firings = firings
        self.remaining = firings  # None = unlimited
        self.matched = 0  # matching frames seen so far (for nth)

    @property
    def exhausted(self) -> bool:
        return self.remaining is not None and self.remaining <= 0

    def rearm(self) -> None:
        self.remaining = self.firings
        self.matched = 0

    def _matches(self, direction: str, frame_kind: str) -> bool:
        return (self.direction is None or direction == self.direction) and (
            self.frame is None or frame_kind == self.frame
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "nth": self.nth}
        if self.direction is not None:
            out["direction"] = self.direction
        if self.frame is not None:
            out["frame"] = self.frame
        if self.kind == "delay":
            out["delay_s"] = self.delay_s
        if self.kind == "partition":
            out["duration_s"] = self.duration_s
        if self.firings != 1:
            out["firings"] = self.firings
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NetFault({self.to_dict()!r})"


class NetFaultPlan:
    """Frame-fault schedule + partition state, consulted per frame.

    Thread-safe: the proxy's pump threads call :meth:`decide` for every
    frame; match counting, spending, the partition window, and the
    firing log are all guarded by one lock.
    """

    def __init__(self, faults: Iterable[Any] = (), label: str = "net-plan") -> None:
        self.label = label
        self.faults: List[NetFault] = []
        for f in faults:
            if isinstance(f, NetFault):
                self.faults.append(f)
            elif isinstance(f, Mapping):
                spec = dict(f)
                kind = spec.pop("kind")
                self.faults.append(NetFault(kind, **spec))
            else:
                raise TypeError(f"fault must be a NetFault or a spec dict, got {f!r}")
        self.events: List[FaultEvent] = []
        self._lock = threading.Lock()
        self._seq = 0  # global frame counter, the FaultEvent step
        self._partition_until = 0.0  # monotonic

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            for fault in self.faults:
                fault.rearm()
            self.events = []
            self._seq = 0
            self._partition_until = 0.0

    @property
    def fired(self) -> int:
        return len(self.events)

    def to_specs(self) -> List[Dict[str, Any]]:
        return [f.to_dict() for f in self.faults]

    def partition(self, duration_s: float) -> None:
        """Open a partition window now (programmatic, no trigger frame)."""
        with self._lock:
            self._partition_until = time.monotonic() + float(duration_s)
            self.events.append(
                FaultEvent(self._seq, "partition",
                           {"duration_s": float(duration_s), "trigger": "manual"})
            )

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return time.monotonic() < self._partition_until

    # -- the per-frame consult ----------------------------------------------

    def decide(self, direction: str, frame_kind: str) -> Tuple[str, Optional[NetFault]]:
        """The proxy's verdict for one frame: ``(action, fault_or_None)``.

        Actions: ``"forward"``, ``"drop"`` (faulted), ``"blackhole"``
        (inside a partition window), ``"delay"``, ``"duplicate"``,
        ``"reconnect"``.  A firing spends the fault and appends a
        :class:`FaultEvent`; the frame that *triggers* a partition is
        itself inside the window (it is lost).
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
            now = time.monotonic()
            if now < self._partition_until:
                return "blackhole", None
            for fault in self.faults:
                if fault.exhausted or not fault._matches(direction, frame_kind):
                    continue
                fault.matched += 1
                if fault.matched < fault.nth:
                    continue
                if fault.remaining is not None:
                    fault.remaining -= 1
                detail: Dict[str, Any] = {
                    "direction": direction, "frame": frame_kind,
                }
                if fault.kind == "partition":
                    self._partition_until = now + fault.duration_s
                    detail["duration_s"] = fault.duration_s
                elif fault.kind == "delay":
                    detail["delay_s"] = fault.delay_s
                self.events.append(FaultEvent(seq, fault.kind, detail))
                if fault.kind == "partition":
                    # The triggering frame is inside the window: lost.
                    return "blackhole", fault
                return fault.kind, fault
            return "forward", None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NetFaultPlan({self.label!r}, faults={len(self.faults)}, fired={self.fired})"
