"""The chaos harness: Section 8 algorithms vs winner policies and faults.

A :class:`ChaosCase` packages one algorithm as a *self-checking* unit:
``run(winner_policy=..., fault_plan=...)`` builds a fresh machine, runs the
algorithm, and returns its output; ``verify`` checks the output against the
problem contract.  :func:`default_cases` registers every Section 8
algorithm family (parity, OR, broadcast, LAC, prefix sums, load balancing,
list ranking, padded sort, sample sort) across the machines that run them.

Three probes per case (:func:`run_chaos_suite`):

1. **Winner sweep** — the case must verify under every named winner policy
   (``seeded`` / ``first`` / ``last``), because the models' "arbitrary"
   write rule is adversarial: any winner may land.
2. **Adversarial search** — :func:`repro.faults.adversary.search_winner_adversary`
   actively looks for a winner sequence the verifier rejects.
3. **Fault schedules** — every shipped schedule of
   :func:`repro.faults.schedules.shipped_schedules`, run through
   :func:`run_self_checking`: the algorithm *survives* a schedule when a
   verified run is obtained within ``max_attempts`` attempts against one
   plan instance (transient faults stay spent across retries, so attempt 2
   models the re-run that outlives a transient fault).

``python -m repro chaos`` drives this suite and renders the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.adversary import search_winner_adversary
from repro.faults.plan import FaultPlan
from repro.faults.schedules import shipped_schedules
from repro.faults.winners import WINNER_POLICY_NAMES, WinnerPolicy, make_winner_policy

__all__ = [
    "ChaosCase",
    "ProbeResult",
    "ChaosReport",
    "run_self_checking",
    "default_cases",
    "run_chaos_suite",
    "render_chaos_report",
]


@dataclass(frozen=True)
class ChaosCase:
    """One self-checking algorithm/machine pairing.

    ``run`` accepts ``winner_policy`` and ``fault_plan`` keywords (always
    passed by the harness; cases whose machine has no arbitration —
    ``arbitrates=False`` — receive ``winner_policy=None``).
    """

    name: str
    family: str  # "shared" | "bsp" — selects the applicable fault schedules
    run: Callable[..., Any]
    verify: Callable[[Any], bool]
    arbitrates: bool = True


@dataclass
class ProbeResult:
    """Outcome of one probe (one row of the chaos report)."""

    case: str
    probe: str  # "winner:<name>" | "adversary" | "fault:<schedule>"
    ok: bool
    attempts: int = 1
    note: str = ""


@dataclass
class ChaosReport:
    """All probe results of one chaos run."""

    results: List[ProbeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[ProbeResult]:
        return [r for r in self.results if not r.ok]


def run_self_checking(
    case: ChaosCase,
    fault_plan: Optional[FaultPlan] = None,
    winner_policy: Optional[WinnerPolicy] = None,
    max_attempts: int = 3,
) -> ProbeResult:
    """Run ``case`` until verified or attempts run out.

    Each attempt builds a fresh machine against the *same* plan instance:
    transient faults fire on the attempt that reaches their trigger step
    and stay spent afterwards, so a correct algorithm recovers on retry.
    Exceptions count as failed attempts (an injected fault may crash the
    algorithm outright, e.g. type-confusing memory corruption).
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    note = ""
    for attempt in range(1, max_attempts + 1):
        if winner_policy is not None:
            winner_policy.reset()
        try:
            value = case.run(winner_policy=winner_policy, fault_plan=fault_plan)
        except Exception as exc:  # injected faults may crash the run
            note = f"{type(exc).__name__}: {exc}"
            continue
        if case.verify(value):
            return ProbeResult(
                case=case.name,
                probe="self-check",
                ok=True,
                attempts=attempt,
                note=note and f"recovered after {note}",
            )
        note = "verification failed"
    return ProbeResult(
        case=case.name, probe="self-check", ok=False, attempts=max_attempts, note=note
    )


def _shared_machine(kind: str, winner_policy, fault_plan):
    from repro.core import GSM, PRAM, QSM, SQSM, PRAMParams, QSMParams, SQSMParams

    if kind == "qsm":
        return QSM(QSMParams(g=4.0), winner_policy=winner_policy, fault_plan=fault_plan)
    if kind == "sqsm":
        return SQSM(SQSMParams(g=4.0), winner_policy=winner_policy, fault_plan=fault_plan)
    if kind == "gsm":
        return GSM(fault_plan=fault_plan)  # strong queuing: no arbitration
    if kind == "pram":
        return PRAM(
            PRAMParams(variant="CRCW", write_rule="arbitrary"),
            winner_policy=winner_policy,
            fault_plan=fault_plan,
        )
    raise ValueError(f"unknown shared machine kind {kind!r}")


def _bsp(fault_plan, p: int = 8):
    from repro.core import BSP, BSPParams

    return BSP(p, BSPParams(g=2.0, L=8.0), fault_plan=fault_plan)


def default_cases(n: int = 64, seed: Any = 0) -> List[ChaosCase]:
    """The Section 8 case registry, sized by ``n`` (inputs are seeded)."""
    from repro.algorithms.broadcast import broadcast_bsp, broadcast_shared
    from repro.algorithms.compaction import lac_dart, lac_prefix
    from repro.algorithms.list_ranking import list_rank
    from repro.algorithms.load_balance import load_balance
    from repro.algorithms.or_ import or_bsp, or_tree_writes
    from repro.algorithms.padded_sort import padded_sort
    from repro.algorithms.parity import parity_blocks, parity_bsp, parity_tree
    from repro.algorithms.pram_algos import or_crcw
    from repro.algorithms.prefix import prefix_sums, prefix_sums_bsp
    from repro.algorithms.sorting import sample_sort_bsp
    from repro.problems import (
        gen_bits,
        gen_list,
        gen_loads,
        gen_padded_sort_input,
        gen_sort_input,
        gen_sparse_array,
        verify_lac,
        verify_list_ranks,
        verify_load_balance,
        verify_or,
        verify_padded_sort,
        verify_parity,
        verify_sorted,
    )

    if n < 4:
        raise ValueError(f"chaos cases need n >= 4, got {n}")
    bits = gen_bits(n, seed=seed)
    sparse_h = max(2, n // 8)
    sparse = gen_sparse_array(n, sparse_h, seed=seed, exact=True)
    values = gen_sort_input(n, universe=max(8, n), seed=seed)
    floats = gen_padded_sort_input(min(n, 32), seed=seed)
    loads = gen_loads(8, n, skew=2.0, seed=seed)
    next_ptrs, _ = gen_list(min(n, 32), seed=seed)
    prefix_truth = list(accumulate(values))

    def shared(kind, algo):
        def run(winner_policy=None, fault_plan=None):
            return algo(_shared_machine(kind, winner_policy, fault_plan))

        return run

    def bsp(algo):
        def run(winner_policy=None, fault_plan=None):
            return algo(_bsp(fault_plan))

        return run

    return [
        ChaosCase(
            "parity-tree/QSM", "shared",
            shared("qsm", lambda m: parity_tree(m, bits).value),
            lambda v: verify_parity(bits, v),
        ),
        ChaosCase(
            "parity-blocks/QSM", "shared",
            shared("qsm", lambda m: parity_blocks(m, bits).value),
            lambda v: verify_parity(bits, v),
        ),
        ChaosCase(
            "parity-tree/s-QSM", "shared",
            shared("sqsm", lambda m: parity_tree(m, bits).value),
            lambda v: verify_parity(bits, v),
        ),
        ChaosCase(
            "parity-tree/GSM", "shared",
            shared("gsm", lambda m: parity_tree(m, bits).value),
            lambda v: verify_parity(bits, v),
            arbitrates=False,
        ),
        ChaosCase(
            "or-tree/QSM", "shared",
            shared("qsm", lambda m: or_tree_writes(m, bits).value),
            lambda v: verify_or(bits, v),
        ),
        ChaosCase(
            "or-tree/s-QSM", "shared",
            shared("sqsm", lambda m: or_tree_writes(m, bits).value),
            lambda v: verify_or(bits, v),
        ),
        ChaosCase(
            "or/CRCW-PRAM", "shared",
            shared("pram", lambda m: or_crcw(m, bits).value),
            lambda v: verify_or(bits, v),
        ),
        ChaosCase(
            "broadcast/QSM", "shared",
            shared("qsm", lambda m: broadcast_shared(m, 42, n).value),
            lambda v: list(v) == [42] * n,
        ),
        ChaosCase(
            "lac-dart/QSM", "shared",
            shared("qsm", lambda m: lac_dart(m, sparse, h=sparse_h, seed=seed).value),
            lambda v: verify_lac(sparse, v, sparse_h),
        ),
        ChaosCase(
            "lac-prefix/s-QSM", "shared",
            shared("sqsm", lambda m: lac_prefix(m, sparse, h=sparse_h).value),
            lambda v: verify_lac(sparse, v, sparse_h),
        ),
        ChaosCase(
            "prefix-sums/s-QSM", "shared",
            shared("sqsm", lambda m: prefix_sums(m, values).value),
            lambda v: list(v) == prefix_truth,
        ),
        ChaosCase(
            "load-balance/QSM", "shared",
            shared("qsm", lambda m: load_balance(m, loads).value),
            lambda v: verify_load_balance(loads, v),
        ),
        ChaosCase(
            "list-rank/s-QSM", "shared",
            shared("sqsm", lambda m: list_rank(m, next_ptrs).value),
            lambda v: verify_list_ranks(next_ptrs, v),
        ),
        ChaosCase(
            "padded-sort/QSM", "shared",
            shared("qsm", lambda m: padded_sort(m, floats, seed=seed).value),
            lambda v: verify_padded_sort(floats, v),
        ),
        ChaosCase(
            "parity/BSP", "bsp",
            bsp(lambda m: parity_bsp(m, bits).value),
            lambda v: verify_parity(bits, v),
            arbitrates=False,
        ),
        ChaosCase(
            "or/BSP", "bsp",
            bsp(lambda m: or_bsp(m, bits).value),
            lambda v: verify_or(bits, v),
            arbitrates=False,
        ),
        ChaosCase(
            "broadcast/BSP", "bsp",
            bsp(lambda m: broadcast_bsp(m, 42).value),
            lambda v: list(v) == [42] * 8,
            arbitrates=False,
        ),
        ChaosCase(
            "prefix-sums/BSP", "bsp",
            bsp(lambda m: prefix_sums_bsp(m, values).value),
            lambda v: list(v) == prefix_truth,
            arbitrates=False,
        ),
        ChaosCase(
            "sample-sort/BSP", "bsp",
            bsp(lambda m: sample_sort_bsp(m, values).value),
            lambda v: verify_sorted(values, v),
            arbitrates=False,
        ),
    ]


def run_chaos_suite(
    n: int = 64,
    seed: Any = 0,
    budget: int = 24,
    max_attempts: int = 3,
    cases: Optional[Sequence[ChaosCase]] = None,
    only: Optional[str] = None,
) -> ChaosReport:
    """Run every case through the three probes; see the module docstring.

    ``only`` filters cases by substring match on the case name.
    """
    if cases is None:
        cases = default_cases(n=n, seed=seed)
    if only:
        cases = [c for c in cases if only in c.name]
    report = ChaosReport()
    for case in cases:
        # Probe 1: every named winner policy must verify on a clean run.
        for policy_name in WINNER_POLICY_NAMES if case.arbitrates else (None,):
            policy = make_winner_policy(policy_name, seed=seed)
            outcome = run_self_checking(case, winner_policy=policy, max_attempts=1)
            outcome.probe = f"winner:{policy_name or 'default'}"
            report.results.append(outcome)

        # Probe 2: adversarial winner search (arbitrating machines only).
        if case.arbitrates:
            adv = search_winner_adversary(
                lambda policy: case.run(winner_policy=policy, fault_plan=None),
                verify=case.verify,
                budget=budget,
                seed=seed,
            )
            report.results.append(
                ProbeResult(
                    case=case.name,
                    probe="adversary",
                    ok=adv.winner_independent,
                    attempts=adv.attempts,
                    note=(
                        f"{adv.decisions} decisions"
                        + ("" if adv.exhaustive else " (budget-truncated)")
                        + (
                            f"; {len(adv.disagreements)} breaking sequences"
                            if adv.disagreements
                            else ""
                        )
                    ),
                )
            )

        # Probe 3: every shipped fault schedule, with retry-based recovery.
        for schedule_name, factory in shipped_schedules(case.family):
            outcome = run_self_checking(
                case, fault_plan=factory(), max_attempts=max_attempts
            )
            outcome.probe = f"fault:{schedule_name}"
            report.results.append(outcome)
    return report


def render_chaos_report(report: ChaosReport) -> str:
    """Fixed-width text table of a chaos run, one probe per row."""
    rows = [("case", "probe", "result", "attempts", "note")]
    for r in report.results:
        rows.append(
            (r.case, r.probe, "ok" if r.ok else "FAIL", str(r.attempts), r.note)
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row[:4]))
            + ("  " + row[4] if row[4] else "")
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    n_fail = len(report.failures)
    lines.append("")
    lines.append(
        f"{len(report.results)} probes, "
        + ("all survived" if report.ok else f"{n_fail} FAILED")
    )
    return "\n".join(lines)
