"""Adversarial fault injection and winner arbitration for the simulators.

The models of the paper are *adversarial*: the QSM's "arbitrary" write rule
commits some writer's value (Section 2.1), so correctness must hold for
every possible winner, and a production run of any of these algorithms must
additionally outlive transient infrastructure faults.  This package makes
both adversaries executable:

* :mod:`repro.faults.winners` — pluggable winner arbitration
  (seeded / first / last / replay) for machines with an "arbitrary" rule;
* :mod:`repro.faults.adversary` — a search over winner sequences that tries
  to *break* an algorithm's output;
* :mod:`repro.faults.plan` — scheduled fault injection (BSP message drop /
  duplicate / delay, component stall / crash, memory corruption), recorded
  as events on the machine and in its cost records;
* :mod:`repro.faults.schedules` — the shipped schedules the chaos gate runs;
* :mod:`repro.faults.harness` — the self-checking chaos suite behind
  ``python -m repro chaos``.
"""

from repro.faults.adversary import AdversaryReport, search_winner_adversary
from repro.faults.harness import (
    ChaosCase,
    ChaosReport,
    default_cases,
    render_chaos_report,
    run_chaos_suite,
    run_self_checking,
)
from repro.faults.plan import FAULT_KINDS, Fault, FaultEvent, FaultPlan, random_fault_plan
from repro.faults.schedules import schedule_names, shipped_schedules
from repro.faults.winners import (
    WINNER_POLICY_NAMES,
    FirstWriterWins,
    LastWriterWins,
    ReplayWinners,
    SeededWinners,
    WinnerPolicy,
    make_winner_policy,
)

__all__ = [
    "WinnerPolicy",
    "SeededWinners",
    "FirstWriterWins",
    "LastWriterWins",
    "ReplayWinners",
    "make_winner_policy",
    "WINNER_POLICY_NAMES",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "random_fault_plan",
    "AdversaryReport",
    "search_winner_adversary",
    "ChaosCase",
    "ChaosReport",
    "default_cases",
    "run_chaos_suite",
    "run_self_checking",
    "render_chaos_report",
    "schedule_names",
    "shipped_schedules",
]
