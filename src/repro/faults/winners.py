"""Pluggable arbitration of "arbitrary"-winner concurrent writes.

The QSM/s-QSM memory rule (Section 2.1) and the CRCW PRAM's ``arbitrary``
write rule both say *some* writer's value lands — and the paper's bounds
are adversarial: an algorithm is only correct if it is correct for **every**
possible winner.  The simulators historically resolved the choice with a
seeded generator, which means an algorithm whose correctness secretly
depends on a lucky winner could pass every seeded test.

A :class:`WinnerPolicy` makes the choice explicit and swappable:

* :class:`SeededWinners` — the historical behaviour (a seeded generator;
  a machine built with ``winner_policy=None`` still uses its own internal
  generator, bit-for-bit compatible with pre-policy runs).
* :class:`FirstWriterWins` / :class:`LastWriterWins` — deterministic
  extremes of the issue order.
* :class:`ReplayWinners` — forces specific decisions by ordinal and logs
  every decision point; the substrate of the adversarial search in
  :mod:`repro.faults.adversary`, which *looks for* a winner sequence that
  changes the algorithm's output.

Policies see each colliding cell once per phase, as the ordered
``(processor, value)`` pairs the machine collected, and return the index
of the winning pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.util.seeding import derive_rng

__all__ = [
    "WinnerPolicy",
    "SeededWinners",
    "FirstWriterWins",
    "LastWriterWins",
    "ReplayWinners",
    "make_winner_policy",
    "WINNER_POLICY_NAMES",
]


class WinnerPolicy:
    """Chooses the surviving writer among concurrent writers of one cell.

    Subclasses implement :meth:`choose`.  A policy may be stateful (seeded
    streams, replay counters); :meth:`reset` returns it to its initial
    state so one policy instance can arbitrate several runs reproducibly.
    """

    #: Short tag used in chaos reports.
    name = "policy"

    def choose(
        self,
        addr: int,
        writers: Sequence[Tuple[int, Any]],
        phase_index: int,
    ) -> int:
        """Index (into ``writers``) of the write that lands in cell ``addr``.

        ``writers`` is the ordered list of ``(processor, value)`` pairs
        issued this phase — always at least two entries (singleton writes
        never reach arbitration).  Must return an int in
        ``range(len(writers))``.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Return the policy to its initial state (no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SeededWinners(WinnerPolicy):
    """Uniform seeded winner — the historical "arbitrary = random" reading.

    A machine built with ``winner_policy=SeededWinners(s)`` resolves
    collisions exactly like a machine built with ``seed=s`` and no policy:
    both draw from :func:`repro.util.seeding.derive_rng` in commit order.
    """

    name = "seeded"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self._rng = derive_rng(seed)

    def choose(self, addr, writers, phase_index) -> int:
        return int(self._rng.integers(0, len(writers)))

    def reset(self) -> None:
        self._rng = derive_rng(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededWinners(seed={self.seed!r})"


class FirstWriterWins(WinnerPolicy):
    """The first write issued to the cell survives."""

    name = "first"

    def choose(self, addr, writers, phase_index) -> int:
        return 0


class LastWriterWins(WinnerPolicy):
    """The last write issued to the cell survives."""

    name = "last"

    def choose(self, addr, writers, phase_index) -> int:
        return len(writers) - 1


class ReplayWinners(WinnerPolicy):
    """Force specific decisions by ordinal; log every decision point.

    Decisions are numbered 0, 1, 2, ... in the order the machine asks for
    them.  ``overrides`` maps a decision ordinal to the forced choice
    (reduced modulo the writer count, so a search can force "some other
    writer" without knowing the queue length in advance); decisions
    without an override fall through to ``default``.

    After a run, :attr:`log` holds one ``(addr, n_writers, choice)`` triple
    per decision — the decision space the adversarial search enumerates.
    """

    name = "replay"

    def __init__(
        self,
        overrides: Optional[Mapping[int, int]] = None,
        default: Optional[WinnerPolicy] = None,
    ) -> None:
        self.overrides: Dict[int, int] = dict(overrides or {})
        self.default = default if default is not None else FirstWriterWins()
        self.log: List[Tuple[int, int, int]] = []

    def choose(self, addr, writers, phase_index) -> int:
        ordinal = len(self.log)
        forced = self.overrides.get(ordinal)
        if forced is not None:
            choice = forced % len(writers)
        else:
            choice = self.default.choose(addr, writers, phase_index)
        self.log.append((addr, len(writers), choice))
        return choice

    def reset(self) -> None:
        self.log = []
        self.default.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplayWinners(overrides={self.overrides!r}, "
            f"default={self.default!r}, decisions={len(self.log)})"
        )


#: Names :func:`make_winner_policy` accepts.
WINNER_POLICY_NAMES = ("seeded", "first", "last")


def make_winner_policy(
    spec: Union[None, str, WinnerPolicy],
    seed: Optional[int] = 0,
) -> Optional[WinnerPolicy]:
    """Resolve a policy spec: ``None``, a name, or a policy instance.

    ``None`` means "machine default" (the machine's own seeded generator);
    names map to ``SeededWinners(seed)`` / ``FirstWriterWins`` /
    ``LastWriterWins``.
    """
    if spec is None or isinstance(spec, WinnerPolicy):
        return spec
    if spec == "seeded":
        return SeededWinners(seed)
    if spec == "first":
        return FirstWriterWins()
    if spec == "last":
        return LastWriterWins()
    raise ValueError(
        f"unknown winner policy {spec!r}; know {WINNER_POLICY_NAMES} "
        "or a WinnerPolicy instance"
    )
