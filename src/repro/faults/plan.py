"""Scheduled fault injection for the simulators.

A :class:`FaultPlan` is a list of :class:`Fault` specs a machine consults at
every commit.  Six fault kinds cover the failure modes the ROADMAP's
production north star cares about:

=============  ======  =====================================================
kind           models  effect
=============  ======  =====================================================
``drop``       BSP     matching messages sent in superstep ``step`` vanish
``duplicate``  BSP     matching messages are delivered twice
``delay``      BSP     matching messages arrive ``delay`` supersteps late
``stall``      BSP     component ``proc``'s sends during supersteps
                       ``[step, step+duration)`` are held until the stall
                       ends (delivered after superstep ``step+duration-1``)
``crash``      BSP     component ``proc``'s sends during supersteps
                       ``[step, step+duration)`` are lost entirely
                       (``duration=None``: crashed for the rest of the run)
``corrupt``    shared  after phase ``step`` commits, cell ``addr`` is
                       overwritten with ``value``
=============  ======  =====================================================

Message faults (``drop``/``duplicate``/``delay``) match on optional ``src``
and ``dst`` component filters and affect at most ``count`` messages
(``count=None``: every match).

Every fault is **transient by default** (``firings=1``): it fires the first
time its trigger step is reached and stays exhausted afterwards — including
across machines sharing the plan.  That is what makes self-checking retry
meaningful (:mod:`repro.faults.harness`): a retry on a fresh machine re-runs
the algorithm against the same plan with the transient faults spent, the
way a real re-run outlives a transient network fault.  ``plan.reset()``
re-arms everything.

Every firing is recorded as a :class:`FaultEvent` on the plan and on the
machine (``machine.fault_events``), and lands in the phase's
:class:`~repro.obs.records.PhaseCostRecord` when ``record_costs=True`` —
so ``repro trace`` exports show injected faults on the timeline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.seeding import derive_rng

__all__ = [
    "FaultEvent",
    "Fault",
    "FaultPlan",
    "FAULT_KINDS",
    "random_fault_plan",
]

FAULT_KINDS = ("drop", "duplicate", "delay", "stall", "crash", "corrupt")

#: Kinds that act on BSP message routing.
_MESSAGE_KINDS = ("drop", "duplicate", "delay")
#: Kinds with a [step, step+duration) activity window.
_WINDOW_KINDS = ("stall", "crash")


class FaultEvent:
    """One fault firing: what happened, at which phase/superstep.

    Serializes to a plain dict (``to_dict``/``from_dict``) so events embed
    in :class:`~repro.obs.records.PhaseCostRecord` JSON and survive the
    JSONL round trip.
    """

    __slots__ = ("step", "kind", "detail")

    def __init__(self, step: int, kind: str, detail: Mapping[str, Any]) -> None:
        self.step = int(step)
        self.kind = str(kind)
        self.detail = dict(detail)

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "kind": self.kind, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(int(data["step"]), str(data["kind"]), dict(data.get("detail", {})))

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, FaultEvent)
            and self.step == other.step
            and self.kind == other.kind
            and self.detail == other.detail
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultEvent(step={self.step}, kind={self.kind!r}, detail={self.detail!r})"


class Fault:
    """One scheduled fault.  See the module docstring for the kind table."""

    def __init__(
        self,
        kind: str,
        step: int,
        *,
        proc: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        count: Optional[int] = 1,
        delay: int = 1,
        duration: Optional[int] = 1,
        addr: Optional[int] = None,
        value: Any = None,
        firings: Optional[int] = 1,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {kind!r}")
        if step < 0:
            raise ValueError(f"fault step must be >= 0, got {step}")
        if kind == "corrupt" and addr is None:
            raise ValueError("corrupt fault needs addr=")
        if kind in _WINDOW_KINDS and proc is None:
            raise ValueError(f"{kind} fault needs proc=")
        if kind == "delay" and delay < 1:
            raise ValueError(f"delay must be >= 1 superstep, got {delay}")
        if duration is not None and duration < 1:
            raise ValueError(f"duration must be >= 1 (or None for forever), got {duration}")
        if kind == "stall" and duration is None:
            raise ValueError("stall needs a finite duration (use crash for forever)")
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1 (or None for all matches), got {count}")
        if firings is not None and firings < 1:
            raise ValueError(f"firings must be >= 1 (or None for unlimited), got {firings}")
        self.kind = kind
        self.step = int(step)
        self.proc = proc
        self.src = src
        self.dst = dst
        self.count = count
        self.delay = int(delay)
        self.duration = duration
        self.addr = addr
        self.value = value
        self.firings = firings
        self.remaining = firings  # None = unlimited
        # End of the current activity window (window kinds), set on firing;
        # per-run state, cleared by FaultPlan.attach().
        self._active_until: Optional[float] = None

    # -- arming bookkeeping -------------------------------------------------

    def _spend(self) -> None:
        if self.remaining is not None:
            self.remaining -= 1

    @property
    def exhausted(self) -> bool:
        return self.remaining is not None and self.remaining <= 0

    def rearm(self) -> None:
        self.remaining = self.firings
        self._active_until = None

    def _matches_message(self, src: int, dst: int) -> bool:
        return (self.src is None or src == self.src) and (
            self.dst is None or dst == self.dst
        )

    def to_dict(self) -> Dict[str, Any]:
        """The fault's schema dict (see docs/ROBUSTNESS.md)."""
        out: Dict[str, Any] = {"kind": self.kind, "step": self.step}
        for field in ("proc", "src", "dst", "addr"):
            if getattr(self, field) is not None:
                out[field] = getattr(self, field)
        if self.kind in _MESSAGE_KINDS:
            out["count"] = self.count
        if self.kind == "delay":
            out["delay"] = self.delay
        if self.kind in _WINDOW_KINDS:
            out["duration"] = self.duration
        if self.kind == "corrupt":
            out["value"] = self.value
        if self.firings != 1:
            out["firings"] = self.firings
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fault({self.to_dict()!r})"


class FaultPlan:
    """An ordered collection of :class:`Fault` specs plus its firing log.

    Pass one to a machine constructor (``fault_plan=...``); the machine
    calls :meth:`attach` once and then :meth:`route_bsp` (BSP) or
    :meth:`fire_memory` (shared memory) at every commit.  One plan should
    drive one machine at a time; sequential reuse across fresh machines is
    the supported pattern (transient faults stay spent).
    """

    def __init__(self, faults: Iterable[Any] = (), label: str = "plan") -> None:
        self.label = label
        self.faults: List[Fault] = []
        for f in faults:
            if isinstance(f, Fault):
                self.faults.append(f)
            elif isinstance(f, Mapping):
                spec = dict(f)
                kind = spec.pop("kind")
                step = spec.pop("step")
                self.faults.append(Fault(kind, step, **spec))
            else:
                raise TypeError(f"fault must be a Fault or a spec dict, got {f!r}")
        self.events: List[FaultEvent] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(self, machine: Any) -> None:
        """Called by a machine constructor: clear per-run window state.

        Arming counters survive (transient faults stay spent across
        machines); only the step-indexed window state resets, because a
        fresh machine's phase indices restart at 0.
        """
        for fault in self.faults:
            fault._active_until = None

    def reset(self) -> None:
        """Fully re-arm every fault and clear the firing log."""
        for fault in self.faults:
            fault.rearm()
        self.events = []

    @property
    def fired(self) -> int:
        """Total firings recorded so far."""
        return len(self.events)

    def to_specs(self) -> List[Dict[str, Any]]:
        """The plan as a list of schema dicts (JSON-ready)."""
        return [f.to_dict() for f in self.faults]

    def _record(self, events: List[FaultEvent], step: int, kind: str, **detail: Any) -> None:
        event = FaultEvent(step, kind, detail)
        events.append(event)
        self.events.append(event)

    # -- BSP hook -----------------------------------------------------------

    def route_bsp(
        self,
        step_index: int,
        outgoing: Sequence[Tuple[int, int, Any]],
    ) -> Tuple[List[Tuple[int, int, Any]], List[Tuple[int, Tuple[int, int, Any]]], List[FaultEvent]]:
        """Route one superstep's messages through the plan.

        Returns ``(deliver_now, deferred, events)`` where ``deliver_now``
        are the ``(src, dst, payload)`` triples delivered normally (at the
        start of superstep ``step_index + 1``), and ``deferred`` are
        ``(due_step, triple)`` pairs the machine holds back and merges into
        the inboxes after committing superstep ``due_step``.
        """
        messages = list(outgoing)
        deferred: List[Tuple[int, Tuple[int, int, Any]]] = []
        events: List[FaultEvent] = []

        # Window faults first: a stalled/crashed component's messages never
        # reach the message-fault matchers below.
        for fault in self.faults:
            if fault.kind not in _WINDOW_KINDS:
                continue
            if fault._active_until is None:
                if step_index == fault.step and not fault.exhausted:
                    fault._spend()
                    end = (
                        float("inf")
                        if fault.duration is None
                        else fault.step + fault.duration
                    )
                    fault._active_until = end
                    self._record(
                        events,
                        step_index,
                        fault.kind,
                        proc=fault.proc,
                        duration=fault.duration,
                    )
            if fault._active_until is None or step_index >= fault._active_until:
                continue
            held = [m for m in messages if m[0] == fault.proc]
            if not held:
                continue
            messages = [m for m in messages if m[0] != fault.proc]
            if fault.kind == "crash":
                self._record(
                    events, step_index, "crash",
                    proc=fault.proc, lost=len(held), phase="messages-lost",
                )
            else:  # stall: held until the window closes
                due = int(fault._active_until) - 1
                deferred.extend((due, m) for m in held)
                self._record(
                    events, step_index, "stall",
                    proc=fault.proc, held=len(held), due_step=due,
                )

        for fault in self.faults:
            if fault.kind not in _MESSAGE_KINDS:
                continue
            if step_index != fault.step or fault.exhausted:
                continue
            matched_idx = [
                i for i, (src, dst, _) in enumerate(messages)
                if fault._matches_message(src, dst)
            ]
            if fault.count is not None:
                matched_idx = matched_idx[: fault.count]
            if not matched_idx:
                continue
            fault._spend()
            if fault.kind == "drop":
                hit = set(matched_idx)
                dropped = [messages[i] for i in matched_idx]
                messages = [m for i, m in enumerate(messages) if i not in hit]
                self._record(
                    events, step_index, "drop",
                    messages=[[s, d] for s, d, _ in dropped],
                )
            elif fault.kind == "duplicate":
                for i in matched_idx:
                    messages.append(messages[i])
                self._record(
                    events, step_index, "duplicate",
                    messages=[[messages[i][0], messages[i][1]] for i in matched_idx],
                )
            else:  # delay
                hit = set(matched_idx)
                due = step_index + fault.delay
                deferred.extend((due, messages[i]) for i in matched_idx)
                messages = [m for i, m in enumerate(messages) if i not in hit]
                self._record(
                    events, step_index, "delay",
                    count=len(matched_idx), due_step=due,
                )

        return messages, deferred, events

    # -- shared-memory hook -------------------------------------------------

    def fire_memory(self, phase_index: int, machine: Any) -> List[FaultEvent]:
        """Apply post-commit memory corruptions scheduled for ``phase_index``.

        Cells are set through ``machine.poke`` so model-specific cell shape
        (the GSM's tuple wrapping) and the high-water mark stay coherent.
        Returns the events fired at this phase.
        """
        events: List[FaultEvent] = []
        for fault in self.faults:
            if fault.kind != "corrupt":
                continue
            if phase_index != fault.step or fault.exhausted:
                continue
            fault._spend()
            before = machine.peek(fault.addr)
            machine.poke(fault.addr, fault.value)
            self._record(
                events, phase_index, "corrupt",
                addr=fault.addr, value=repr(fault.value), before=repr(before),
            )
        return events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({self.label!r}, faults={len(self.faults)}, fired={self.fired})"


def random_fault_plan(
    model: str,
    seed: Any = 0,
    *,
    max_faults: int = 2,
    horizon: int = 6,
    addr_range: Tuple[int, int] = (0, 64),
    procs: int = 8,
    label: Optional[str] = None,
) -> FaultPlan:
    """A seeded random transient plan for ``model`` (``"shared"`` or ``"bsp"``).

    Used by the chaos harness and the hypothesis suite: the draw depends
    only on ``seed``, so a failing schedule is reproducible from its seed.
    """
    if model not in ("shared", "bsp"):
        raise ValueError(f"model must be 'shared' or 'bsp', got {model!r}")
    rng = derive_rng(seed)
    n_faults = int(rng.integers(1, max_faults + 1))
    faults: List[Fault] = []
    for _ in range(n_faults):
        step = int(rng.integers(0, horizon))
        if model == "shared":
            addr = int(rng.integers(addr_range[0], max(addr_range[0] + 1, addr_range[1])))
            value = int(rng.integers(-3, 4))
            faults.append(Fault("corrupt", step, addr=addr, value=value))
        else:
            kind = str(rng.choice(["drop", "duplicate", "delay", "stall", "crash"]))
            if kind in _MESSAGE_KINDS:
                faults.append(
                    Fault(kind, step, count=int(rng.integers(1, 3)),
                          delay=int(rng.integers(1, 3)))
                )
            else:
                faults.append(
                    Fault(kind, step, proc=int(rng.integers(0, procs)),
                          duration=int(rng.integers(1, 3)))
                )
    return FaultPlan(faults, label=label or f"random-{model}-{seed}")
