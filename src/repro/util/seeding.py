"""Deterministic RNG derivation.

Randomized algorithms (dart-throwing compaction, padded sort) and the Random
Adversary both need reproducible randomness.  Everything in this repository
derives its generators from :func:`derive_rng` so a single integer seed pins
an entire experiment.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]

RngLike = Union[int, np.random.Generator, None]


def derive_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, so library code can
    accept either form without re-seeding midway through an experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used when an experiment fans out over processors or trials and each
    stream must be independent of the others yet reproducible from the
    parent seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = derive_rng(seed)
    if hasattr(parent, "spawn"):  # numpy >= 1.25
        return list(parent.spawn(count))
    child_seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in child_seeds]
