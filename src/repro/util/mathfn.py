"""Slow-growing functions used throughout the paper's bound formulas.

All logarithms are base 2 unless a base is given explicitly.  The paper's
formulas frequently divide by ``log g`` or ``log log n``; at small parameter
values those terms vanish or go negative, so every helper here is clamped to
stay positive and finite.  The clamping convention is documented per
function; the formula library relies on it, and the tests in
``tests/util/test_mathfn.py`` pin it down.
"""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "clamp",
    "ilog2",
    "log2p",
    "loglog2p",
    "log_base",
    "log_star",
    "log_star_base",
    "safe_ratio",
    "sqrt_ratio",
]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires non-negative dividend, got {a}")
    return -(-a // b)


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    return max(lo, min(hi, x))


def ilog2(n: int) -> int:
    """Floor of log2(n) for positive integer ``n``."""
    if n <= 0:
        raise ValueError(f"ilog2 requires a positive integer, got {n}")
    return n.bit_length() - 1


def log2p(x: float) -> float:
    """``max(1, log2 x)`` — the paper's ``log`` clamped away from zero.

    Bound formulas such as ``g * log n / log g`` are only meaningful when the
    denominators are positive; for ``x <= 2`` we return 1 so that ratios stay
    finite and the formula degrades to the numerator, matching the usual
    asymptotic convention that ``log`` means ``max(1, log)``.
    """
    if x <= 2.0:
        return 1.0
    return math.log2(x)


def loglog2p(x: float) -> float:
    """``max(1, log2 log2 x)`` with the same clamping convention as :func:`log2p`."""
    return log2p(log2p(x) if x > 2.0 else 1.0) if x > 4.0 else 1.0


def log_base(x: float, base: float) -> float:
    """``max(1, log_base(x))`` for ``base > 1``; clamped like :func:`log2p`."""
    if base <= 1.0:
        raise ValueError(f"log_base requires base > 1, got {base}")
    if x <= base:
        return 1.0
    return math.log(x) / math.log(base)


def log_star(x: float) -> int:
    """Iterated logarithm ``log* x`` base 2.

    The number of times ``log2`` must be applied before the value drops to
    at most 1.  ``log_star(x) == 0`` for ``x <= 1``.
    """
    return log_star_base(x, 2.0)


def log_star_base(x: float, base: float) -> int:
    """Iterated logarithm with the given base (> 1).

    The paper uses ``log*_{mu+1}`` in the OR lower bound (Section 7); this is
    that quantity.  Defined as the number of applications of ``log_base``
    needed to bring ``x`` down to at most 1.
    """
    if base <= 1.0:
        raise ValueError(f"log_star_base requires base > 1, got {base}")
    count = 0
    # log* grows so slowly that this loop runs at most ~6 times for any
    # representable float; guard anyway against pathological bases near 1.
    while x > 1.0:
        x = math.log(x) / math.log(base)
        count += 1
        if count > 128:
            raise OverflowError("log_star_base failed to converge")
    return count


def safe_ratio(num: float, den: float) -> float:
    """``num / max(den, 1)`` — division guarded against tiny denominators."""
    return num / max(den, 1.0)


def sqrt_ratio(num: float, den: float) -> float:
    """``sqrt(num / max(den, 1))`` with the numerator clamped non-negative."""
    return math.sqrt(max(num, 0.0) / max(den, 1.0))
