"""Small numeric helpers shared across the reproduction.

The paper's bound formulas are built from a handful of slowly growing
functions (``log``, ``log log``, ``log*``) evaluated at machine-parameter
combinations.  These helpers centralise those evaluations so that the
formula library in :mod:`repro.lowerbounds.formulas` reads like the paper.
"""

from repro.util.mathfn import (
    ceil_div,
    clamp,
    ilog2,
    log2p,
    loglog2p,
    log_base,
    log_star,
    log_star_base,
    safe_ratio,
    sqrt_ratio,
)
from repro.util.seeding import derive_rng, spawn_rngs

__all__ = [
    "ceil_div",
    "clamp",
    "ilog2",
    "log2p",
    "loglog2p",
    "log_base",
    "log_star",
    "log_star_base",
    "safe_ratio",
    "sqrt_ratio",
    "derive_rng",
    "spawn_rngs",
]
