"""Monotonic-derived timestamps for scheduler bookkeeping.

Timeout and watchdog math must never consult the wall clock: an NTP
step, a manual ``date`` change, or a VM migration can move ``time.time``
backwards (spuriously "expiring" a deadline and killing a healthy
worker) or forwards (masking a genuinely hung one).  Every deadline in
:mod:`repro.sched` therefore lives on ``time.monotonic``.

Display timestamps are the opposite problem: job records and wire
envelopes want epoch seconds a human (or another host) can read.
:func:`wallclock` bridges the two — it anchors one wall-clock reading
taken at import time to the monotonic clock and extrapolates from
there, so the *sequence* of stamps taken by one process is guaranteed
non-decreasing even while the wall clock jumps underneath it.  Two
stamps taken before and after a backwards NTP step still order
correctly; the absolute value drifts from "true" wall time only by
however far the system clock was adjusted after process start, which is
exactly the trade a scheduler wants.
"""

from __future__ import annotations

import time

__all__ = ["wallclock", "MONO_ANCHOR", "WALL_ANCHOR"]

#: The paired readings every :func:`wallclock` stamp extrapolates from.
WALL_ANCHOR = time.time()
MONO_ANCHOR = time.monotonic()


def wallclock() -> float:
    """Epoch-style seconds derived from the monotonic clock.

    ``WALL_ANCHOR + (monotonic() - MONO_ANCHOR)``: comparable to
    ``time.time()`` for display, but immune to wall-clock jumps — within
    one process the returned values never decrease.
    """
    return WALL_ANCHOR + (time.monotonic() - MONO_ANCHOR)
