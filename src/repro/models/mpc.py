"""The MPC simulator (Massively Parallel Computation).

The model of Karloff–Suri–Vassilvitskii as used by the modern round
lower-bound literature (Charikar, Ma & Tan): ``p`` machines, each with
local memory ``s = n^epsilon`` words, computing in synchronous rounds.
Within a round every machine computes freely on its local store; between
rounds machines exchange messages, with each machine sending and
receiving at most ``s`` words.

The simulator rides the BSP superstep substrate unchanged — an MPC round
*is* a BSP superstep with a different charge — so the vector engine, the
fault plans (drop/duplicate/delay/stall/crash) and the deterministic
delivery order all apply as-is.  Only the cost hooks differ:

* a round costs ``max(1, h / s)`` (:func:`repro.core.cost.mpc_round_cost`)
  — one round when the h-relation fits local memory, tiled over ``h/s``
  delivery slots when it does not — so ``machine.time`` is the effective
  round count the lower bounds are stated against;
* local work is free (``w`` never appears): MPC, like the GSM, is a
  communication-bounded model.

``machine.rounds`` is the raw superstep count and
``machine.max_message_volume`` the largest h-relation any round routed,
so both ingredients of the "rounds + per-round message volume" measure
stay separately observable next to the combined ``time``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.bsp import BSP
from repro.core.cost import mpc_cost_terms, mpc_round_cost
from repro.core.params import MPCParams
from repro.core.phase import SuperstepRecord

__all__ = ["MPC"]


class MPC(BSP):
    """MPC machine: ``p`` components with ``s`` words of local memory each.

    ``record_costs=True`` appends a
    :class:`~repro.obs.records.PhaseCostRecord` per committed round
    (terms ``round`` / ``h/s``, the dominant term, a received-messages
    histogram, per-machine op counts, wall time), exactly like the BSP.
    """

    model_label = "MPC"

    def __init__(
        self,
        p: int,
        params: Optional[MPCParams] = None,
        seed: Optional[int] = 0,
        record_costs: bool = False,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(
            p,
            seed=seed,
            record_costs=record_costs,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else MPCParams()

    # -- cost hooks ----------------------------------------------------------

    def _cost_terms(self, record: SuperstepRecord) -> Dict[str, float]:
        """Evaluated terms of ``max(1, h/s)`` (see
        :func:`repro.core.cost.mpc_cost_terms` for the tie order)."""
        return mpc_cost_terms(record, self.params)

    def _superstep_cost(self, record: SuperstepRecord) -> float:
        return mpc_round_cost(record, self.params)

    # -- observability -------------------------------------------------------

    @property
    def rounds(self) -> int:
        """Raw communication rounds (= committed supersteps)."""
        return self.superstep_count

    @property
    def max_message_volume(self) -> int:
        """Largest h-relation any round routed (words per machine)."""
        return max((rec.h for rec in self.history), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MPC(p={self.p}, s={self.params.s}, rounds={self.rounds}, "
            f"time={self.time})"
        )
