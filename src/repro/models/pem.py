"""The PEM simulator (Parallel External Memory).

The model of Arge, Goodrich, Nelson & Sitchinava: ``p`` processors, each
with a private cache of ``M`` words, sharing an external memory accessed
in blocks of ``B`` words.  The measure is *parallel I/O complexity* —
the number of parallel block transfers, with computation inside the
caches free.

The simulator rides the shared-memory phase substrate unchanged, so the
vector engine, winner policies and memory fault plans all apply as-is.
Semantics follow the CREW flavour with queued writes: concurrent reads
of a cell all see the pre-phase value; among concurrent writers an
*arbitrary* one succeeds, arbitrated through the same ``_pick_winner``
choke point as the QSM family (so the adversarial winner search and the
chaos harness reach PEM for free).

Cost per phase (:func:`repro.core.cost.pem_phase_cost`):
``max(ceil(m_rw / B), kappa)`` — a processor touching ``m_rw`` cells
pays ``ceil(m_rw / B)`` block I/Os, and queue contention ``kappa``
serializes at the block level.  Both aggregates come straight from the
:class:`~repro.core.phase.PhaseRecord`, so reference and vector engines
are bit-equal by construction (pinned in
``tests/property/test_engine_equivalence.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.cost import pem_cost_terms, pem_phase_cost
from repro.core.machine import Collided, Phase, SharedMemoryMachine
from repro.core.params import PEMParams
from repro.core.phase import PhaseRecord

__all__ = ["PEM"]


class PEM(SharedMemoryMachine):
    """Parallel External Memory machine (private caches, block transfers)."""

    model_label = "PEM"

    def __init__(
        self,
        params: Optional[PEMParams] = None,
        num_processors: Optional[int] = None,
        memory_size: Optional[int] = None,
        seed: Optional[int] = 0,
        record_trace: bool = False,
        record_snapshots: bool = False,
        record_costs: bool = False,
        winner_policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_processors=num_processors,
            memory_size=memory_size,
            seed=seed,
            record_trace=record_trace,
            record_snapshots=record_snapshots,
            record_costs=record_costs,
            winner_policy=winner_policy,
            fault_plan=fault_plan,
            engine=engine,
        )
        self.params = params if params is not None else PEMParams()

    def _phase_cost(self, record: PhaseRecord) -> float:
        return pem_phase_cost(record, self.params)

    def _cost_terms(self, record: PhaseRecord) -> Dict[str, float]:
        return pem_cost_terms(record, self.params)

    def _resolve_writes(self, phase: Phase) -> None:
        # Same arbitrary-winner write rule as the QSM: collision-free
        # phases land through the bulk paths, collisions route every
        # conflicted cell through the seeded/policy-driven _pick_winner.
        if not phase._write_collision:
            self._apply_single_writes(phase)
            return
        memory = self._memory
        pick_winner = self._pick_winner
        for addr, entry in phase._writes.items():
            kind = type(entry)
            if kind is Collided:
                memory[addr] = entry[pick_winner(addr, entry)][1]
            else:
                memory[addr] = entry[1] if kind is tuple else entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PEM(M={self.params.M}, B={self.params.B}, "
            f"phases={self.phase_count}, io={self.time})"
        )
