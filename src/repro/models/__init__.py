"""Post-1998 cost models grown on the shared phase-engine substrate.

The 1998 paper argues that QSM/s-QSM/BSP are *general-purpose* bridging
models whose bounds transfer across architectures; this package extends
the comparison to two modern general-purpose models, built as thin cost
machines over the same phase/superstep IR (``repro.core.ir``):

* :class:`MPC` — Massively Parallel Computation (``p`` machines, local
  memory ``s``), a :class:`~repro.core.bsp.BSP` subclass whose rounds
  charge ``max(1, h/s)`` (:func:`repro.core.cost.mpc_round_cost`);
* :class:`PEM` — Parallel External Memory (private caches of ``M``
  words, block size ``B``), a
  :class:`~repro.core.machine.SharedMemoryMachine` subclass whose phases
  charge parallel block I/Os (:func:`repro.core.cost.pem_phase_cost`).

Parameters live with the 1998 ones in :mod:`repro.core.params`, the
matching lower bounds next to the 1998 formulas in
:mod:`repro.lowerbounds.formulas` (tables ``"mpc"`` / ``"pem"``), and the
cross-model comparison table in ``benchmarks/bench_cross_model.py``
(``python -m repro xmodel``).  Both machines support
``engine="reference"|"vector"``, ``record_costs=``, winner policies and
fault plans exactly like the 1998 machines — see docs/MODELS.md.
"""

from repro.core.params import MPCParams, PEMParams
from repro.models.mpc import MPC
from repro.models.pem import PEM

__all__ = ["MPC", "MPCParams", "PEM", "PEMParams"]
