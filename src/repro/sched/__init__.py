"""repro.sched — campaign execution: warm workers, result store, DAG runner.

The scale layer of the reproduction.  Regenerating Table 1 and the
Section 8 suite means thousands of independent simulation points — and
the chaos/adversary gates multiply that again.  This package turns those
runs from per-driver scripts into a small execution service:

* :mod:`repro.sched.pool` — :class:`~repro.sched.pool.WorkerPool`, a
  persistent pool of warm worker processes: import :mod:`repro` once,
  then stream pickled tasks, with crash isolation, watchdog timeouts and
  worker recycling (process-per-point is the ``max_tasks_per_worker=1``
  corner case).
* :mod:`repro.sched.store` — :class:`~repro.sched.store.ResultStore`, a
  content-addressed outcome store keyed by SHA-256 of (task spec,
  code-relevant version), with atomic writes, schema-validated reads,
  quarantine of corrupt entries, age-based :meth:`~repro.sched.store.ResultStore.prune`
  GC, and :func:`~repro.sched.store.import_bench_cache` for migrating the
  legacy per-driver ``BENCH_*.json`` caches.
* :mod:`repro.sched.campaign` — declarative task DAGs
  (:class:`~repro.sched.campaign.TaskSpec` /
  :class:`~repro.sched.campaign.Campaign`) executed by
  :func:`~repro.sched.campaign.run_campaign` with dependencies,
  priorities, backpressure, mid-campaign cancel, store-backed resume, and
  per-task :class:`~repro.sched.campaign.TaskSpan` spans exported to the
  scheduler lane of the Chrome-trace exporter.
* :mod:`repro.sched.campaigns` — the shipped campaigns: the four Table 1
  drivers, the Section 8 suite, the chaos gate, and the demo graph behind
  ``python -m repro campaign run demo``.
* :mod:`repro.sched.tenancy` — the multi-tenant layer behind
  ``python -m repro serve``:
  :class:`~repro.sched.tenancy.FairShareMultiplexer` interleaves many
  concurrent :class:`~repro.sched.campaign.CampaignExecution` state
  machines on one shared pool with per-tenant fair-share round-robin,
  :class:`~repro.sched.tenancy.TenantQuota` admission limits, and live
  cross-tenant dedup of in-flight content keys.

See docs/SCHEDULER.md for the architecture and the CLI
(``python -m repro campaign run|status|resume|prune``), and
docs/SERVICE.md for the multi-tenant HTTP service on top.
"""

from repro.sched.campaign import (
    Campaign,
    CampaignError,
    CampaignExecution,
    CampaignReport,
    TaskSpan,
    TaskSpec,
    campaign_status,
    run_campaign,
)
from repro.sched.pool import DEFAULT_MAX_TASKS_PER_WORKER, PoolEvent, WorkerPool
from repro.sched.store import (
    ResultStore,
    StoreStats,
    canonical_spec,
    content_key,
    fn_ref,
    import_bench_cache,
    task_spec,
)
from repro.sched.tenancy import (
    FairShareMultiplexer,
    JobRecord,
    QuotaExceeded,
    TenantQuota,
)

__all__ = [
    "WorkerPool",
    "PoolEvent",
    "DEFAULT_MAX_TASKS_PER_WORKER",
    "ResultStore",
    "StoreStats",
    "content_key",
    "canonical_spec",
    "fn_ref",
    "task_spec",
    "import_bench_cache",
    "TaskSpec",
    "Campaign",
    "TaskSpan",
    "CampaignReport",
    "CampaignError",
    "CampaignExecution",
    "run_campaign",
    "campaign_status",
    "FairShareMultiplexer",
    "JobRecord",
    "TenantQuota",
    "QuotaExceeded",
]
