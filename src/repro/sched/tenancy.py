"""Multi-tenant fair-share multiplexing of campaigns onto one warm pool.

:func:`repro.sched.campaign.run_campaign` drives **one** campaign to
completion and owns the process while it does.  A long-running service
(``python -m repro serve``) has the opposite shape: many tenants submit
campaigns concurrently, and all of them must share a single warm
:class:`~repro.sched.pool.WorkerPool` and one content-addressed
:class:`~repro.sched.store.ResultStore` without any tenant starving the
rest.  This module is that scheduling layer:

* **Per-tenant queues** — each tenant owns a FIFO of jobs (a job = one
  submitted :class:`~repro.sched.campaign.Campaign` wrapped in a
  :class:`~repro.sched.campaign.CampaignExecution`).  Admission and
  dispatch never look at a global job list, only at per-tenant state.
* **Fair-share dispatch** — free pool slots are handed out round-robin
  *across tenants*, one task per turn, so a tenant with a 10 000-task
  campaign and a tenant with a 4-task campaign both keep their frontier
  moving.  Within a tenant, jobs run oldest-first and tasks highest-
  priority-first (the same ordering ``run_campaign`` uses).
* **Quotas** (:class:`TenantQuota`) — per-tenant caps on concurrent
  jobs, on tasks in flight on the pool, and on submitted campaign size.
  A submission over quota raises :class:`QuotaExceeded`, which the HTTP
  layer maps to a ``429``-style contract error.
* **Pool admission** — the global ``max_in_flight`` backpressure bound
  (default ``2 * pool.jobs``, exactly ``run_campaign``'s) still applies
  across all tenants, so a burst of submissions queues in the scheduler
  rather than materialising as pickles in the pool.
* **Live cross-tenant dedup** — the store already dedups *completed*
  work (identical task specs share one SHA-256 object).  The multiplexer
  extends that to *in-flight* work: a task whose content key is already
  executing for another job waits for that execution instead of running
  twice, and completes as ``"cached"`` when the owner stores the result.
  If the owner fails, waiters are requeued to execute it themselves.
* **Cancellation** — cancelling a job stops dispatching its tasks and
  lets in-flight ones drain *into the store* (an abandoned result is
  still a resume hit), then classifies the rest ``pending`` — the same
  semantics as a Ctrl-C'd ``run_campaign``.  Resubmitting the same
  campaign resumes from whatever reached the store.

The multiplexer is single-threaded by design: all pool interaction
happens inside :meth:`FairShareMultiplexer.step`, which one scheduler
thread calls in a loop.  Submissions and cancellations may arrive from
other threads (HTTP handlers); a lock guards the shared job tables, and
the blocking ``pool.events`` wait happens outside it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.sched.campaign import Campaign, CampaignExecution, PoolEvent, TaskSpan
from repro.sched.pool import WorkerPool
from repro.sched.store import ResultStore
from repro.util.clock import wallclock

__all__ = [
    "TenantQuota",
    "QuotaExceeded",
    "JobRecord",
    "FairShareMultiplexer",
    "JOB_STATES",
]

#: Every state a job can report, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States from which a job can never move again.
_TERMINAL = ("done", "failed", "cancelled")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission and fair-share limits.

    ``max_jobs`` bounds a tenant's concurrent non-terminal jobs (queued +
    running); ``max_tasks_in_flight`` bounds how many of the pool's slots
    one tenant may hold at once (``None`` means up to the whole pool —
    fair-share round-robin still prevents starvation, the cap just makes
    the guarantee hard); ``max_tasks_per_job`` rejects oversized
    campaigns at submission.
    """

    max_jobs: int = 4
    max_tasks_in_flight: Optional[int] = None
    max_tasks_per_job: int = 4096

    def __post_init__(self) -> None:
        if self.max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.max_tasks_in_flight is not None and self.max_tasks_in_flight < 1:
            raise ValueError(
                f"max_tasks_in_flight must be >= 1 or None, "
                f"got {self.max_tasks_in_flight}"
            )
        if self.max_tasks_per_job < 1:
            raise ValueError(
                f"max_tasks_per_job must be >= 1, got {self.max_tasks_per_job}"
            )


class QuotaExceeded(RuntimeError):
    """A submission was rejected by a :class:`TenantQuota` limit.

    ``code`` is a stable machine-readable reason (``"quota_jobs"`` or
    ``"quota_tasks"``) the service maps onto the ``repro.serve/1`` error
    contract.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass
class JobRecord:
    """One submitted campaign and its execution state.

    ``state`` walks :data:`JOB_STATES`; timestamps are epoch seconds
    (0.0 until reached).  ``spans`` is filled by :meth:`finish` once the
    job reaches a terminal state.
    """

    id: str
    tenant: str
    campaign: Campaign
    execution: CampaignExecution
    state: str = "queued"
    # wallclock(), not time.time(): job timestamps feed duration math in
    # views and snapshots, and a wall-clock step mid-job must not make a
    # duration negative (or mask a stall).  See repro/util/clock.py.
    created: float = field(default_factory=wallclock)
    started: float = 0.0
    finished: float = 0.0
    error: Optional[str] = None
    #: Distributed-trace id linking this job's spans (None when tracing
    #: is off).  Parented on the HTTP request span when one was active.
    trace_id: Optional[str] = None
    spans: Tuple[TaskSpan, ...] = ()
    #: Pool task names currently executing (or parked on a dedup wait).
    waiting_on: Dict[str, str] = field(default_factory=dict)  # task -> owner key

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def counts(self) -> Dict[str, int]:
        """Per-status task counts: frozen spans when terminal, live otherwise.

        A live job also reports ``running`` (on the pool or parked on a
        dedup wait) and ``pending`` (not yet dispatched), so the sum
        always equals the campaign size.
        """
        if self.spans:
            out: Dict[str, int] = {}
            for span in self.spans:
                out[span.status] = out.get(span.status, 0) + 1
            return out
        out = dict(self.execution.counts)
        running = len(self.execution.in_flight)
        if running:
            out["running"] = running
        remaining = len(self.campaign.tasks) - sum(out.values())
        if remaining > 0:
            out["pending"] = remaining
        return out


class FairShareMultiplexer:
    """Run many tenants' campaigns concurrently on one pool + store.

    Parameters
    ----------
    store:
        The shared content-addressed store — the dedup substrate.
    pool:
        An existing pool to multiplex onto (not shut down by
        :meth:`shutdown`); otherwise one is created with ``jobs`` workers.
    quota:
        The per-tenant :class:`TenantQuota` (one policy for all tenants).
    max_in_flight:
        Global pool admission bound; default ``2 * pool.jobs``.
    progress:
        Optional line sink receiving ``"job-id: ..."``-prefixed task
        progress (what ``serve --verbose`` prints).
    """

    def __init__(
        self,
        store: ResultStore,
        pool: Optional[WorkerPool] = None,
        jobs: Optional[int] = None,
        quota: Optional[TenantQuota] = None,
        max_in_flight: Optional[int] = None,
        progress: Optional[Any] = None,
    ) -> None:
        self.store = store
        self._owns_pool = pool is None
        self.pool = WorkerPool(jobs=jobs) if pool is None else pool
        self.quota = quota if quota is not None else TenantQuota()
        self.max_in_flight = (
            2 * self.pool.jobs if max_in_flight is None else int(max_in_flight)
        )
        if self.max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._progress = progress
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}  # insertion-ordered
        self._job_seq = itertools.count(1)
        #: Round-robin cursor over tenant names for fair-share dispatch.
        self._rr_cursor = 0
        #: content key -> (job id, task name) currently executing it.
        self._inflight_keys: Dict[str, Tuple[str, str]] = {}
        #: content key -> [(job id, task name), ...] parked on it.
        self._waiters: Dict[str, List[Tuple[str, str]]] = {}
        #: tenant -> pool tasks currently held (dedup waits excluded).
        self._tenant_inflight: Dict[str, int] = {}
        #: Jobs that reached a terminal state since the last step() drain.
        self._newly_finished: List[JobRecord] = []
        #: job id -> live "job" span; (job id, task) -> live "task" span.
        #: Task spans survive retries (one span per task, attempts noted
        #: as an attribute) and are finished in _collect/_finish.
        self._job_spans: Dict[str, Any] = {}
        self._task_spans: Dict[Tuple[str, str], Any] = {}
        self._closed = False

    # -- submission side (any thread) ---------------------------------------

    def submit(
        self,
        tenant: str,
        campaign: Campaign,
        job_id: Optional[str] = None,
        parent: Optional["_tracing.SpanContext"] = None,
    ) -> JobRecord:
        """Admit ``campaign`` for ``tenant``; raises :class:`QuotaExceeded`.

        The job starts ``queued``; the scheduler loop activates it (which
        runs the store resume pass) on its next :meth:`step`.  On traced
        runs a ``job`` span opens here — parented on ``parent`` (the HTTP
        request span, typically) — and closes when the job goes terminal;
        its duration is the end-to-end SLO sample.
        """
        if len(campaign.tasks) > self.quota.max_tasks_per_job:
            raise QuotaExceeded(
                "quota_tasks",
                f"campaign has {len(campaign.tasks)} tasks; tenant limit is "
                f"{self.quota.max_tasks_per_job} per job",
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("multiplexer is shut down")
            active = sum(
                1 for j in self._jobs.values()
                if j.tenant == tenant and not j.terminal
            )
            if active >= self.quota.max_jobs:
                raise QuotaExceeded(
                    "quota_jobs",
                    f"tenant {tenant!r} already has {active} active job(s); "
                    f"limit is {self.quota.max_jobs}",
                )
            if job_id is None:
                job_id = f"job-{next(self._job_seq):04d}"
            if job_id in self._jobs:
                raise ValueError(f"duplicate job id {job_id!r}")
            execution = CampaignExecution(
                campaign,
                self.store,
                progress=self._job_progress(job_id),
                labels={"tenant": tenant},
            )
            job = JobRecord(job_id, tenant, campaign, execution)
            if _tracing.TRACER.enabled:
                span = _tracing.TRACER.start_span(
                    f"job:{job_id}", kind="job", parent=parent,
                    attrs={
                        "job": job_id,
                        "tenant": tenant,
                        "campaign": campaign.name,
                        "tasks": len(campaign.tasks),
                    },
                )
                if span is not None:
                    self._job_spans[job_id] = span
                    job.trace_id = span.trace_id
                    execution.trace_id = span.trace_id
            self._jobs[job_id] = job
            if _metrics.REGISTRY.enabled:
                _metrics.REGISTRY.counter(
                    "repro_serve_jobs_total", "job submissions by tenant"
                ).inc(tenant=tenant)
            return job

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Stop dispatching ``job_id``'s tasks; returns the job (or None).

        In-flight tasks drain into the store (resume hits for a
        resubmission); a job with nothing in flight goes terminal
        immediately.  Cancelling a terminal job is a no-op.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return job
            if job.state == "queued" or not job.execution.in_flight:
                self._finish(job, "cancelled")
            else:
                job.state = "cancelled"  # drains in _collect, finishes there
            return job

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            return [
                j for j in self._jobs.values()
                if tenant is None or j.tenant == tenant
            ]

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted({j.tenant for j in self._jobs.values()})

    @property
    def active(self) -> bool:
        """True while any job is non-terminal."""
        with self._lock:
            return any(not j.terminal for j in self._jobs.values())

    # -- scheduler loop (one thread) ----------------------------------------

    def step(self, wait: float = 0.2) -> List[JobRecord]:
        """One scheduling iteration; returns jobs whose state changed.

        Activates queued jobs, dispatches fair-share, waits up to
        ``wait`` seconds for pool completions, folds them in, and
        finishes drained jobs.  Call in a loop from a single thread.
        """
        changed: List[JobRecord] = []
        with self._lock:
            self._activate(changed)
            self._dispatch()
            busy = self.pool.in_flight > 0
        # The blocking wait happens outside the lock so submissions and
        # cancellations from HTTP threads never stall behind it.  Pools
        # that ask to be polled while idle (RemoteWorkerPool: accepting
        # registrations, heartbeating) are polled regardless of load.
        if busy or getattr(self.pool, "needs_poll", False):
            events = self.pool.events(wait=wait)
        else:
            events = []
        with self._lock:
            self._collect(events)
            self._dispatch()  # completions freed slots and unlocked deps
            self._update_gauges()
            changed.extend(self._newly_finished)
            self._newly_finished = []
        return changed

    def shutdown(self) -> None:
        """Stop the pool (if owned); queued/running jobs stay resumable."""
        with self._lock:
            self._closed = True
            for job in self._jobs.values():
                if not job.terminal:
                    self._finish(job, "cancelled")
        if self._owns_pool:
            self.pool.shutdown()

    # -- internals (lock held) ----------------------------------------------

    def _job_progress(self, job_id: str):
        if self._progress is None:
            return None
        sink = self._progress

        def emit(line: str) -> None:
            sink(f"{job_id}: {line}")

        return emit

    def _activate(self, changed: List[JobRecord]) -> None:
        """Move queued jobs to running (their resume pass ran at submit)."""
        for job in self._jobs.values():
            if job.state != "queued":
                continue
            job.state = "running"
            job.started = wallclock()
            changed.append(job)
            if not job.execution.has_pending:
                # Fully served by the resume pass (or an empty campaign).
                self._finish(job, None)

    def _tenant_cap(self) -> int:
        cap = self.quota.max_tasks_in_flight
        return cap if cap is not None else self.max_in_flight

    def _dispatch(self) -> None:
        """Fair-share: hand free slots round-robin across tenants."""
        tenants = sorted({
            j.tenant for j in self._jobs.values() if j.state == "running"
        })
        if not tenants:
            return
        cap = self._tenant_cap()
        stalled: set = set()
        while self.pool.in_flight < self.max_in_flight and len(stalled) < len(tenants):
            tenant = tenants[self._rr_cursor % len(tenants)]
            self._rr_cursor += 1
            if tenant in stalled:
                continue
            if self._tenant_inflight.get(tenant, 0) >= cap:
                stalled.add(tenant)
                continue
            if not self._dispatch_one(tenant):
                stalled.add(tenant)

    def _dispatch_one(self, tenant: str) -> bool:
        """Dispatch one task for ``tenant`` (oldest job first); False if none.

        Inline tasks run immediately in the scheduler process and do not
        consume the pool slot this turn.
        """
        for job in self._jobs.values():
            if job.tenant != tenant or job.state != "running":
                continue
            ex = job.execution
            name = ex.pop_ready()
            if name is None:
                if not ex.has_pending:
                    self._finish(job, None)
                continue
            if ex.tasks[name].inline:
                self._open_task_span(job, name, inline=True)
                ok = ex.run_inline(name)
                self._close_task_span(job, name, "ok" if ok else "error")
                if not ex.has_pending:
                    self._finish(job, None)
                return True
            key = ex.keys[name]
            # Sequential dedup: another job may have stored this key after
            # this job's resume pass already ran.
            stored = self.store.get_outcome(key)
            if stored is not None:
                ex.start(name)
                ex.complete_cached(name, stored)
                if not ex.has_pending:
                    self._finish(job, None)
                return True
            # Live dedup: the key is already executing for another job —
            # park this task on it instead of running the work twice.
            owner = self._inflight_keys.get(key)
            if owner is not None and owner != (job.id, name):
                ex.start(name)
                job.waiting_on[name] = key
                self._waiters.setdefault(key, []).append((job.id, name))
                if _metrics.REGISTRY.enabled:
                    _metrics.REGISTRY.counter(
                        "repro_serve_dedup_waits_total",
                        "tasks parked on another job's in-flight key",
                    ).inc(tenant=tenant)
                return True
            spec = ex.start(name)
            self._inflight_keys[key] = (job.id, name)
            self.pool.submit(
                f"{job.id}/{name}", spec.fn, spec.kwargs, timeout=spec.timeout,
                trace=self._task_trace(job, name),
            )
            self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
            return True
        return False

    def _collect(self, events) -> None:
        for event in events:
            job_id, _, name = event.key.partition("/")
            job = self._jobs.get(job_id)
            if job is None or name not in (job.execution.tasks if job else ()):
                continue  # a shared pool's stale leftovers
            self._tenant_inflight[job.tenant] = max(
                0, self._tenant_inflight.get(job.tenant, 0) - 1
            )
            key = job.execution.keys[name]
            if job.state == "cancelled":
                # Drain: store a successful result (a future resume hit),
                # drop everything else, and release any dedup waiters.
                if event.ok and isinstance(event.payload, Mapping):
                    self.store.put(
                        key, dict(event.payload),
                        spec=job.execution.tasks[name].spec_dict(),
                    )
                    self._resolve_waiters(key, dict(event.payload))
                else:
                    self._requeue_waiters(key)
                job.execution.abandon(name)
                self._close_task_span(job, name, "cancelled")
                self._inflight_keys.pop(key, None)
                if not job.execution.in_flight:
                    self._finish(job, "cancelled")
                continue
            scoped = PoolEvent(
                name, event.status, event.payload, event.worker_id, event.wall_time
            )
            action = job.execution.record_event(scoped)
            if action == "retry":
                spec = job.execution.start(name)
                self.pool.submit(
                    f"{job.id}/{name}", spec.fn, spec.kwargs, timeout=spec.timeout,
                    trace=self._task_trace(job, name),
                )
                self._tenant_inflight[job.tenant] = (
                    self._tenant_inflight.get(job.tenant, 0) + 1
                )
                continue  # key stays in flight with the same owner
            self._inflight_keys.pop(key, None)
            self._close_task_span(job, name, "ok" if action == "done" else "error")
            if action == "done":
                self._resolve_waiters(key, job.execution.outcomes[name])
            else:
                self._requeue_waiters(key)
            if not job.execution.has_pending:
                self._finish(job, None)

    def _resolve_waiters(self, key: str, outcome: Dict[str, Any]) -> None:
        for waiter_id, waiter_name in self._waiters.pop(key, ()):
            waiter = self._jobs.get(waiter_id)
            if waiter is None:
                continue
            waiter.waiting_on.pop(waiter_name, None)
            if waiter.state == "cancelled":
                waiter.execution.abandon(waiter_name)
            else:
                waiter.execution.complete_cached(waiter_name, dict(outcome))
            if not waiter.execution.in_flight and waiter.state == "cancelled":
                self._finish(waiter, "cancelled")
            elif not waiter.execution.has_pending and waiter.state == "running":
                self._finish(waiter, None)

    def _requeue_waiters(self, key: str) -> None:
        for waiter_id, waiter_name in self._waiters.pop(key, ()):
            waiter = self._jobs.get(waiter_id)
            if waiter is None:
                continue
            waiter.waiting_on.pop(waiter_name, None)
            if waiter.state == "cancelled":
                waiter.execution.abandon(waiter_name)
                if not waiter.execution.in_flight:
                    self._finish(waiter, "cancelled")
            else:
                waiter.execution.requeue(waiter_name)

    def _open_task_span(
        self, job: JobRecord, name: str, inline: bool = False
    ) -> Optional[Any]:
        """Create (or reuse, on retry) the ``task`` span for ``name``."""
        if not _tracing.TRACER.enabled:
            return None
        span = self._task_spans.get((job.id, name))
        if span is None:
            parent_span = self._job_spans.get(job.id)
            span = _tracing.TRACER.start_span(
                f"{job.id}/{name}", kind="task",
                parent=None if parent_span is None else parent_span.context,
                attrs={"job": job.id, "task": name, "tenant": job.tenant},
            )
            if span is None:
                return None
            self._task_spans[(job.id, name)] = span
        span.attrs["attempts"] = job.execution.attempts[name]
        if inline:
            span.attrs["inline"] = True
        return span

    def _task_trace(self, job: JobRecord, name: str) -> Optional[Dict[str, str]]:
        """The trace context dict to ship with a pool dispatch (or None)."""
        span = self._open_task_span(job, name)
        return None if span is None else span.context.to_dict()

    def _close_task_span(self, job: JobRecord, name: str, status: str) -> None:
        span = self._task_spans.pop((job.id, name), None)
        if span is not None:
            span.attrs["attempts"] = job.execution.attempts.get(name, 0)
            _tracing.TRACER.finish(span, status=status)

    def _finish(self, job: JobRecord, state: Optional[str]) -> None:
        """Move ``job`` to a terminal state and freeze its spans."""
        cancelled = state == "cancelled"
        job.spans = job.execution.finish(cancelled=cancelled)
        if state is None:
            ok = all(s.status in ("done", "cached") for s in job.spans)
            state = "done" if ok else "failed"
            if not ok:
                bad = [s for s in job.spans if s.status in ("failed", "skipped")]
                job.error = "; ".join(
                    f"{s.name}: {s.error}" for s in bad[:3] if s.error
                ) or f"{len(bad)} task(s) failed"
        job.state = state
        job.finished = wallclock()
        if _tracing.TRACER.enabled:
            for (jid, name) in [k for k in self._task_spans if k[0] == job.id]:
                self._close_task_span(job, name, "cancelled")
            job_span = self._job_spans.pop(job.id, None)
            if job_span is not None:
                job_span.attrs["state"] = state
                _tracing.TRACER.finish(
                    job_span, status="ok" if state == "done" else "error"
                )
        self._newly_finished.append(job)
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_serve_jobs_finished_total", "terminal job states by tenant"
            ).inc(tenant=job.tenant, state=state)

    def _update_gauges(self) -> None:
        if not _metrics.REGISTRY.enabled:
            return
        registry = _metrics.REGISTRY
        by_tenant: Dict[str, int] = {}
        for job in self._jobs.values():
            if not job.terminal:
                by_tenant[job.tenant] = by_tenant.get(job.tenant, 0) + 1
        gauge = registry.gauge(
            "repro_serve_active_jobs", "non-terminal jobs by tenant"
        )
        for tenant in self.tenants():
            gauge.set(by_tenant.get(tenant, 0), tenant=tenant)
            registry.gauge(
                "repro_serve_tenant_in_flight", "pool tasks held by tenant"
            ).set(self._tenant_inflight.get(tenant, 0), tenant=tenant)
        registry.gauge(
            "repro_serve_pool_in_flight", "pool tasks in flight across tenants"
        ).set(self.pool.in_flight)
