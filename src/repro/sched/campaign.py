"""Declarative campaigns: task DAGs executed on the warm pool + store.

A **campaign** is a named task graph: each :class:`TaskSpec` names a
picklable callable, its keyword arguments, the tasks it depends on, a
priority, and per-task timeout/retry budgets.  :func:`run_campaign`
executes the graph on a :class:`~repro.sched.pool.WorkerPool` with the
outcomes persisted to a :class:`~repro.sched.store.ResultStore`:

* **Dependencies** gate dispatch — a task runs only after every dep
  succeeded; a failed dep marks its transitive dependents ``skipped``.
* **Priorities** order the ready set (higher first, stable within a
  priority), so long poles start early and pack the pool well.
* **Backpressure** — at most ``max_in_flight`` tasks (default
  ``2 * jobs``) are handed to the pool at once, so a huge campaign never
  materialises its whole frontier as queued pickles.
* **Resume** — a task whose content key is already in the store is served
  from it (span status ``"cached"``) without touching the pool.  Kill a
  campaign at any point and re-run it: only incomplete tasks execute.
  Cancelling (Ctrl-C) shuts the pool down but keeps everything already
  stored.
* **Observability** — every task becomes a :class:`TaskSpan`; the spans
  export to the scheduler lane of the Chrome-trace exporter
  (:func:`repro.obs.exporters.scheduler_trace_events`), one Perfetto row
  per worker, and stream as progress lines while the campaign runs.

Inline tasks (``inline=True``) run in the scheduler process itself and
receive their dependencies' outcomes as a first positional ``results``
dict — the cheap aggregation stages (verdict tables, summaries) that
need cross-task data but no isolation.  Inline outcomes are not stored:
they are derived data, recomputed from stored results on resume.

The DAG-stepping state itself lives in :class:`CampaignExecution`, an
incremental state machine with no pool loop of its own.  ``run_campaign``
drives exactly one execution to completion on one pool; the multi-tenant
service multiplexer (:class:`repro.sched.tenancy.FairShareMultiplexer`,
behind ``python -m repro serve``) drives many concurrent executions on a
single shared pool, which is why the stepping logic is factored out here
rather than inlined in the driver loop.
"""

from __future__ import annotations

import heapq
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.sched.pool import PoolEvent, WorkerPool
from repro.sched.store import ResultStore, task_spec

__all__ = [
    "TaskSpec",
    "Campaign",
    "TaskSpan",
    "CampaignReport",
    "CampaignError",
    "CampaignExecution",
    "run_campaign",
    "campaign_status",
]


class CampaignError(ValueError):
    """An invalid campaign graph (duplicate names, unknown deps, cycles)."""


@dataclass(frozen=True)
class TaskSpec:
    """One node of a campaign graph.

    ``fn`` must be picklable (module-level, or :func:`functools.partial`
    of one) unless ``inline=True``.  Inline tasks are called as
    ``fn(results, **kwargs)`` with ``results`` mapping each dep name to
    its outcome dict; pool tasks are called as ``fn(**kwargs)`` and must
    return a JSON-serializable outcome dict.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    priority: int = 0
    timeout: Optional[float] = None
    retries: int = 0
    inline: bool = False

    def spec_dict(self) -> Dict[str, Any]:
        """The canonical (hashable) spec of this task's call."""
        return task_spec(self.fn, self.kwargs)


@dataclass(frozen=True)
class Campaign:
    """A named, validated task graph."""

    name: str
    tasks: Tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        self.validate()

    def validate(self) -> None:
        """Reject duplicate names, unknown deps and cycles (Kahn's order)."""
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise CampaignError(f"campaign {self.name!r}: duplicate task names {dupes}")
        known = set(names)
        for t in self.tasks:
            missing = [d for d in t.deps if d not in known]
            if missing:
                raise CampaignError(
                    f"campaign {self.name!r}: task {t.name!r} depends on "
                    f"unknown task(s) {missing}"
                )
        # Kahn's algorithm; anything left over sits on a cycle.
        remaining = {t.name: set(t.deps) for t in self.tasks}
        while True:
            free = [n for n, deps in remaining.items() if not deps]
            if not free:
                break
            for n in free:
                del remaining[n]
            for deps in remaining.values():
                deps.difference_update(free)
        if remaining:
            raise CampaignError(
                f"campaign {self.name!r}: dependency cycle among {sorted(remaining)}"
            )

    def task(self, name: str) -> TaskSpec:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(name)


@dataclass
class TaskSpan:
    """The scheduler's record of one task: what ran where, when, and how.

    ``status`` is one of ``"done"`` (executed and stored), ``"cached"``
    (served from the store), ``"failed"`` (attempts exhausted),
    ``"skipped"`` (a dependency failed) or ``"pending"`` (campaign
    cancelled first).  ``start``/``end`` are seconds since the campaign
    started; ``worker`` is the pool worker id (0 for inline/cached/
    unstarted tasks).
    """

    name: str
    key: str
    status: str
    worker: int = 0
    start: float = 0.0
    end: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "status": self.status,
            "worker": self.worker,
            "start": self.start,
            "end": self.end,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass(frozen=True)
class CampaignReport:
    """What :func:`run_campaign` hands back."""

    campaign: str
    spans: Tuple[TaskSpan, ...]
    cancelled: bool
    wall_time: float
    store_root: str
    pool_stats: Mapping[str, int]
    #: 32-hex distributed-trace id of the run's root span on traced runs
    #: ($REPRO_TRACE, docs/OBSERVABILITY.md); None when tracing is off.
    trace_id: Optional[str] = None

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.status] = out.get(span.status, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        """True iff every task completed (executed or served from the store)."""
        return not self.cancelled and all(
            s.status in ("done", "cached") for s in self.spans
        )

    @property
    def outcomes(self) -> Dict[str, Any]:
        """Completed task names (the store has the outcome payloads)."""
        return {s.name: s.status for s in self.spans if s.status in ("done", "cached")}

    def render(self) -> str:
        counts = self.counts
        parts = [f"{counts.get(k, 0)} {k}" for k in
                 ("done", "cached", "failed", "skipped", "pending") if counts.get(k)]
        head = (
            f"campaign {self.campaign}: {', '.join(parts) or 'empty'} "
            f"in {self.wall_time:.2f}s"
        )
        lines = [head]
        for span in self.spans:
            if span.status in ("failed", "skipped"):
                detail = f" — {span.error}" if span.error else ""
                lines.append(f"  {span.status}: {span.name}{detail}")
        return "\n".join(lines)


def _store_key(store: ResultStore, task: TaskSpec) -> str:
    return store.key_for(task.fn, task.kwargs)


class CampaignExecution:
    """Incremental DAG state machine for one campaign — no pool loop inside.

    The execution owns the graph bookkeeping (resume pass, ready
    frontier, dependency unlocking, retries accounting, the final
    skipped/pending classification) and the store writes; *when* tasks
    are handed to a pool, and to which pool, is the driver's business.
    Two drivers exist:

    * :func:`run_campaign` — one execution, one pool, runs to completion;
    * :class:`repro.sched.tenancy.FairShareMultiplexer` — many concurrent
      executions (one per tenant job) interleaved on one shared pool,
      with per-tenant fair-share and live cross-job dedup.

    ``labels`` (e.g. ``{"tenant": "alice"}``) are folded into every
    metrics-registry series the execution touches, so a multi-tenant
    snapshot can be sliced per tenant while unlabeled single-campaign
    runs keep their PR-5 series shapes.

    Driver protocol::

        ex = CampaignExecution(campaign, store)     # resume pass runs here
        while ex.has_pending:
            name = ex.pop_ready()
            if name is None: ...wait for events...
            elif ex.tasks[name].inline: ex.run_inline(name)
            else: spec = ex.start(name); pool.submit(name, spec.fn, ...)
            for event in pool.events():
                if ex.record_event(event) == "retry":
                    spec = ex.start(event.key); pool.submit(...)
        spans = ex.finish(cancelled=False)
    """

    def __init__(
        self,
        campaign: Campaign,
        store: ResultStore,
        clock: Optional[Callable[[], float]] = None,
        progress: Optional[Callable[[str], None]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if clock is None:
            t0 = time.monotonic()
            clock = lambda: time.monotonic() - t0  # noqa: E731
        self.campaign = campaign
        self.store = store
        self.clock = clock
        self.labels: Dict[str, str] = dict(labels or {})
        self._progress = progress
        self.tasks: Dict[str, TaskSpec] = {t.name: t for t in campaign.tasks}
        self.keys: Dict[str, str] = {
            t.name: _store_key(store, t) for t in campaign.tasks
        }
        self.total = len(self.tasks)
        self.spans: Dict[str, TaskSpan] = {}
        self.outcomes: Dict[str, Dict[str, Any]] = {}
        self.attempts: Dict[str, int] = {name: 0 for name in self.tasks}
        self.failed: Dict[str, str] = {}
        self.in_flight: Dict[str, float] = {}  # name -> dispatch time
        self._counter = 0
        self._ready: List[Tuple[int, int, str]] = []  # (-priority, seq, name)
        self._finished_spans: Optional[Tuple[TaskSpan, ...]] = None
        # Distributed-trace correlation key, set by the driver when tracing
        # is on (run_campaign's root span / the multiplexer's job span).
        self.trace_id: Optional[str] = None

        # Resume pass: anything already in the store is complete, regardless
        # of what happened to its deps in this or any previous run.
        for task in campaign.tasks:
            if task.inline:
                continue  # inline tasks are derived data; always recomputed
            cached = store.get_outcome(self.keys[task.name])
            if cached is not None:
                now = self.clock()
                self.outcomes[task.name] = cached
                self.spans[task.name] = TaskSpan(
                    task.name, self.keys[task.name], "cached", start=now, end=now
                )
                if _metrics.REGISTRY.enabled:
                    self._account("cached")
                    _metrics.REGISTRY.counter(
                        "repro_store_hits_total", "tasks served from the result store"
                    ).inc(**self.labels)
                self._emit(f"[{len(self.outcomes)}/{self.total}] cached {task.name}")

        self.remaining_deps: Dict[str, set] = {
            t.name: {d for d in t.deps if d not in self.outcomes}
            for t in campaign.tasks
            if t.name not in self.outcomes
        }
        for t in campaign.tasks:
            if t.name in self.remaining_deps and not self.remaining_deps[t.name]:
                self._push_ready(t.name)

    # -- small shared helpers ----------------------------------------------

    def _emit(self, line: str) -> None:
        if self._progress is not None:
            self._progress(line)

    def _account(self, status: str) -> None:
        _metrics.REGISTRY.counter(
            "repro_campaign_tasks_total", "task terminal states by status"
        ).inc(status=status, **self.labels)

    def _push_ready(self, name: str) -> None:
        heapq.heappush(self._ready, (-self.tasks[name].priority, self._counter, name))
        self._counter += 1

    # -- state queries ------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        """True while the execution still has ready or in-flight work.

        Loop invariant (same as PR 4's driver): a non-empty ready heap
        under backpressure implies in-flight work, so when both drain
        nothing can ever unblock again and the campaign is over.
        """
        return bool(self._ready or self.in_flight)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def counts(self) -> Dict[str, int]:
        """Span status counts so far (terminal states only)."""
        out: Dict[str, int] = {}
        for span in self.spans.values():
            out[span.status] = out.get(span.status, 0) + 1
        return out

    # -- dispatch side ------------------------------------------------------

    def pop_ready(self) -> Optional[str]:
        """Next dispatchable task name (highest priority), or ``None``.

        Entries obsoleted since they were enqueued — already completed,
        failed, or transitively blocked by a failure (classified
        ``skipped`` by :meth:`finish`) — are silently drained.
        """
        while self._ready:
            _, _, name = heapq.heappop(self._ready)
            if name in self.outcomes or name in self.failed:
                continue
            if any(d in self.failed for d in self.tasks[name].deps):
                continue  # will be marked skipped at the end
            return name
        return None

    def requeue(self, name: str) -> None:
        """Put a claimed-but-never-dispatched task back on the frontier.

        Used by the multiplexer when a live-dedup wait falls through (the
        job owning the in-flight key failed): the waiter must execute the
        task itself after all.
        """
        self.in_flight.pop(name, None)
        self._push_ready(name)

    def abandon(self, name: str) -> None:
        """Drop an in-flight task without any terminal span (cancelled job)."""
        self.in_flight.pop(name, None)

    def start(self, name: str) -> TaskSpec:
        """Claim ``name`` for dispatch: bump attempts, mark in flight."""
        task = self.tasks[name]
        self.attempts[name] += 1
        self.in_flight[name] = self.clock()
        if _metrics.REGISTRY.enabled and self.attempts[name] == 1:
            _metrics.REGISTRY.counter(
                "repro_store_misses_total", "tasks that had to execute"
            ).inc(**self.labels)
        return task

    def run_inline(self, name: str) -> bool:
        """Execute an inline task in this process; True iff it succeeded."""
        task = self.tasks[name]
        start = self.clock()
        results = {d: self.outcomes[d] for d in task.deps}
        try:
            value = task.fn(results, **dict(task.kwargs))
        except Exception as exc:
            self.attempts[name] += 1
            self.fail(name, f"{type(exc).__name__}: {exc}")
            return False
        self.attempts[name] += 1
        span = TaskSpan(name, self.keys[name], "done",
                        start=start, end=self.clock(), attempts=1)
        self.complete(
            name, dict(value) if isinstance(value, Mapping) else {"value": value}, span
        )
        return True

    # -- completion side ----------------------------------------------------

    def complete(self, name: str, outcome: Dict[str, Any], span: TaskSpan) -> None:
        """Record a terminal success span and unlock dependents."""
        self.outcomes[name] = outcome
        self.spans[name] = span
        if _metrics.REGISTRY.enabled:
            self._account(span.status)
            _metrics.REGISTRY.histogram(
                "repro_campaign_task_seconds", "per-task campaign latency"
            ).observe(max(0.0, span.end - span.start), **self.labels)
        self._emit(f"[{len(self.outcomes)}/{self.total}] {span.status} {name} "
                   f"({span.end - span.start:.2f}s"
                   + (f", worker {span.worker}" if span.worker else "") + ")")
        for other, deps in self.remaining_deps.items():
            if name in deps:
                deps.discard(name)
                if not deps and other not in self.in_flight:
                    self._push_ready(other)

    def complete_cached(self, name: str, outcome: Dict[str, Any]) -> None:
        """Serve ``name`` from an outcome computed elsewhere (live dedup).

        The multiplexer calls this when another job stored the same
        content key — after this execution's own resume pass already ran.
        """
        start = self.in_flight.pop(name, self.clock())
        span = TaskSpan(name, self.keys[name], "cached",
                        start=start, end=self.clock(),
                        attempts=self.attempts[name])
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_store_hits_total", "tasks served from the result store"
            ).inc(**self.labels)
        self.complete(name, outcome, span)

    def fail(self, name: str, error: str) -> None:
        """Record a terminal failure span (attempts exhausted)."""
        self.failed[name] = error
        span = self.spans.get(name) or TaskSpan(name, self.keys[name], "failed")
        span.status = "failed"
        span.error = error
        span.attempts = self.attempts[name]
        span.end = self.clock()
        self.spans[name] = span
        if _metrics.REGISTRY.enabled:
            self._account("failed")
        self._emit(f"FAILED {name}: {error}")

    def record_event(self, event: PoolEvent) -> str:
        """Fold one pool completion into the graph state.

        ``event.key`` must be this execution's task name (drivers that
        namespace pool keys strip the prefix first).  Returns ``"done"``,
        ``"retry"`` (the driver must re-:meth:`start` and resubmit) or
        ``"failed"``.
        """
        name = event.key
        start = self.in_flight.pop(name, self.clock())
        task = self.tasks[name]
        if event.ok and isinstance(event.payload, Mapping):
            outcome = dict(event.payload)
            self.store.put(self.keys[name], outcome, spec=task.spec_dict())
            span = TaskSpan(
                name, self.keys[name], "done", worker=event.worker_id,
                start=start, end=self.clock(), attempts=self.attempts[name],
            )
            self.complete(name, outcome, span)
            return "done"
        error = (
            str(event.payload) if not event.ok
            else f"outcome is not a mapping: {type(event.payload).__name__}"
        )
        if self.attempts[name] <= task.retries:
            if _metrics.REGISTRY.enabled:
                _metrics.REGISTRY.counter(
                    "repro_campaign_retries_total", "task retry dispatches"
                ).inc(**self.labels)
            self._emit(f"retry {name} (attempt {self.attempts[name] + 1}): {error}")
            return "retry"
        self.fail(name, error)
        return "failed"

    # -- termination --------------------------------------------------------

    def finish(self, cancelled: bool = False) -> Tuple[TaskSpan, ...]:
        """Classify unfinished tasks and return the spans in campaign order.

        The transitive closure of failure is ``skipped`` (task-list order
        is not necessarily topological, so iterate to a fixpoint);
        everything else — reachable only when the campaign was cancelled —
        is ``pending``.  Idempotent: repeated calls return the same tuple.
        """
        if self._finished_spans is not None:
            return self._finished_spans
        blocked: Dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for task in self.campaign.tasks:
                if task.name in self.spans or task.name in blocked:
                    continue
                culprits = [
                    d for d in task.deps if d in self.failed or d in blocked
                ]
                if culprits:
                    blocked[task.name] = ", ".join(culprits)
                    changed = True
        for task in self.campaign.tasks:
            if task.name in self.spans:
                continue
            if task.name in blocked:
                self.spans[task.name] = TaskSpan(
                    task.name, self.keys[task.name], "skipped",
                    error=f"blocked by {blocked[task.name]}",
                )
                if _metrics.REGISTRY.enabled:
                    self._account("skipped")
            else:
                self.spans[task.name] = TaskSpan(
                    task.name, self.keys[task.name], "pending"
                )
        self._finished_spans = tuple(self.spans[t.name] for t in self.campaign.tasks)
        return self._finished_spans


def run_campaign(
    campaign: Campaign,
    store: ResultStore,
    jobs: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    max_in_flight: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    metrics_interval: Optional[float] = None,
) -> CampaignReport:
    """Execute ``campaign`` on a warm pool, persisting outcomes to ``store``.

    Pass an existing ``pool`` to share workers across campaigns (it is not
    shut down); otherwise one is created with ``jobs`` workers and torn
    down at the end.  ``progress`` (e.g. ``print``) receives one line per
    task state change.  ``trace_path`` writes the Chrome trace when the
    campaign finishes (see docs/SCHEDULER.md) — the scheduler lane, plus,
    when metrics were on, the metrics counter lane and one phase-cost row
    per task outcome that carried ``cost_records``.

    ``metrics_path`` enables the process-wide metrics registry for the
    run and streams periodic :class:`repro.obs.snapshot.MetricsSnapshot`
    JSONL lines there (cadence ``metrics_interval`` seconds, default
    ``$REPRO_METRICS_INTERVAL`` or 1.0) — the stream ``python -m repro
    campaign status --follow`` tails for live progress.

    A ``KeyboardInterrupt`` cancels cleanly: in-flight work is abandoned,
    everything already stored stays stored, and the report (``cancelled=
    True``) lists the unfinished tasks as ``pending`` — re-running the
    campaign resumes from the store.
    """
    owns_pool = pool is None
    if pool is None:
        pool = WorkerPool(jobs=jobs)
    if max_in_flight is None:
        max_in_flight = 2 * pool.jobs
    if max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")

    writer = None
    was_enabled = _metrics.REGISTRY.enabled
    if metrics_path is not None:
        from repro.obs.snapshot import SnapshotWriter

        _metrics.REGISTRY.enable()
        writer = SnapshotWriter(metrics_path, interval=metrics_interval)

    t0 = time.monotonic()

    def now() -> float:
        return time.monotonic() - t0

    registry = _metrics.REGISTRY
    if registry.enabled:
        registry.gauge(
            "repro_campaign_tasks", "tasks in the running campaign"
        ).set(len(campaign.tasks))
        registry.gauge(
            "repro_campaign_jobs", "pool workers serving the campaign"
        ).set(pool.jobs)

    execution = CampaignExecution(campaign, store, clock=now, progress=progress)
    cancelled = False

    # Distributed tracing (zero-cost when $REPRO_TRACE is off): the run
    # gets a root "job" span and each task a child "task" span whose context
    # rides to the workers inside the task frames, so remote-side exec
    # spans and PhaseCostRecord stamps all share one trace_id.
    root_span = None
    task_spans: Dict[str, Any] = {}
    if _tracing.TRACER.enabled:
        root_span = _tracing.TRACER.start_span(
            f"campaign:{campaign.name}", kind="job",
            attrs={"campaign": campaign.name, "tasks": len(campaign.tasks)},
        )
        execution.trace_id = root_span.trace_id

    def dispatch(name: str) -> None:
        spec = execution.start(name)
        trace = None
        if root_span is not None:
            span = task_spans.get(name)
            if span is None:
                span = _tracing.TRACER.start_span(
                    name, kind="task", parent=root_span, attrs={"task": name}
                )
                task_spans[name] = span
            span.attrs["attempts"] = execution.attempts[name]
            trace = span.context.to_dict()
        pool.submit(name, spec.fn, spec.kwargs, timeout=spec.timeout, trace=trace)

    restore_sigint = None
    try:
        while execution.has_pending:
            if registry.enabled:
                registry.gauge(
                    "repro_campaign_frontier_size", "ready-to-dispatch tasks"
                ).set(execution.ready_count)
                registry.gauge(
                    "repro_campaign_in_flight", "tasks handed to the pool"
                ).set(len(execution.in_flight))
            if writer is not None:
                writer.maybe_emit()
            # Dispatch the frontier, highest priority first, under backpressure.
            while pool.in_flight < max_in_flight:
                name = execution.pop_ready()
                if name is None:
                    break
                if execution.tasks[name].inline:
                    if root_span is not None:
                        with _tracing.TRACER.span(
                            name, kind="task", parent=root_span,
                            attrs={"task": name, "inline": True},
                        ):
                            execution.run_inline(name)
                    else:
                        execution.run_inline(name)
                else:
                    dispatch(name)
            if not execution.in_flight:
                if execution.has_pending:
                    # Backpressure from a shared pool still draining another
                    # campaign's leftovers; give it a beat to free slots.
                    pool.events(wait=0.1)
                continue  # inline completions may have opened new frontier

            for event in pool.events(wait=0.5):
                if event.key not in execution.tasks:
                    continue  # a shared pool's stale leftovers
                verdict = execution.record_event(event)
                if verdict == "retry":
                    dispatch(event.key)
                elif root_span is not None:
                    span = task_spans.pop(event.key, None)
                    if span is not None:
                        _tracing.TRACER.finish(
                            span, status="ok" if verdict == "done" else "error"
                        )
    except KeyboardInterrupt:
        cancelled = True
        # `timeout -s INT` (and an impatient Ctrl-C Ctrl-C) delivers SIGINT
        # both to the process and to its group, so a second interrupt can
        # land mid-cleanup; mask it until the orderly report is out.
        try:
            restore_sigint = signal.signal(signal.SIGINT, signal.SIG_IGN)
        except ValueError:  # not the main thread: nothing to mask
            restore_sigint = None
        pool.cancel_pending()
        if progress is not None:
            progress(f"campaign {campaign.name} cancelled — "
                     f"{len(execution.outcomes)}/{execution.total} task(s) stored; "
                     "re-run to resume")
    finally:
        try:
            if owns_pool:
                pool.shutdown()
        finally:
            if restore_sigint is not None:
                signal.signal(signal.SIGINT, restore_sigint)
            # The final snapshot must survive *every* exit path — a task
            # function raising out of the event loop used to skip the
            # close() below and lose it (and leave the registry enabled).
            if writer is not None:
                if registry.enabled:
                    registry.gauge("repro_campaign_frontier_size").set(0)
                    registry.gauge("repro_campaign_in_flight").set(0)
                writer.close()
                if not was_enabled:
                    registry.disable()
            if root_span is not None:
                for span in task_spans.values():
                    _tracing.TRACER.finish(span, status="cancelled")
                _tracing.TRACER.finish(
                    root_span, status="cancelled" if cancelled else "ok"
                )

    ordered = execution.finish(cancelled=cancelled)
    report = CampaignReport(
        campaign=campaign.name,
        spans=ordered,
        cancelled=cancelled,
        wall_time=now(),
        store_root=store.root,
        pool_stats=dict(pool.stats),
        trace_id=execution.trace_id,
    )

    snapshots: Sequence[Any] = ()
    if writer is not None:
        snapshots = writer.snapshots

    if trace_path is not None:
        from repro.obs.exporters import write_combined_trace
        from repro.obs.records import PhaseCostRecord

        # Task outcomes that carried per-phase cost records (the demo
        # tasks do) become one simulated-time phase row each, next to the
        # scheduler spans and the metrics counter lane.
        phase_lanes = []
        for task in campaign.tasks:
            outcome = execution.outcomes.get(task.name)
            if isinstance(outcome, Mapping) and outcome.get("cost_records"):
                try:
                    records = [
                        PhaseCostRecord.from_dict(d)
                        for d in outcome["cost_records"]
                    ]
                except (KeyError, TypeError, ValueError):
                    continue  # a foreign/legacy outcome shape; not a trace row
                phase_lanes.append((task.name, records))
        # On traced runs the tracer's retained window holds this
        # campaign's finished job/task/exec spans (exec spans shipped
        # home in worker replies); exporting them alongside the phase
        # lanes draws the flow arrows from each exec span down to its
        # stamped phase-cost rows.
        trace_spans = []
        if _tracing.TRACER.enabled and execution.trace_id is not None:
            trace_spans = [
                s.to_dict() for s in list(_tracing.TRACER.finished)
                if s.trace_id == execution.trace_id
            ]
        write_combined_trace(
            trace_path,
            spans=[s.to_dict() for s in ordered],
            snapshots=snapshots,
            phase_lanes=phase_lanes,
            trace_spans=trace_spans,
        )
    return report


def campaign_status(campaign: Campaign, store: ResultStore) -> List[Tuple[str, str]]:
    """Per-task resume status against the store, in campaign order.

    Returns ``(task name, "done" | "pending" | "inline")`` rows — what
    ``python -m repro campaign status`` prints.  ``inline`` tasks are
    never stored, so their status is always recomputed at run time.
    """
    rows: List[Tuple[str, str]] = []
    for task in campaign.tasks:
        if task.inline:
            rows.append((task.name, "inline"))
        elif store.contains(_store_key(store, task)):
            rows.append((task.name, "done"))
        else:
            rows.append((task.name, "pending"))
    return rows
